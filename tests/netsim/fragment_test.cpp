#include "netsim/fragment.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "test_seed.h"

namespace tenet::netsim {
namespace {

crypto::Bytes random_message(size_t n, uint64_t seed = 1) {
  crypto::Drbg rng = crypto::Drbg::from_label(test::seed(seed), "frag.test");
  return rng.bytes(n);
}

TEST(Fragment, WireRoundTrip) {
  Fragment f;
  f.message_id = 0xabcdef01;
  f.index = 3;
  f.count = 9;
  f.payload = crypto::to_bytes("chunk");
  const Fragment g = Fragment::deserialize(f.serialize());
  EXPECT_EQ(g.message_id, f.message_id);
  EXPECT_EQ(g.index, 3);
  EXPECT_EQ(g.count, 9);
  EXPECT_EQ(g.payload, f.payload);
}

class FragmentSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(FragmentSizes, SplitAndReassembleInOrder) {
  const crypto::Bytes msg = random_message(GetParam());
  Fragmenter fragmenter;
  Reassembler reassembler;
  const auto fragments = fragmenter.split(msg);

  // Every fragment except possibly the last is full-size; all fit in MTU.
  for (size_t i = 0; i < fragments.size(); ++i) {
    EXPECT_LE(fragments[i].serialize().size(), kMtu);
    if (i + 1 < fragments.size()) {
      EXPECT_EQ(fragments[i].payload.size(), Fragment::kMaxPayload);
    }
  }

  std::optional<crypto::Bytes> result;
  for (const Fragment& f : fragments) {
    EXPECT_FALSE(result.has_value());
    result = reassembler.feed(f);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, msg);
  EXPECT_EQ(reassembler.incomplete_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FragmentSizes,
                         ::testing::Values(0, 1, 100, 1491, 1492, 1493, 4096,
                                           100000));

TEST(Fragment, ReassemblyToleratesReordering) {
  const crypto::Bytes msg = random_message(10 * Fragment::kMaxPayload);
  Fragmenter fragmenter;
  auto fragments = fragmenter.split(msg);
  crypto::Drbg rng = crypto::Drbg::from_label(test::seed(2), "frag.shuffle");
  for (size_t i = fragments.size(); i > 1; --i) {
    std::swap(fragments[i - 1], fragments[rng.uniform(i)]);
  }
  Reassembler reassembler;
  std::optional<crypto::Bytes> result;
  for (const Fragment& f : fragments) result = result ? result : reassembler.feed(f);
  // The final feed completes it regardless of order.
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, msg);
}

TEST(Fragment, DuplicatesIgnored) {
  const crypto::Bytes msg = random_message(3 * Fragment::kMaxPayload);
  Fragmenter fragmenter;
  Reassembler reassembler;
  const auto fragments = fragmenter.split(msg);
  EXPECT_FALSE(reassembler.feed(fragments[0]).has_value());
  EXPECT_FALSE(reassembler.feed(fragments[0]).has_value());  // dup
  EXPECT_FALSE(reassembler.feed(fragments[1]).has_value());
  const auto result = reassembler.feed(fragments[2]);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, msg);
}

TEST(Fragment, InterleavedMessagesReassembleIndependently) {
  const crypto::Bytes m1 = random_message(2 * Fragment::kMaxPayload, 10);
  const crypto::Bytes m2 = random_message(2 * Fragment::kMaxPayload, 11);
  Fragmenter fragmenter;
  const auto f1 = fragmenter.split(m1);
  const auto f2 = fragmenter.split(m2);
  ASSERT_NE(f1[0].message_id, f2[0].message_id);

  Reassembler reassembler;
  EXPECT_FALSE(reassembler.feed(f1[0]).has_value());
  EXPECT_FALSE(reassembler.feed(f2[0]).has_value());
  EXPECT_EQ(reassembler.incomplete_count(), 2u);
  const auto r2 = reassembler.feed(f2[1]);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, m2);
  const auto r1 = reassembler.feed(f1[1]);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, m1);
}

TEST(Fragment, MalformedFragmentsRejected) {
  Reassembler reassembler;
  Fragment zero_count;
  zero_count.count = 0;
  EXPECT_FALSE(reassembler.feed(zero_count).has_value());
  Fragment bad_index;
  bad_index.count = 2;
  bad_index.index = 5;
  EXPECT_FALSE(reassembler.feed(bad_index).has_value());
  EXPECT_EQ(reassembler.incomplete_count(), 0u);
}

TEST(Fragment, InconsistentCountDropsMessage) {
  Fragmenter fragmenter;
  const auto fragments = fragmenter.split(random_message(3 * Fragment::kMaxPayload));
  Reassembler reassembler;
  EXPECT_FALSE(reassembler.feed(fragments[0]).has_value());
  Fragment liar = fragments[1];
  liar.count = 99;
  EXPECT_FALSE(reassembler.feed(liar).has_value());
  EXPECT_EQ(reassembler.incomplete_count(), 0u);  // message state dropped
}

TEST(Fragment, AbandonFreesState) {
  Fragmenter fragmenter;
  const auto fragments = fragmenter.split(random_message(2 * Fragment::kMaxPayload));
  Reassembler reassembler;
  (void)reassembler.feed(fragments[0]);
  EXPECT_EQ(reassembler.incomplete_count(), 1u);
  reassembler.abandon(fragments[0].message_id);
  EXPECT_EQ(reassembler.incomplete_count(), 0u);
}

TEST(Fragment, DistinctMessagesGetDistinctIds) {
  Fragmenter fragmenter;
  const auto a = fragmenter.split(crypto::to_bytes("a"));
  const auto b = fragmenter.split(crypto::to_bytes("b"));
  EXPECT_NE(a[0].message_id, b[0].message_id);
}

}  // namespace
}  // namespace tenet::netsim
