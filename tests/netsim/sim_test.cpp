#include "netsim/sim.h"

#include <gtest/gtest.h>

namespace tenet::netsim {
namespace {

/// Records everything it receives.
class Recorder : public Node {
 public:
  using Node::Node;
  void handle_message(const Message& msg) override {
    received.push_back(msg);
    times.push_back(sim().now());
  }
  std::vector<Message> received;
  std::vector<double> times;
};

TEST(Sim, DeliversMessageWithPayload) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  a.send(b.id(), 7, crypto::to_bytes("hello"));
  EXPECT_EQ(sim.run(), 1u);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].src, a.id());
  EXPECT_EQ(b.received[0].port, 7u);
  EXPECT_EQ(crypto::to_string(b.received[0].payload), "hello");
}

TEST(Sim, NodeIdsAreUniqueAndNamed) {
  Simulator sim;
  Recorder a(sim, "alpha"), b(sim, "beta");
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(sim.node_name(a.id()), "alpha");
  EXPECT_EQ(sim.node_name(999), "<unknown>");
}

TEST(Sim, FifoOrderOnEqualLatency) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  for (int i = 0; i < 10; ++i) {
    a.send(b.id(), static_cast<uint32_t>(i), {});
  }
  sim.run();
  ASSERT_EQ(b.received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(b.received[static_cast<size_t>(i)].port, static_cast<uint32_t>(i));
  }
}

TEST(Sim, LatencyOrdersDelivery) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b"), c(sim, "c");
  sim.set_latency(a.id(), b.id(), 0.5);
  sim.set_latency(a.id(), c.id(), 0.1);
  a.send(b.id(), 1, {});
  a.send(c.id(), 2, {});
  sim.run();
  ASSERT_EQ(b.times.size(), 1u);
  ASSERT_EQ(c.times.size(), 1u);
  EXPECT_LT(c.times[0], b.times[0]);
  EXPECT_NEAR(b.times[0], 0.5, 1e-9);
}

TEST(Sim, SerializationDelayScalesWithSize) {
  Simulator sim;
  sim.set_bandwidth(1000);  // 1 KB/s so delay is visible
  Recorder a(sim, "a"), b(sim, "b");
  a.send(b.id(), 1, crypto::Bytes(500, 0));
  sim.run();
  ASSERT_EQ(b.times.size(), 1u);
  EXPECT_NEAR(b.times[0], sim.latency(a.id(), b.id()) + 0.5, 1e-9);
}

TEST(Sim, TrafficStatsCount) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  a.send(b.id(), 1, crypto::Bytes(kMtu * 2 + 1, 0));  // 3 packets
  a.send(b.id(), 1, crypto::Bytes(10, 0));            // 1 packet
  sim.run();
  const TrafficStats& sa = sim.stats(a.id());
  EXPECT_EQ(sa.messages_sent, 2u);
  EXPECT_EQ(sa.bytes_sent, kMtu * 2 + 11);
  EXPECT_EQ(sa.packets_sent, 4u);
  const TrafficStats& sb = sim.stats(b.id());
  EXPECT_EQ(sb.messages_received, 2u);
  EXPECT_EQ(sb.bytes_received, kMtu * 2 + 11);
}

TEST(Sim, EmptyMessageCountsOnePacket) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  a.send(b.id(), 1, {});
  sim.run();
  EXPECT_EQ(sim.stats(a.id()).packets_sent, 1u);
}

TEST(Sim, CutLinkDropsAndHealRestores) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  sim.cut_link(a.id(), b.id());
  a.send(b.id(), 1, {});
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_FALSE(sim.link_up(a.id(), b.id()));

  sim.heal_link(a.id(), b.id());
  a.send(b.id(), 1, {});
  sim.run();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(Sim, MessagesToDeadNodesAreDropped) {
  Simulator sim;
  Recorder a(sim, "a");
  NodeId ghost;
  {
    Recorder temp(sim, "temp");
    ghost = temp.id();
  }
  a.send(ghost, 1, {});
  EXPECT_NO_THROW(sim.run());
}

TEST(Sim, InvalidDestinationRejected) {
  Simulator sim;
  Recorder a(sim, "a");
  EXPECT_THROW(a.send(kInvalidNode, 1, {}), std::invalid_argument);
}

TEST(Sim, CascadedSendsInsideHandlersRun) {
  // A relays to B which relays to C — handlers re-enter the simulator.
  class Relay : public Node {
   public:
    Relay(Simulator& s, std::string n, NodeId* next) : Node(s, n), next_(next) {}
    void handle_message(const Message& m) override {
      hops = m.port;
      if (*next_ != kInvalidNode) {
        send(*next_, m.port + 1, crypto::Bytes(m.payload));
      }
    }
    NodeId* next_;
    uint32_t hops = 0;
  };
  Simulator sim;
  NodeId next_b = kInvalidNode, next_c = kInvalidNode;
  Relay a(sim, "a", &next_b), b(sim, "b", &next_c), c(sim, "c", &next_c);
  next_b = b.id();
  a.handle_message(Message{c.id(), a.id(), 1, crypto::to_bytes("x")});
  sim.run();
  EXPECT_EQ(b.hops, 2u);
}

TEST(Sim, RunCapThrowsOnLivelock) {
  class PingPong : public Node {
   public:
    PingPong(Simulator& s, std::string n) : Node(s, n) {}
    void handle_message(const Message& m) override {
      send(m.src, m.port, {});
    }
  };
  Simulator sim;
  PingPong a(sim, "a"), b(sim, "b");
  a.send(b.id(), 1, {});
  EXPECT_THROW(sim.run(/*max_events=*/100), std::runtime_error);
}

TEST(Sim, LossyLinkDropsApproximatelyAtRate) {
  Simulator sim(/*seed=*/5);
  Recorder a(sim, "a"), b(sim, "b");
  sim.set_loss_rate(a.id(), b.id(), 0.3);
  constexpr int kSends = 2000;
  for (int i = 0; i < kSends; ++i) a.send(b.id(), 1, {});
  sim.run();
  const double delivered = static_cast<double>(b.received.size());
  EXPECT_NEAR(delivered / kSends, 0.7, 0.05);
  EXPECT_EQ(sim.messages_dropped() + b.received.size(),
            static_cast<size_t>(kSends));
}

TEST(Sim, ZeroLossDeliversEverything) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  sim.set_loss_rate(a.id(), b.id(), 0.0);
  for (int i = 0; i < 50; ++i) a.send(b.id(), 1, {});
  sim.run();
  EXPECT_EQ(b.received.size(), 50u);
  EXPECT_EQ(sim.messages_dropped(), 0u);
}

TEST(Sim, LossRateValidated) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  EXPECT_THROW(sim.set_loss_rate(a.id(), b.id(), -0.1), std::invalid_argument);
  EXPECT_THROW(sim.set_loss_rate(a.id(), b.id(), 1.1), std::invalid_argument);
}

TEST(Sim, PerLinkFifoOrderDespiteSizes) {
  // A large message followed by a tiny one on the same link must arrive
  // in order (links are TCP-like byte streams).
  Simulator sim;
  sim.set_bandwidth(1000);  // slow: size matters
  Recorder a(sim, "a"), b(sim, "b");
  a.send(b.id(), 1, crypto::Bytes(900, 0));  // slow to serialize
  a.send(b.id(), 2, crypto::Bytes(1, 0));    // would overtake without FIFO
  sim.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].port, 1u);
  EXPECT_EQ(b.received[1].port, 2u);
}

TEST(Sim, ClockAdvancesMonotonically) {
  Simulator sim;
  Recorder a(sim, "a"), b(sim, "b");
  EXPECT_EQ(sim.now(), 0.0);
  a.send(b.id(), 1, {});
  sim.run();
  const double t1 = sim.now();
  EXPECT_GT(t1, 0.0);
  b.send(a.id(), 1, {});
  sim.run();
  EXPECT_GT(sim.now(), t1);
}

}  // namespace
}  // namespace tenet::netsim
