#include "netsim/secure_channel.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace tenet::netsim {
namespace {

crypto::Bytes key() { return crypto::Bytes(SecureChannel::kKeySize, 0x11); }

struct Pair {
  SecureChannel alice{key(), /*initiator=*/true};
  SecureChannel bob{key(), /*initiator=*/false};
};

TEST(SecureChannel, BidirectionalRoundTrip) {
  Pair p;
  const auto to_bob = p.alice.seal(crypto::to_bytes("to bob"));
  const auto got_b = p.bob.open(to_bob);
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(crypto::to_string(*got_b), "to bob");

  const auto to_alice = p.bob.seal(crypto::to_bytes("to alice"));
  const auto got_a = p.alice.open(to_alice);
  ASSERT_TRUE(got_a.has_value());
  EXPECT_EQ(crypto::to_string(*got_a), "to alice");
}

TEST(SecureChannel, ManySequentialRecords) {
  Pair p;
  for (int i = 0; i < 200; ++i) {
    crypto::Bytes msg;
    crypto::append_u32(msg, static_cast<uint32_t>(i));
    const auto opened = p.bob.open(p.alice.seal(msg));
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(crypto::read_u32(*opened, 0), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(p.alice.records_sent(), 200u);
  EXPECT_EQ(p.bob.records_received(), 200u);
}

TEST(SecureChannel, RejectsOwnDirection) {
  Pair p;
  const auto record = p.alice.seal(crypto::to_bytes("reflect"));
  // Reflected back at alice: wrong direction nonce.
  EXPECT_FALSE(p.alice.open(record).has_value());
}

TEST(SecureChannel, RejectsReplay) {
  Pair p;
  const auto record = p.alice.seal(crypto::to_bytes("once"));
  ASSERT_TRUE(p.bob.open(record).has_value());
  EXPECT_FALSE(p.bob.open(record).has_value());
}

TEST(SecureChannel, RejectsOldRecordAfterNewer) {
  Pair p;
  const auto r0 = p.alice.seal(crypto::to_bytes("zero"));
  const auto r1 = p.alice.seal(crypto::to_bytes("one"));
  ASSERT_TRUE(p.bob.open(r1).has_value());
  EXPECT_FALSE(p.bob.open(r0).has_value());
}

TEST(SecureChannel, ToleratesForwardLoss) {
  // Losing records is fine; later ones still authenticate.
  Pair p;
  (void)p.alice.seal(crypto::to_bytes("lost0"));
  (void)p.alice.seal(crypto::to_bytes("lost1"));
  const auto r2 = p.alice.seal(crypto::to_bytes("arrives"));
  const auto opened = p.bob.open(r2);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(crypto::to_string(*opened), "arrives");
}

TEST(SecureChannel, RejectsTampering) {
  Pair p;
  auto record = p.alice.seal(crypto::to_bytes("integrity"));
  record[record.size() / 2] ^= 1;
  EXPECT_FALSE(p.bob.open(record).has_value());
}

TEST(SecureChannel, RejectsWrongKey) {
  Pair p;
  SecureChannel mallory(crypto::Bytes(SecureChannel::kKeySize, 0x99), false);
  const auto record = p.alice.seal(crypto::to_bytes("secret"));
  EXPECT_FALSE(mallory.open(record).has_value());
}

TEST(SecureChannel, RejectsShortGarbage) {
  Pair p;
  EXPECT_FALSE(p.bob.open(crypto::Bytes{}).has_value());
  EXPECT_FALSE(p.bob.open(crypto::Bytes(10, 0xaa)).has_value());
}

TEST(SecureChannel, CiphertextHidesPlaintext) {
  Pair p;
  const crypto::Bytes pt = crypto::to_bytes("BGP policy: prefer customer routes");
  const auto record = p.alice.seal(pt);
  const auto it = std::search(record.begin(), record.end(), pt.begin(), pt.end());
  EXPECT_EQ(it, record.end());
}

TEST(SecureChannel, SealThrowsAtNonceExhaustion) {
  Pair p;
  p.alice.set_seq_limit(/*hard_limit=*/4, /*rekey_margin=*/1);
  for (int i = 0; i < 4; ++i) (void)p.alice.seal(crypto::to_bytes("r"));
  EXPECT_THROW((void)p.alice.seal(crypto::to_bytes("one too many")),
               NonceExhaustedError);
  // The guard is about the SEND direction only; receiving still works.
  const auto from_bob = p.bob.seal(crypto::to_bytes("inbound fine"));
  EXPECT_TRUE(p.alice.open(from_bob).has_value());
}

TEST(SecureChannel, NeedsRekeyWarnsBeforeTheWall) {
  Pair p;
  p.alice.set_seq_limit(/*hard_limit=*/100, /*rekey_margin=*/10);
  EXPECT_FALSE(p.alice.needs_rekey());
  p.alice.advance_send_seq(89);
  EXPECT_FALSE(p.alice.needs_rekey());  // 89 + 10 < 100
  p.alice.advance_send_seq(90);
  EXPECT_TRUE(p.alice.needs_rekey());  // margin reached, seal still legal
  const auto record = p.alice.seal(crypto::to_bytes("still sealing"));
  EXPECT_TRUE(p.bob.open(record).has_value());
}

TEST(SecureChannel, ExhaustionAtTheRealDefaultLimit) {
  // Jump to just below 2^48 instead of sealing 2^48 records.
  Pair p;
  p.alice.advance_send_seq(SecureChannel::kDefaultSeqLimit - 1);
  EXPECT_TRUE(p.alice.needs_rekey());
  (void)p.alice.seal(crypto::to_bytes("last legal record"));
  EXPECT_THROW((void)p.alice.seal(crypto::to_bytes("reuse")),
               NonceExhaustedError);
}

TEST(SecureChannel, AdvanceSendSeqCannotRewind) {
  Pair p;
  p.alice.advance_send_seq(1000);
  EXPECT_THROW(p.alice.advance_send_seq(999), std::invalid_argument);
  EXPECT_NO_THROW(p.alice.advance_send_seq(1000));  // same value is a no-op
}

}  // namespace
}  // namespace tenet::netsim
