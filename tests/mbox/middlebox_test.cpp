// Integration tests for §3.3: attested in-path middleboxes with session-
// key provisioning.
#include "mbox/scenario.h"

#include <gtest/gtest.h>

namespace tenet::mbox {
namespace {

MboxScenarioConfig basic() {
  MboxScenarioConfig cfg;
  cfg.n_middleboxes = 1;
  cfg.patterns = {"ATTACK"};
  cfg.policy.require_both_endpoints = true;
  return cfg;
}

TEST(Middlebox, TlsThroughChainEndToEnd) {
  MboxDeployment dep(basic());
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.send(sid, "hello server");
  const auto at_server = dep.server_received(sid);
  ASSERT_EQ(at_server.size(), 1u);
  EXPECT_EQ(at_server[0], "hello server");
  const auto at_client = dep.client_received(sid);
  ASSERT_EQ(at_client.size(), 1u);
  EXPECT_EQ(at_client[0], "ok:hello server");
}

TEST(Middlebox, UnprovisionedMiddleboxIsBlind) {
  MboxDeployment dep(basic());
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.send(sid, "contains ATTACK signature");
  // Traffic flowed, but the middlebox saw only ciphertext.
  EXPECT_FALSE(dep.session_active(0, sid));
  EXPECT_EQ(dep.alerts(0), 0u);
  EXPECT_EQ(dep.inspected(0), 0u);
  EXPECT_GE(dep.opaque_forwarded(0), 2u);  // request + response records
  EXPECT_EQ(dep.server_received(sid).size(), 1u);
}

TEST(Middlebox, BilateralProvisioningActivatesDpi) {
  MboxDeployment dep(basic());
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));

  // One endpoint alone is not enough under the bilateral policy ("only
  // the middleboxes that BOTH end-points agree upon decrypt").
  dep.provision_from_client(sid);
  EXPECT_FALSE(dep.session_active(0, sid));
  dep.send(sid, "ATTACK before agreement");
  EXPECT_EQ(dep.alerts(0), 0u);

  dep.provision_from_server(sid);
  EXPECT_TRUE(dep.session_active(0, sid));
  dep.send(sid, "an ATTACK after agreement");
  EXPECT_GE(dep.alerts(0), 1u);
  EXPECT_GE(dep.inspected(0), 1u);
  // End-to-end traffic unaffected by inspection.
  const auto at_server = dep.server_received(sid);
  EXPECT_EQ(at_server.back(), "an ATTACK after agreement");
}

TEST(Middlebox, UnilateralModeEnablesOutsourcedDpi) {
  // "TLS traffic in enterprise networks can be sent to the SGX-enabled
  // cloud for deep packet inspection" — one endpoint provisions alone.
  MboxScenarioConfig cfg = basic();
  cfg.policy.require_both_endpoints = false;
  MboxDeployment dep(cfg);
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);
  EXPECT_TRUE(dep.session_active(0, sid));
  dep.send(sid, "exfil ATTACK payload");
  EXPECT_GE(dep.alerts(0), 1u);
}

TEST(Middlebox, CleanTrafficRaisesNoAlerts) {
  MboxScenarioConfig cfg = basic();
  cfg.policy.require_both_endpoints = false;
  MboxDeployment dep(cfg);
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);
  dep.send(sid, "perfectly benign request");
  dep.send(sid, "another innocent one");
  EXPECT_EQ(dep.alerts(0), 0u);
  EXPECT_GE(dep.inspected(0), 4u);  // 2 requests + 2 echo responses
}

TEST(Middlebox, IpsModeBlocksMatchingRecords) {
  MboxScenarioConfig cfg = basic();
  cfg.policy.require_both_endpoints = false;
  cfg.policy.block_on_match = true;
  MboxDeployment dep(cfg);
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);

  dep.send(sid, "benign");
  EXPECT_EQ(dep.server_received(sid).size(), 1u);

  dep.send(sid, "drop this ATTACK now");
  // The malicious record never reached the server.
  EXPECT_EQ(dep.server_received(sid).size(), 1u);
  EXPECT_GE(dep.blocked(0), 1u);
}

TEST(Middlebox, RogueMiddleboxFailsAttestationAndStaysBlind) {
  MboxScenarioConfig cfg = basic();
  cfg.policy.require_both_endpoints = false;
  cfg.rogue_index = 0;
  MboxDeployment dep(cfg);
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));

  dep.provision_from_client(sid);  // attestation of the rogue build fails
  EXPECT_FALSE(dep.session_active(0, sid));
  dep.send(sid, "ATTACK through the rogue box");
  EXPECT_EQ(dep.alerts(0), 0u);
  EXPECT_EQ(dep.inspected(0), 0u);
  // Traffic still flows (the rogue can only forward or drop).
  EXPECT_EQ(dep.server_received(sid).size(), 1u);
}

TEST(Middlebox, ChainOfMiddleboxesAllInspect) {
  MboxScenarioConfig cfg = basic();
  cfg.n_middleboxes = 3;
  cfg.policy.require_both_endpoints = false;
  MboxDeployment dep(cfg);
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);
  dep.send(sid, "one ATTACK for everyone");
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(dep.session_active(i, sid)) << "mbox " << i;
    EXPECT_GE(dep.alerts(i), 1u) << "mbox " << i;
  }
  EXPECT_EQ(dep.server_received(sid).size(), 1u);
}

TEST(Middlebox, Table3AttestationsEqualInPathMiddleboxes) {
  // Table 3: "TLS-aware middlebox: number of in-path middleboxes".
  for (const size_t n : {1u, 2u, 4u}) {
    MboxScenarioConfig cfg = basic();
    cfg.n_middleboxes = n;
    cfg.policy.require_both_endpoints = false;
    MboxDeployment dep(cfg);
    const uint32_t sid = dep.open_session();
    ASSERT_TRUE(dep.established(sid));
    dep.provision_from_client(sid);
    EXPECT_EQ(dep.client_attestations(), n) << "n=" << n;

    // Second session through the same chain: attestation is cached.
    const uint32_t sid2 = dep.open_session();
    ASSERT_TRUE(dep.established(sid2));
    dep.provision_from_client(sid2);
    EXPECT_EQ(dep.client_attestations(), n) << "n=" << n;
  }
}

TEST(Middlebox, PlaintextNeverOnWireEvenWhenInspected) {
  MboxScenarioConfig cfg = basic();
  cfg.policy.require_both_endpoints = false;
  MboxDeployment dep(cfg);
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);

  const std::string secret = "super-secret-ATTACK-credentials";
  const crypto::Bytes needle = crypto::to_bytes(secret);
  size_t sightings = 0;
  dep.sim().set_wiretap([&](const netsim::Message& m) {
    if (std::search(m.payload.begin(), m.payload.end(), needle.begin(),
                    needle.end()) != m.payload.end()) {
      ++sightings;
    }
  });
  dep.send(sid, secret);
  EXPECT_EQ(sightings, 0u);      // TLS everywhere on the wire
  EXPECT_GE(dep.alerts(0), 1u);  // yet the enclave DPI saw the plaintext
  EXPECT_EQ(dep.server_received(sid).back(), secret);
}

TEST(Middlebox, SessionsAreIsolated) {
  MboxScenarioConfig cfg = basic();
  cfg.policy.require_both_endpoints = false;
  MboxDeployment dep(cfg);
  const uint32_t sid1 = dep.open_session();
  const uint32_t sid2 = dep.open_session();
  ASSERT_TRUE(dep.established(sid1));
  ASSERT_TRUE(dep.established(sid2));
  dep.provision_from_client(sid1);  // only session 1 is provisioned
  EXPECT_TRUE(dep.session_active(0, sid1));
  EXPECT_FALSE(dep.session_active(0, sid2));
  dep.send(sid2, "ATTACK in unprovisioned session");
  EXPECT_EQ(dep.alerts(0), 0u);
  dep.send(sid1, "ATTACK in provisioned session");
  EXPECT_GE(dep.alerts(0), 1u);
}

TEST(Middlebox, AlertsCarryPatternIdsAndStreamOffsets) {
  MboxScenarioConfig cfg;
  cfg.n_middleboxes = 1;
  cfg.patterns = {"AAA", "BBB"};
  cfg.policy.require_both_endpoints = false;
  MboxDeployment dep(cfg);
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);

  dep.send(sid, "xxAAAyy");   // AAA ends at stream offset 5
  dep.send(sid, "zBBB");      // BBB ends at offset 7 + 4 = 11

  const crypto::Bytes wire = dep.mbox_node(0).control(kCtlAlerts);
  std::vector<std::pair<uint32_t, uint64_t>> alerts;
  crypto::Reader r(wire);
  while (!r.done()) {
    const uint32_t id = r.u32();
    const uint64_t off = r.u64();
    alerts.emplace_back(id, off);
  }
  // Client->server direction alerts (the echo responses also match, on
  // the other direction's scanner with its own offsets).
  ASSERT_GE(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].first, 0u);   // "AAA"
  EXPECT_EQ(alerts[0].second, 5u);
  const bool found_bbb = std::any_of(
      alerts.begin(), alerts.end(),
      [](const auto& a) { return a.first == 1 && a.second == 11; });
  EXPECT_TRUE(found_bbb);
}

TEST(Middlebox, ServerProvisionAloneInsufficientUnderBilateral) {
  MboxDeployment dep(basic());
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.provision_from_server(sid);
  EXPECT_FALSE(dep.session_active(0, sid));
  dep.send(sid, "half-agreed ATTACK");
  EXPECT_EQ(dep.alerts(0), 0u);
}

}  // namespace
}  // namespace tenet::mbox
