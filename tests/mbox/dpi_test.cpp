#include "mbox/dpi.h"

#include <gtest/gtest.h>

namespace tenet::mbox {
namespace {

PatternSet build(std::initializer_list<std::string> patterns) {
  PatternSet set;
  for (const std::string& p : patterns) set.add(p);
  set.build();
  return set;
}

std::vector<uint32_t> ids_of(const std::vector<DpiMatch>& matches) {
  std::vector<uint32_t> out;
  for (const DpiMatch& m : matches) out.push_back(m.pattern_id);
  return out;
}

TEST(Dpi, FindsSinglePattern) {
  const PatternSet set = build({"attack"});
  DpiScanner scanner(set);
  const auto matches = scanner.scan(crypto::to_bytes("an attack happened"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].pattern_id, 0u);
  EXPECT_EQ(matches[0].end_offset, 9u);  // "an attack" = 9 bytes
}

TEST(Dpi, NoFalsePositives) {
  const PatternSet set = build({"attack"});
  DpiScanner scanner(set);
  EXPECT_TRUE(scanner.scan(crypto::to_bytes("attac kattak atack")).empty());
}

TEST(Dpi, OverlappingPatternsAllReported) {
  const PatternSet set = build({"he", "she", "his", "hers"});
  DpiScanner scanner(set);
  const auto matches = scanner.scan(crypto::to_bytes("ushers"));
  // Classic Aho-Corasick example: "she", "he", "hers".
  std::vector<uint32_t> ids = ids_of(matches);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint32_t>{0, 1, 3}));
}

TEST(Dpi, RepeatedMatchesCounted) {
  const PatternSet set = build({"ab"});
  DpiScanner scanner(set);
  EXPECT_EQ(scanner.scan(crypto::to_bytes("ababab")).size(), 3u);
}

TEST(Dpi, PatternSpanningChunksFound) {
  // The streaming property the middlebox relies on: a signature split
  // across TLS records is still detected.
  const PatternSet set = build({"malware-signature"});
  DpiScanner scanner(set);
  EXPECT_TRUE(scanner.scan(crypto::to_bytes("prefix malware-si")).empty());
  const auto matches = scanner.scan(crypto::to_bytes("gnature suffix"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].end_offset, 7 + 17u);
}

TEST(Dpi, ResetClearsStreamState) {
  const PatternSet set = build({"xyz"});
  DpiScanner scanner(set);
  EXPECT_TRUE(scanner.scan(crypto::to_bytes("xy")).empty());
  scanner.reset();
  EXPECT_TRUE(scanner.scan(crypto::to_bytes("z")).empty());
  EXPECT_EQ(scanner.bytes_scanned(), 1u);
}

TEST(Dpi, BinaryPatternsSupported) {
  PatternSet set;
  set.add(std::string("\x00\xff\x00", 3));
  set.build();
  DpiScanner scanner(set);
  const crypto::Bytes data = {0x01, 0x00, 0xff, 0x00, 0x02};
  EXPECT_EQ(scanner.scan(data).size(), 1u);
}

TEST(Dpi, ManyPatternsLargeInput) {
  PatternSet set;
  for (int i = 0; i < 50; ++i) set.add("pattern" + std::to_string(i));
  set.build();
  DpiScanner scanner(set);
  std::string input;
  for (int i = 0; i < 50; i += 2) input += "xx pattern" + std::to_string(i);
  const auto matches = scanner.scan(crypto::to_bytes(input));
  // "pattern1" is a prefix of "pattern10".. careful: "pattern10" contains
  // "pattern1". We inserted even ids only; matches include prefix hits
  // (e.g. "pattern1" inside "pattern10" was not added — odd). Count >= 25.
  EXPECT_GE(matches.size(), 25u);
}

TEST(Dpi, RejectsMisuse) {
  PatternSet set;
  EXPECT_THROW(set.add(""), std::invalid_argument);
  set.add("x");
  EXPECT_THROW(DpiScanner{set}, std::logic_error);  // not built
  set.build();
  EXPECT_THROW(set.add("y"), std::logic_error);  // add after build
  EXPECT_NO_THROW(DpiScanner{set});
}

TEST(Dpi, PrefixPatternsReportedAtEveryOccurrence) {
  const PatternSet set = build({"a", "aa", "aaa"});
  DpiScanner scanner(set);
  const auto matches = scanner.scan(crypto::to_bytes("aaa"));
  // positions: a@1, a@2 + aa@2, a@3 + aa@3 + aaa@3 = 6 matches.
  EXPECT_EQ(matches.size(), 6u);
}

}  // namespace
}  // namespace tenet::mbox
