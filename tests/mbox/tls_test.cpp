#include "mbox/tls.h"

#include <gtest/gtest.h>

namespace tenet::mbox {
namespace {

struct Handshake {
  crypto::Drbg crng = crypto::Drbg::from_label(1, "tls.client");
  crypto::Drbg srng = crypto::Drbg::from_label(2, "tls.server");
  TlsClientSession client{crng};
  TlsServerSession server{srng};

  bool run() {
    const crypto::Bytes hello = client.hello();
    const auto server_hello = server.handle_hello(hello);
    if (!server_hello.has_value()) return false;
    const auto finished = client.handle_server_hello(*server_hello);
    if (!finished.has_value()) return false;
    return server.handle_finished(*finished);
  }
};

TEST(Tls, HandshakeCompletes) {
  Handshake h;
  ASSERT_TRUE(h.run());
  EXPECT_TRUE(h.client.established());
  EXPECT_TRUE(h.server.established());
  EXPECT_EQ(h.client.keys().channel_key, h.server.keys().channel_key);
  EXPECT_EQ(h.client.keys().channel_key.size(), 32u);
}

TEST(Tls, RecordsFlowBothWays) {
  Handshake h;
  ASSERT_TRUE(h.run());
  const auto at_server =
      h.server.channel().open(h.client.channel().seal(crypto::to_bytes("GET /")));
  ASSERT_TRUE(at_server.has_value());
  EXPECT_EQ(crypto::to_string(*at_server), "GET /");
  const auto at_client =
      h.client.channel().open(h.server.channel().seal(crypto::to_bytes("200 OK")));
  ASSERT_TRUE(at_client.has_value());
  EXPECT_EQ(crypto::to_string(*at_client), "200 OK");
}

TEST(Tls, ExportedKeysDecryptBothDirections) {
  // This is what a provisioned middlebox does: reconstruct passive views
  // from the exported key material.
  Handshake h;
  ASSERT_TRUE(h.run());
  netsim::SecureChannel c2s_view(h.client.keys().channel_key, false);
  netsim::SecureChannel s2c_view(h.client.keys().channel_key, true);

  const crypto::Bytes r1 = h.client.channel().seal(crypto::to_bytes("up"));
  const auto v1 = c2s_view.open(r1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(crypto::to_string(*v1), "up");
  ASSERT_TRUE(h.server.channel().open(r1).has_value());

  const crypto::Bytes r2 = h.server.channel().seal(crypto::to_bytes("down"));
  const auto v2 = s2c_view.open(r2);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(crypto::to_string(*v2), "down");
}

TEST(Tls, TamperedServerHelloRejected) {
  Handshake h;
  const crypto::Bytes hello = h.client.hello();
  auto server_hello = h.server.handle_hello(hello);
  ASSERT_TRUE(server_hello.has_value());
  (*server_hello)[server_hello->size() - 1] ^= 1;  // corrupt the MAC
  EXPECT_FALSE(h.client.handle_server_hello(*server_hello).has_value());
  EXPECT_FALSE(h.client.established());
}

TEST(Tls, TamperedFinishedRejected) {
  Handshake h;
  const crypto::Bytes hello = h.client.hello();
  const auto server_hello = h.server.handle_hello(hello);
  ASSERT_TRUE(server_hello.has_value());
  auto finished = h.client.handle_server_hello(*server_hello);
  ASSERT_TRUE(finished.has_value());
  (*finished)[finished->size() - 1] ^= 1;
  EXPECT_FALSE(h.server.handle_finished(*finished));
  EXPECT_FALSE(h.server.established());
}

TEST(Tls, MitmKeySubstitutionDetected) {
  // A MITM who replaces the server's DH public value cannot forge the
  // transcript MAC without the session keys.
  Handshake h;
  crypto::Drbg mrng = crypto::Drbg::from_label(9, "tls.mitm");
  const crypto::Bytes hello = h.client.hello();
  auto server_hello = h.server.handle_hello(hello);
  ASSERT_TRUE(server_hello.has_value());

  // Splice in the MITM's public value, keep everything else.
  crypto::Reader r(*server_hello);
  (void)r.take(4);
  const crypto::Bytes pub_s = r.lv();
  const crypto::DhKeyPair mitm(crypto::DhGroup::oakley_group2(), mrng);
  crypto::Bytes spliced;
  crypto::append(spliced, crypto::to_bytes("TLSS"));
  crypto::append_lv(spliced, mitm.public_bytes());
  crypto::append_lv(spliced, r.lv());  // nonce_s
  crypto::append_lv(spliced, r.lv());  // original MAC (now wrong)
  EXPECT_FALSE(h.client.handle_server_hello(spliced).has_value());
}

TEST(Tls, MalformedMessagesRejected) {
  Handshake h;
  crypto::Drbg rng = crypto::Drbg::from_label(3, "tls.garbage");
  EXPECT_FALSE(h.server.handle_hello(crypto::to_bytes("junk")).has_value());
  EXPECT_FALSE(h.server.handle_hello(rng.bytes(64)).has_value());
  (void)h.client.hello();
  EXPECT_FALSE(h.client.handle_server_hello(crypto::to_bytes("")).has_value());
}

TEST(Tls, DistinctSessionsDistinctKeys) {
  Handshake h1, h2;
  // Same seeds would collide; use different server rng for h2.
  h2.srng = crypto::Drbg::from_label(7, "tls.server2");
  ASSERT_TRUE(h1.run());
  ASSERT_TRUE(h2.run());
  EXPECT_NE(h1.client.keys().channel_key, h2.client.keys().channel_key);
}

TEST(Tls, KeysUnavailableBeforeEstablished) {
  Handshake h;
  EXPECT_THROW((void)h.client.keys(), std::logic_error);
  EXPECT_THROW((void)h.client.channel(), std::logic_error);
  EXPECT_THROW((void)h.server.keys(), std::logic_error);
}

TEST(Tls, SecretsDeriveDeterministically) {
  const crypto::Bytes shared(64, 0x5a);
  const crypto::Bytes nc(32, 1), ns(32, 2);
  const TlsSecrets a = TlsSecrets::derive(shared, nc, ns);
  const TlsSecrets b = TlsSecrets::derive(shared, nc, ns);
  EXPECT_EQ(a.channel_key, b.channel_key);
  EXPECT_NE(a.channel_key, a.server_mac_key);
  EXPECT_NE(a.server_mac_key, a.client_mac_key);
  // Nonces matter.
  const TlsSecrets c = TlsSecrets::derive(shared, ns, nc);
  EXPECT_NE(a.channel_key, c.channel_key);
}

}  // namespace
}  // namespace tenet::mbox
