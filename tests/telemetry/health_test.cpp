#include "telemetry/health.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "telemetry/events.h"
#include "telemetry/scrape.h"
#include "telemetry/trace.h"

#if TENET_TELEMETRY_ENABLED

namespace tenet::telemetry {
namespace {

/// Deterministic clock for event timestamps (the log stamps from
/// tracer().clock_now()); restores the tracer on exit.
class FakeEventClock {
 public:
  explicit FakeEventClock(uint64_t start = 0) : t_(start) {
    tracer().reset();
    tracer().set_clock(&FakeEventClock::read, this);
  }
  ~FakeEventClock() {
    tracer().clear_clock(this);
    tracer().reset();
  }
  void set(uint64_t us) { t_ = us; }

 private:
  static uint64_t read(void* ctx) {
    return static_cast<FakeEventClock*>(ctx)->t_;
  }
  uint64_t t_;
};

const ShardHealth* shard_of(const FleetHealth& fleet, uint32_t id) {
  for (const auto& s : fleet.shards) {
    if (s.shard == id) return &s;
  }
  return nullptr;
}

TEST(HealthModel, EmptyInputsReadHealthy) {
  const HealthModel model;
  Scraper scraper;
  EventLog log(8);
  const FleetHealth fleet = model.evaluate(scraper, log);
  EXPECT_EQ(fleet.state, HealthState::kHealthy);
  EXPECT_EQ(fleet.goodput, 1.0);
  EXPECT_FALSE(fleet.goodput_breached);
  EXPECT_TRUE(fleet.shards.empty());
}

TEST(HealthModel, DownShardReadsFailedUntilUpThenHealthy) {
  FakeEventClock clock(1000);
  const HealthModel model;
  Scraper scraper;
  EventLog log(8);
  log.emit(EventType::kShardDown, /*node=*/0, /*a=*/2);

  FleetHealth fleet = model.evaluate(scraper, log);
  const ShardHealth* down = shard_of(fleet, 2);
  ASSERT_NE(down, nullptr);
  EXPECT_EQ(down->state, HealthState::kFailed);
  EXPECT_EQ(down->down_since_us, 1000u);
  EXPECT_EQ(fleet.state, HealthState::kFailed);  // worst shard wins

  // Heal inside the 400 ms budget: healthy again, duration attributed.
  clock.set(201000);
  log.emit(EventType::kShardUp, /*node=*/1, /*a=*/2);
  fleet = model.evaluate(scraper, log);
  const ShardHealth* up = shard_of(fleet, 2);
  ASSERT_NE(up, nullptr);
  EXPECT_EQ(up->state, HealthState::kHealthy);
  EXPECT_EQ(up->down_since_us, 0u);
  EXPECT_EQ(up->last_heal_us, 200000u);
  EXPECT_FALSE(up->slo_breached);
  EXPECT_EQ(fleet.state, HealthState::kHealthy);
}

TEST(HealthModel, HealOverBudgetMarksShardDegraded) {
  FakeEventClock clock(0);
  const HealthModel model;  // default heal budget: 400 ms
  Scraper scraper;
  EventLog log(8);
  log.emit(EventType::kShardDown, 0, /*a=*/1);
  clock.set(500000);  // 500 ms outage
  log.emit(EventType::kShardUp, 0, /*a=*/1);

  const FleetHealth fleet = model.evaluate(scraper, log);
  const ShardHealth* s = shard_of(fleet, 1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->state, HealthState::kDegraded);
  EXPECT_TRUE(s->slo_breached);
  EXPECT_EQ(s->last_heal_us, 500000u);
  EXPECT_EQ(fleet.state, HealthState::kDegraded);
}

TEST(HealthModel, RollbackRefusedInWindowDegrades) {
  FakeEventClock clock(100);
  const HealthModel model;
  Scraper scraper;
  EventLog log(8);
  log.emit(EventType::kRollbackRefused, /*node=*/3, /*a=*/3);
  const FleetHealth fleet = model.evaluate(scraper, log);
  const ShardHealth* s = shard_of(fleet, 3);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->state, HealthState::kDegraded);
  EXPECT_EQ(s->rollbacks_refused, 1u);
}

TEST(HealthModel, FailoverAndSnapshotCountsAttributeToAffectedShard) {
  FakeEventClock clock(100);
  const HealthModel model;
  Scraper scraper;
  EventLog log(8);
  // Shard 1 adopted shard 4's batch; shard 4 later merged a snapshot.
  log.emit(EventType::kFailoverAdopted, /*node=*/1, /*a=*/4, /*b=*/6);
  log.emit(EventType::kSnapshotInstalled, /*node=*/4, /*a=*/4, /*b=*/12);
  const FleetHealth fleet = model.evaluate(scraper, log);
  const ShardHealth* s = shard_of(fleet, 4);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->failovers_adopted, 1u);
  EXPECT_EQ(s->snapshots_installed, 1u);
  EXPECT_EQ(s->state, HealthState::kHealthy);  // facts, not verdicts
}

TEST(HealthModel, WindowQuantileUsesBucketDeltaOnly) {
  Histogram base;
  for (int i = 0; i < 10; ++i) base.record(1);  // old samples, tiny values
  Histogram tip = base;
  for (int i = 0; i < 10; ++i) tip.record(4096);  // window samples

  // The window holds only the ten 4096-ish samples: every quantile lands
  // in that log2 bucket [4096, 8191], never in the old bucket of 1s.
  EXPECT_EQ(HealthModel::window_quantile(base, tip, 0.0), 4096u);
  EXPECT_GE(HealthModel::window_quantile(base, tip, 0.99), 4096u);
  EXPECT_LE(HealthModel::window_quantile(base, tip, 0.99), 8191u);
  // Degenerate windows read as zero.
  EXPECT_EQ(HealthModel::window_quantile(tip, tip, 0.5), 0u);
  EXPECT_EQ(HealthModel::window_quantile(tip, base, 0.5), 0u);
}

TEST(HealthModel, GoodputAndHopLatencyComeFromScrapeWindows) {
  FakeEventClock clock(100);
  SloPolicy policy;
  policy.window_samples = 2;
  const HealthModel model(policy);
  EventLog log(8);
  Scraper scraper;

  Counter& sent = registry().counter("net.messages_sent");
  Counter& delivered = registry().counter("net.messages_delivered");
  Histogram& hops = registry().histogram("shard.s41.hop_latency_us");

  scraper.scrape(/*ts_us=*/1000);  // window base
  sent.add(10);
  delivered.add(3);  // 0.3 goodput over the window — under the 0.5 floor
  for (int i = 0; i < 10; ++i) hops.record(8192);  // p99 over the 5 ms cap
  scraper.scrape(/*ts_us=*/2000);  // window tip

  const FleetHealth fleet = model.evaluate(scraper, log);
  EXPECT_EQ(fleet.ts_us, 2000u);
  EXPECT_DOUBLE_EQ(fleet.goodput, 0.3);
  EXPECT_TRUE(fleet.goodput_breached);
  // The hop histogram names the shard; it gets a row without any event.
  const ShardHealth* s = shard_of(fleet, 41);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->hops_in_window, 10u);
  EXPECT_GE(s->p99_hop_latency_us, 8192u);
  EXPECT_TRUE(s->slo_breached);
  EXPECT_EQ(s->state, HealthState::kDegraded);
  EXPECT_EQ(fleet.state, HealthState::kDegraded);
}

TEST(HealthModel, ReportJsonIsDeterministicAndCarriesVerdicts) {
  FakeEventClock clock(100);
  const HealthModel model;
  Scraper scraper;
  EventLog log(8);
  log.emit(EventType::kShardDown, 0, /*a=*/1);
  log.emit(EventType::kEpcPressure, 2, /*a=*/64);

  const std::string a = model.report_json(scraper, log);
  const std::string b = model.report_json(scraper, log);
  EXPECT_EQ(a, b);  // pure function of (scraper, log, policy)
  EXPECT_NE(a.find("\"state\":\"failed\""), std::string::npos);
  EXPECT_NE(a.find("\"epc_pressure\":1"), std::string::npos);
  EXPECT_NE(a.find("\"policy\":"), std::string::npos);
  EXPECT_NE(a.find("\"shards\":[{\"shard\":1"), std::string::npos);
}

}  // namespace
}  // namespace tenet::telemetry

#endif  // TENET_TELEMETRY_ENABLED
