#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

namespace tenet::telemetry {
namespace {

// Deterministic test clock: advances 100 us per query.
struct FakeClock {
  uint64_t t = 0;
  static uint64_t read(void* ctx) {
    return static_cast<FakeClock*>(ctx)->t += 100;
  }
};

TEST(Tracer, LogicalClockTicksWithoutInstalledClock) {
  Tracer t;
  EXPECT_EQ(t.now(), 1u);
  EXPECT_EQ(t.now(), 2u);
  t.reset();
  EXPECT_EQ(t.now(), 1u);
}

TEST(Tracer, NowIsStrictlyMonotoneEvenWithStuckClock) {
  // Simultaneous simulator events share a virtual timestamp; now() must
  // still strictly increase so nested spans get distinct endpoints.
  Tracer t;
  FakeClock frozen{500};
  t.set_clock([](void*) { return uint64_t{600}; }, &frozen);
  EXPECT_EQ(t.now(), 600u);
  EXPECT_EQ(t.now(), 601u);
  EXPECT_EQ(t.now(), 602u);
}

TEST(Tracer, ClearClockOnlyByOwner) {
  Tracer t;
  FakeClock clock;
  t.set_clock(&FakeClock::read, &clock);
  int other = 0;
  t.clear_clock(&other);  // not the owner: clock stays installed
  EXPECT_EQ(t.now(), 100u);
  t.clear_clock(&clock);  // owner: back to the logical tick
  EXPECT_EQ(t.now(), 101u);
}

TEST(Tracer, CompleteRecordsDuration) {
  Tracer t;
  FakeClock clock;
  t.set_clock(&FakeClock::read, &clock);
  const uint64_t begin = t.now();  // 100
  const uint64_t inner = t.now();  // 200
  t.complete("cat", "inner", inner);  // closes at 300
  t.complete("cat", "outer", begin);  // closes at 400
  EXPECT_EQ(t.event_count(), 2u);
  // Events are recorded in close order: inner (ts=200,dur=100) first,
  // then outer (ts=100,dur=300) — properly nested intervals.
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"name\":\"inner\",\"cat\":\"cat\",\"ph\":\"X\","
                      "\"ts\":200,\"dur\":100"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"outer\",\"cat\":\"cat\",\"ph\":\"X\","
                      "\"ts\":100,\"dur\":300"),
            std::string::npos)
      << json;
}

TEST(Tracer, MintRootStartsATraceAndChildrenInheritIt) {
  Tracer t;
  // No active trace: a non-root span records ids but trace_id stays 0.
  auto plain = t.begin_span(/*mint_root=*/false);
  t.end_span("test", "plain", plain);
  EXPECT_EQ(t.events().back().trace_id, 0u);

  auto root = t.begin_span(/*mint_root=*/true);
  EXPECT_EQ(t.context().trace_id, 1u);
  auto child = t.begin_span(/*mint_root=*/false);
  EXPECT_EQ(t.context().trace_id, 1u);
  EXPECT_EQ(t.context().span_id, child.span_id);
  // A root opened while a trace is active joins it instead of minting.
  auto nested_root = t.begin_span(/*mint_root=*/true);
  EXPECT_EQ(t.context().trace_id, 1u);
  t.end_span("test", "nested_root", nested_root);
  t.end_span("test", "child", child);
  t.end_span("test", "root", root);

  const auto& evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  // Close order: plain, nested_root, child, root. Parent edges form the
  // chain root <- child <- nested_root.
  EXPECT_EQ(evs[3].parent_span_id, 0u);
  EXPECT_EQ(evs[2].parent_span_id, evs[3].span_id);
  EXPECT_EQ(evs[1].parent_span_id, evs[2].span_id);
  for (size_t i = 1; i < evs.size(); ++i) EXPECT_EQ(evs[i].trace_id, 1u);
  // Context fully restored after the outermost close.
  EXPECT_TRUE(t.context().empty());
}

TEST(Tracer, ChargeLandsOnInnermostOpenSpan) {
  Tracer t;
  t.charge(CostKind::kNormal, 7);  // no span open: untraced
  auto outer = t.begin_span(true);
  t.charge(CostKind::kSgxUser, 3);
  {
    auto inner = t.begin_span(false);
    t.charge(CostKind::kCrypto, 900);
    t.charge(CostKind::kTransition, 2);
    t.end_span("test", "inner", inner);
  }
  t.charge(CostKind::kPaging, 5);
  t.end_span("test", "outer", outer);

  const auto& inner_ev = t.events()[0];
  const auto& outer_ev = t.events()[1];
  EXPECT_EQ(inner_ev.self.crypto, 900u);
  EXPECT_EQ(inner_ev.self.transitions, 2u);
  EXPECT_EQ(inner_ev.incl, inner_ev.self);
  // Outer self excludes the inner span's charges; incl folds them in.
  EXPECT_EQ(outer_ev.self.sgx_user, 3u);
  EXPECT_EQ(outer_ev.self.paging, 5u);
  EXPECT_EQ(outer_ev.self.crypto, 0u);
  EXPECT_EQ(outer_ev.incl.crypto, 900u);
  EXPECT_EQ(outer_ev.incl.transitions, 2u);
  EXPECT_EQ(outer_ev.incl.sgx_user, 3u);
  // Global invariant: sum of span selfs + untraced == total, exactly.
  TraceCost sum = t.cost_untraced();
  for (const auto& e : t.events()) sum.add(e.self);
  EXPECT_EQ(sum, t.cost_total());
  EXPECT_EQ(t.cost_untraced().normal, 7u);
}

TEST(Tracer, ChromeJsonCarriesContextCostsAndTotals) {
  Tracer t;
  auto root = t.begin_span(true);
  t.charge(CostKind::kSgxUser, 2);
  t.end_span("sgx", "ecall", root);
  t.charge(CostKind::kNormal, 9);  // untraced
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"args\":{\"trace\":1,\"span\":1,\"parent\":0,"
                      "\"flags\":0,\"self\":{\"sgx\":2,\"priv\":0,\"norm\":0,"
                      "\"crypto\":0,\"paging\":0,\"trans\":0}}"),
            std::string::npos)
      << json;
  // incl == self: omitted. Grand totals present because costs exist.
  EXPECT_EQ(json.find("\"incl\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"otherData\":{\"costTotal\":{\"sgx\":2,\"priv\":0,"
                      "\"norm\":9,\"crypto\":0,\"paging\":0,\"trans\":0},"
                      "\"costUntraced\":{\"sgx\":0,\"priv\":0,\"norm\":9,"
                      "\"crypto\":0,\"paging\":0,\"trans\":0}}"),
            std::string::npos)
      << json;
}

TEST(Tracer, ChromeJsonOmitsTotalsWhenNothingCharged) {
  Tracer t;
  auto s = t.begin_span(true);
  t.end_span("app", "uncosted", s);
  EXPECT_EQ(t.chrome_json().find("otherData"), std::string::npos);
}

TEST(Tracer, ChromeJsonEscapesNames) {
  Tracer t;
  t.complete("c\\at", "na\"me\n", t.now());
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"name\":\"na\\\"me\\n\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cat\":\"c\\\\at\""), std::string::npos) << json;
}

TEST(Tracer, ResetRestartsIds) {
  Tracer t;
  auto s = t.begin_span(true);
  t.end_span("a", "b", s);
  t.reset();
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_FALSE(t.cost_total().any());
  auto s2 = t.begin_span(true);
  EXPECT_EQ(s2.span_id, 1u);
  EXPECT_EQ(t.context().trace_id, 1u);
  t.end_span("a", "b", s2);
}

#if TENET_TELEMETRY_ENABLED
TEST(ContextScope, InstallsAndRestoresWithExtraFlags) {
  set_enabled(true);
  tracer().reset();
  const TraceContext before = tracer().context();
  const TraceContext captured{42, 7, 0};
  {
    ContextScope install(captured, TraceContext::kFlagRetx);
    EXPECT_EQ(tracer().context().trace_id, 42u);
    EXPECT_EQ(tracer().context().span_id, 7u);
    EXPECT_EQ(tracer().context().flags, TraceContext::kFlagRetx);
    // Spans opened under the installed context become its children and
    // inherit the flags.
    TraceContext grabbed;
    {
      TENET_SPAN("test", "under_ctx");
      TENET_TRACE_CAPTURE(grabbed);
    }
    EXPECT_EQ(grabbed.trace_id, 42u);
    EXPECT_EQ(grabbed.flags, TraceContext::kFlagRetx);
  }
  EXPECT_EQ(tracer().context().trace_id, before.trace_id);
  EXPECT_EQ(tracer().context().flags, before.flags);
  const auto& ev = tracer().events().back();
  EXPECT_EQ(ev.trace_id, 42u);
  EXPECT_EQ(ev.parent_span_id, 7u);
  EXPECT_EQ(ev.flags, TraceContext::kFlagRetx);
  set_enabled(false);
  tracer().reset();
}

TEST(SpanScope, InertWhenDisabled) {
  set_enabled(false);
  tracer().reset();
  {
    TENET_SPAN("test", "disabled_span");
  }
  EXPECT_EQ(tracer().event_count(), 0u);
}

TEST(SpanScope, RecordsNestedSpansWhenEnabled) {
  set_enabled(true);
  tracer().reset();
  {
    TENET_SPAN("test", "outer");
    { TENET_SPAN("test", "inner"); }
  }
  set_enabled(false);
  ASSERT_EQ(tracer().event_count(), 2u);
  const std::string json = tracer().chrome_json();
  // Inner closes first and must nest strictly inside outer.
  EXPECT_LT(json.find("inner"), json.find("outer"));
  tracer().reset();
}
#endif  // TENET_TELEMETRY_ENABLED

// Golden-file check: a scripted trace must serialize byte-for-byte to the
// committed Chrome-trace JSON (viewable in chrome://tracing / Perfetto).
// Catches accidental format drift that field-wise checks would miss.
TEST(Tracer, ChromeJsonMatchesGoldenFile) {
  Tracer t;
  FakeClock clock;
  t.set_clock(&FakeClock::read, &clock);
  const uint64_t launch = t.now();
  t.complete("sgx", "enclave_launch", launch);
  const uint64_t ecall = t.now();
  const uint64_t ocall = t.now();
  t.complete("sgx", "ocall", ocall);
  t.complete("sgx", "ecall", ecall);

  const std::string path =
      std::string(TENET_TELEMETRY_TEST_DATA) + "/golden_trace.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  std::string want = golden.str();
  // The committed file ends with a newline (text file); chrome_json() does
  // not emit one.
  if (!want.empty() && want.back() == '\n') want.pop_back();
  EXPECT_EQ(t.chrome_json(), want);
}

}  // namespace
}  // namespace tenet::telemetry
