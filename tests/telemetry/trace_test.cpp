#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

namespace tenet::telemetry {
namespace {

// Deterministic test clock: advances 100 us per query.
struct FakeClock {
  uint64_t t = 0;
  static uint64_t read(void* ctx) {
    return static_cast<FakeClock*>(ctx)->t += 100;
  }
};

TEST(Tracer, LogicalClockTicksWithoutInstalledClock) {
  Tracer t;
  EXPECT_EQ(t.now(), 1u);
  EXPECT_EQ(t.now(), 2u);
  t.reset();
  EXPECT_EQ(t.now(), 1u);
}

TEST(Tracer, NowIsStrictlyMonotoneEvenWithStuckClock) {
  // Simultaneous simulator events share a virtual timestamp; now() must
  // still strictly increase so nested spans get distinct endpoints.
  Tracer t;
  FakeClock frozen{500};
  t.set_clock([](void*) { return uint64_t{600}; }, &frozen);
  EXPECT_EQ(t.now(), 600u);
  EXPECT_EQ(t.now(), 601u);
  EXPECT_EQ(t.now(), 602u);
}

TEST(Tracer, ClearClockOnlyByOwner) {
  Tracer t;
  FakeClock clock;
  t.set_clock(&FakeClock::read, &clock);
  int other = 0;
  t.clear_clock(&other);  // not the owner: clock stays installed
  EXPECT_EQ(t.now(), 100u);
  t.clear_clock(&clock);  // owner: back to the logical tick
  EXPECT_EQ(t.now(), 101u);
}

TEST(Tracer, CompleteRecordsDuration) {
  Tracer t;
  FakeClock clock;
  t.set_clock(&FakeClock::read, &clock);
  const uint64_t begin = t.now();  // 100
  const uint64_t inner = t.now();  // 200
  t.complete("cat", "inner", inner);  // closes at 300
  t.complete("cat", "outer", begin);  // closes at 400
  EXPECT_EQ(t.event_count(), 2u);
  // Events are recorded in close order: inner (ts=200,dur=100) first,
  // then outer (ts=100,dur=300) — properly nested intervals.
  const std::string json = t.chrome_json();
  EXPECT_NE(json.find("\"name\":\"inner\",\"cat\":\"cat\",\"ph\":\"X\","
                      "\"ts\":200,\"dur\":100"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"outer\",\"cat\":\"cat\",\"ph\":\"X\","
                      "\"ts\":100,\"dur\":300"),
            std::string::npos)
      << json;
}

#if TENET_TELEMETRY_ENABLED
TEST(SpanScope, InertWhenDisabled) {
  set_enabled(false);
  tracer().reset();
  {
    TENET_SPAN("test", "disabled_span");
  }
  EXPECT_EQ(tracer().event_count(), 0u);
}

TEST(SpanScope, RecordsNestedSpansWhenEnabled) {
  set_enabled(true);
  tracer().reset();
  {
    TENET_SPAN("test", "outer");
    { TENET_SPAN("test", "inner"); }
  }
  set_enabled(false);
  ASSERT_EQ(tracer().event_count(), 2u);
  const std::string json = tracer().chrome_json();
  // Inner closes first and must nest strictly inside outer.
  EXPECT_LT(json.find("inner"), json.find("outer"));
  tracer().reset();
}
#endif  // TENET_TELEMETRY_ENABLED

// Golden-file check: a scripted trace must serialize byte-for-byte to the
// committed Chrome-trace JSON (viewable in chrome://tracing / Perfetto).
// Catches accidental format drift that field-wise checks would miss.
TEST(Tracer, ChromeJsonMatchesGoldenFile) {
  Tracer t;
  FakeClock clock;
  t.set_clock(&FakeClock::read, &clock);
  const uint64_t launch = t.now();
  t.complete("sgx", "enclave_launch", launch);
  const uint64_t ecall = t.now();
  const uint64_t ocall = t.now();
  t.complete("sgx", "ocall", ocall);
  t.complete("sgx", "ecall", ecall);

  const std::string path =
      std::string(TENET_TELEMETRY_TEST_DATA) + "/golden_trace.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file: " << path;
  std::ostringstream golden;
  golden << in.rdbuf();
  std::string want = golden.str();
  // The committed file ends with a newline (text file); chrome_json() does
  // not emit one.
  if (!want.empty() && want.back() == '\n') want.pop_back();
  EXPECT_EQ(t.chrome_json(), want);
}

}  // namespace
}  // namespace tenet::telemetry
