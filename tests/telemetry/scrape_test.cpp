#include "telemetry/scrape.h"

#include <gtest/gtest.h>

#include <string>

namespace tenet::telemetry {
namespace {

// The registry is process-global; each test uses its own uniquely-named
// instruments so parallel-suite state never collides.

TEST(Scraper, RingEvictsOldestButKeepsTotal) {
  Scraper s(/*capacity=*/2);
  EXPECT_EQ(s.capacity(), 2u);
  s.scrape(1000);
  s.scrape(2000);
  s.scrape(3000);
  EXPECT_EQ(s.total_scrapes(), 3u);
  EXPECT_EQ(s.size(), 2u);
  const std::string jsonl = s.jsonl();
  // seq is the global scrape index, so eviction is visible: the retained
  // window is samples 1 and 2, sample 0 is gone.
  EXPECT_EQ(jsonl.find("\"seq\":0,"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("{\"seq\":1,\"ts_us\":2000,"), std::string::npos);
  EXPECT_NE(jsonl.find("{\"seq\":2,\"ts_us\":3000,"), std::string::npos);
  s.clear();
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.total_scrapes(), 0u);
}

TEST(Scraper, ZeroCapacityMeansOne) {
  Scraper s(0);
  EXPECT_EQ(s.capacity(), 1u);
  s.scrape(10);
  s.scrape(20);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Scraper, JsonlSnapshotsRegistryState) {
  registry().counter("scrapetest.jsonl.hits").add(7);
  registry().gauge("scrapetest.jsonl.depth").set(9);
  registry().gauge("scrapetest.jsonl.depth").set(4);
  registry().histogram("scrapetest.jsonl.lat").record(100);

  Scraper s;
  s.scrape(1234);
  registry().counter("scrapetest.jsonl.hits").add(100);  // after the scrape
  const std::string jsonl = s.jsonl();
  // One line per sample, each a standalone JSON object.
  EXPECT_EQ(jsonl.back(), '\n');
  // The sample holds the value at scrape time, not the live value.
  EXPECT_NE(jsonl.find("\"scrapetest.jsonl.hits\":7"), std::string::npos)
      << jsonl;
  EXPECT_NE(jsonl.find("\"scrapetest.jsonl.depth\":{\"value\":4,\"max\":9}"),
            std::string::npos)
      << jsonl;
  // Histograms render in the same flat-JSON shape as metrics_json.
  EXPECT_NE(jsonl.find("\"scrapetest.jsonl.lat\":{\"count\":1,\"sum\":100,"),
            std::string::npos)
      << jsonl;
}

TEST(Scraper, PrometheusRendersNewestSample) {
  registry().counter("scrapetest.prom.sent").add(3);
  registry().gauge("scrapetest.prom.queue").set(5);
  auto& h = registry().histogram("scrapetest.prom.bytes");
  h.record(0);
  h.record(3);
  h.record(3);

  Scraper s;
  EXPECT_EQ(s.prometheus(), "");  // nothing scraped yet
  s.scrape(2'500'000);  // 2500 ms on the virtual clock
  const std::string prom = s.prometheus();
  // Dots map to underscores; timestamps are virtual-clock milliseconds.
  // HELP precedes TYPE and carries the original dotted registry name.
  EXPECT_NE(prom.find("# HELP scrapetest_prom_sent counter "
                      "'scrapetest.prom.sent' from the tenet registry\n"
                      "# TYPE scrapetest_prom_sent counter\n"
                      "scrapetest_prom_sent 3 2500\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# HELP scrapetest_prom_queue gauge "
                      "'scrapetest.prom.queue' from the tenet registry\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# HELP scrapetest_prom_queue_max high-watermark"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# HELP scrapetest_prom_bytes histogram "
                      "'scrapetest.prom.bytes' from the tenet registry\n"
                      "# TYPE scrapetest_prom_bytes histogram\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("scrapetest_prom_queue 5 2500\n"), std::string::npos);
  EXPECT_NE(prom.find("scrapetest_prom_queue_max 5 2500\n"),
            std::string::npos);
  // Log2 buckets render cumulatively: value 0 -> le="0", the two 3s land
  // in [2,3] -> le="3", then the +Inf total.
  EXPECT_NE(prom.find("scrapetest_prom_bytes_bucket{le=\"0\"} 1 2500\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("scrapetest_prom_bytes_bucket{le=\"3\"} 3 2500\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("scrapetest_prom_bytes_bucket{le=\"+Inf\"} 3 2500\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("scrapetest_prom_bytes_sum 6 2500\n"),
            std::string::npos);
  EXPECT_NE(prom.find("scrapetest_prom_bytes_count 3 2500\n"),
            std::string::npos);
  EXPECT_NE(prom.find("scrapetest_prom_bytes{quantile=\"0.99\"}"),
            std::string::npos);
  // The tail quantile for SLO dashboards rides along and agrees with the
  // instrument's own estimator.
  EXPECT_NE(prom.find("scrapetest_prom_bytes{quantile=\"0.999\"} " +
                      std::to_string(h.quantile(0.999)) + " 2500\n"),
            std::string::npos)
      << prom;
}

}  // namespace
}  // namespace tenet::telemetry
