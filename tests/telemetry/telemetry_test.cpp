#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace tenet::telemetry {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksValueAndHighWaterMark) {
  Gauge g;
  g.set(5);
  g.add(3);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 8);
  g.set(-4);  // going down never lowers the high-water mark
  EXPECT_EQ(g.value(), -4);
  EXPECT_EQ(g.max_value(), 8);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
}

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(255), 8u);
  EXPECT_EQ(Histogram::bucket_of(256), 9u);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), 64u);
  static_assert(Histogram::kBuckets == 65);  // widths 0..64 all in range
}

TEST(Histogram, BucketFloorIsSmallestMemberAndRoundTrips) {
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(9), 256u);
  EXPECT_EQ(Histogram::bucket_floor(64), uint64_t{1} << 63);
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_floor(i)), i) << i;
  }
  // A bucket's floor is its smallest member: floor-1 lands one bucket down.
  for (size_t i = 2; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_floor(i) - 1), i - 1);
  }
}

TEST(Histogram, RecordUpdatesAllStatistics) {
  Histogram h;
  EXPECT_EQ(h.min(), 0u);  // defined as 0 before the first sample
  EXPECT_EQ(h.mean(), 0.0);
  for (const uint64_t v : {0u, 1u, 3u, 4u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1008u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1008.0 / 5);
  EXPECT_EQ(h.bucket(0), 1u);   // 0
  EXPECT_EQ(h.bucket(1), 1u);   // 1
  EXPECT_EQ(h.bucket(2), 1u);   // 3
  EXPECT_EQ(h.bucket(3), 1u);   // 4
  EXPECT_EQ(h.bucket(10), 1u);  // 1000 in [512, 1024)
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket(10), 0u);
}

TEST(Histogram, QuantilesInterpolateWithinBuckets) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty histogram
  h.record(100);
  // Single sample: every quantile is that sample (clamped to [min, max]).
  EXPECT_EQ(h.quantile(0.0), 100u);
  EXPECT_EQ(h.quantile(0.5), 100u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  h.reset();
  // Uniform 1..1000: log2-bucket interpolation stays within a bucket
  // width of the exact rank statistic.
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const uint64_t p50 = h.quantile(0.50);
  const uint64_t p90 = h.quantile(0.90);
  const uint64_t p99 = h.quantile(0.99);
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p50, 1023u);
  EXPECT_GE(p90, 512u);
  EXPECT_LE(p90, 1023u);
  EXPECT_GE(p99, p90);
  EXPECT_LE(p99, 1000u);  // clamped to the observed max
  // Out-of-range q is clamped, monotone in q.
  EXPECT_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_LE(h.quantile(0.25), p50);
}

TEST(Registry, SameNameSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.counter("y"));
  // Kinds are independent namespaces.
  reg.gauge("x").set(7);
  reg.histogram("x").record(3);
  EXPECT_EQ(reg.counters().size(), 2u);
  EXPECT_EQ(reg.gauges().size(), 1u);
  EXPECT_EQ(reg.histograms().size(), 1u);
}

TEST(Registry, ResetValuesKeepsInstrumentAddresses) {
  Registry reg;
  Counter& c = reg.counter("events");
  c.add(9);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("events"), &c);  // cached references stay valid
}

TEST(Registry, MetricsJsonIsDeterministicAndSorted) {
  Registry reg;
  // Insert out of order; map keying must sort the export.
  reg.counter("z.second").add(2);
  reg.counter("a.first").add(1);
  reg.gauge("level").set(3);
  reg.gauge("level").set(1);
  reg.histogram("bytes").record(0);
  reg.histogram("bytes").record(100);
  reg.histogram("bytes").record(100);
  const std::string expect =
      "{\"counters\":{\"a.first\":1,\"z.second\":2},"
      "\"gauges\":{\"level\":{\"value\":1,\"max\":3}},"
      "\"histograms\":{\"bytes\":{\"count\":3,\"sum\":200,\"min\":0,"
      "\"max\":100,\"p50\":64,\"p90\":89,\"p99\":95,"
      "\"buckets\":{\"0\":1,\"64\":2}}}";
  EXPECT_EQ(reg.metrics_json(), expect + "}");
  EXPECT_EQ(reg.metrics_json(), reg.metrics_json());
}

#if TENET_TELEMETRY_ENABLED
TEST(Macros, NoOpWhenDisabledCountWhenEnabled) {
  set_enabled(false);
  TENET_COUNT("test.macro.counter");
  TENET_GAUGE_SET("test.macro.gauge", 5);
  TENET_HISTOGRAM("test.macro.histogram", 7);
  // Disabled macros must not even create the instruments.
  EXPECT_EQ(registry().counters().count("test.macro.counter"), 0u);
  EXPECT_EQ(registry().gauges().count("test.macro.gauge"), 0u);
  EXPECT_EQ(registry().histograms().count("test.macro.histogram"), 0u);

  set_enabled(true);
  TENET_COUNT("test.macro.counter");
  TENET_COUNT("test.macro.counter", 4);
  TENET_GAUGE_ADD("test.macro.gauge", 5);
  TENET_HISTOGRAM("test.macro.histogram", 7);
  set_enabled(false);
  TENET_COUNT("test.macro.counter", 100);  // ignored again

  EXPECT_EQ(registry().counter("test.macro.counter").value(), 5u);
  EXPECT_EQ(registry().gauge("test.macro.gauge").value(), 5);
  EXPECT_EQ(registry().histogram("test.macro.histogram").count(), 1u);
}
#endif  // TENET_TELEMETRY_ENABLED

}  // namespace
}  // namespace tenet::telemetry
