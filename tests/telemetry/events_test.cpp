#include "telemetry/events.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/trace.h"

#if TENET_TELEMETRY_ENABLED

namespace tenet::telemetry {
namespace {

/// Installs a deterministic clock on the global tracer (the event log
/// stamps from tracer().clock_now()) and restores everything on exit.
class FakeEventClock {
 public:
  explicit FakeEventClock(uint64_t start = 1000) : t_(start) {
    tracer().reset();
    tracer().set_clock(&FakeEventClock::read, this);
  }
  ~FakeEventClock() {
    tracer().clear_clock(this);
    tracer().reset();
  }
  void advance(uint64_t us) { t_ += us; }

 private:
  static uint64_t read(void* ctx) {
    return static_cast<FakeEventClock*>(ctx)->t_;
  }
  uint64_t t_;
};

TEST(EventLog, EmitStampsSequenceAndVirtualClock) {
  FakeEventClock clock(500);
  EventLog log(8);
  log.emit(EventType::kRekey, /*node=*/3, /*a=*/7);
  clock.advance(250);
  log.emit(EventType::kShardDown, /*node=*/0, /*a=*/2, /*b=*/1);

  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[0].ts_us, 500u);
  EXPECT_EQ(events[0].type, EventType::kRekey);
  EXPECT_EQ(events[0].node, 3u);
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 0u);
  EXPECT_EQ(events[1].seq, 2u);
  EXPECT_EQ(events[1].ts_us, 750u);
  EXPECT_EQ(events[1].b, 1u);
  EXPECT_EQ(log.total(), 2u);
  EXPECT_EQ(log.evicted(), 0u);
  EXPECT_TRUE(log.consistent());
}

TEST(EventLog, RingEvictsOldestAndCountsSurviveEviction) {
  FakeEventClock clock;
  EventLog log(4);
  for (int i = 0; i < 10; ++i) log.emit(EventType::kEpcPressure, 1);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.evicted(), 6u);
  // Oldest-first snapshot holds exactly the last four seqs.
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].seq, 7 + i);
  // Per-type counts include the evicted emissions.
  EXPECT_EQ(log.count(EventType::kEpcPressure), 10u);
  EXPECT_EQ(log.count(EventType::kRekey), 0u);
  EXPECT_TRUE(log.consistent());
}

TEST(EventLog, JsonlMatchesExportContract) {
  FakeEventClock clock(42);
  EventLog log(4);
  log.emit(EventType::kFailoverAdopted, /*node=*/2, /*a=*/1, /*b=*/9);
  EXPECT_EQ(log.jsonl(),
            "{\"seq\":1,\"ts_us\":42,\"type\":\"failover_adopted\","
            "\"node\":2,\"a\":1,\"b\":9}\n");
}

TEST(EventLog, WriteJsonlRoundTrips) {
  FakeEventClock clock;
  EventLog log(4);
  log.emit(EventType::kPartitionCut, 5, 6);
  log.emit(EventType::kPartitionHeal, 0);
  const std::string path = ::testing::TempDir() + "tenet_events_test.jsonl";
  ASSERT_TRUE(log.write_jsonl(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), log.jsonl());
  std::remove(path.c_str());
}

TEST(EventLog, ClearRestartsSequenceAndCounts) {
  FakeEventClock clock;
  EventLog log(2);
  for (int i = 0; i < 5; ++i) log.emit(EventType::kRunCapHit, 0);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total(), 0u);
  EXPECT_EQ(log.evicted(), 0u);
  EXPECT_EQ(log.count(EventType::kRunCapHit), 0u);
  log.emit(EventType::kRunCapHit, 0);
  EXPECT_EQ(log.snapshot().front().seq, 1u);
  EXPECT_TRUE(log.consistent());
}

TEST(EventLog, SetCapacityDropsRetainedButKeepsTotals) {
  FakeEventClock clock;
  EventLog log(8);
  for (int i = 0; i < 5; ++i) log.emit(EventType::kEnclaveRestart, 1);
  log.set_capacity(2);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total(), 5u);  // emissions keep counting across resize
  log.emit(EventType::kEnclaveRestart, 1);
  EXPECT_EQ(log.snapshot().front().seq, 6u);
  EXPECT_EQ(log.count(EventType::kEnclaveRestart), 6u);
  EXPECT_TRUE(log.consistent());
  // Zero clamps to one slot rather than wedging the ring.
  log.set_capacity(0);
  EXPECT_EQ(log.capacity(), 1u);
  log.emit(EventType::kEnclaveRestart, 1);
  log.emit(EventType::kEnclaveRestart, 1);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.consistent());
}

TEST(EventLog, MacroRespectsRuntimeFlagAndTargetsGlobalLog) {
  FakeEventClock clock;
  event_log().clear();
  set_enabled(false);
  TENET_EVENT(kRekey, 1);
  EXPECT_EQ(event_log().total(), 0u);
  set_enabled(true);
  TENET_EVENT(kRekey, 1, 2, 3);
  set_enabled(false);
  ASSERT_EQ(event_log().total(), 1u);
  const auto events = event_log().snapshot();
  EXPECT_EQ(events[0].type, EventType::kRekey);
  EXPECT_EQ(events[0].node, 1u);
  EXPECT_EQ(events[0].a, 2u);
  EXPECT_EQ(events[0].b, 3u);
  event_log().clear();
}

TEST(EventLog, EmitNeverPerturbsSpanTimestamps) {
  // clock_now() is a non-mutating peek: stamping an event must not consume
  // a tick of the tracer's strictly-monotone span clock, so trace exports
  // are byte-identical with the event log on or off.
  tracer().reset();
  const uint64_t before = tracer().now();
  EventLog log(4);
  log.emit(EventType::kRekey, 1);
  log.emit(EventType::kRekey, 1);
  EXPECT_EQ(tracer().now(), before + 1);
  tracer().reset();
}

TEST(EventLog, TypeNamesAreStable) {
  // Export contract with tools/fleet_report.py — append-only.
  EXPECT_EQ(event_type_name(EventType::kFailoverAdopted), "failover_adopted");
  EXPECT_EQ(event_type_name(EventType::kRekey), "rekey");
  EXPECT_EQ(event_type_name(EventType::kRollbackRefused), "rollback_refused");
  EXPECT_EQ(event_type_name(EventType::kEpcPressure), "epc_pressure");
  EXPECT_EQ(event_type_name(EventType::kRunCapHit), "run_cap_hit");
  EXPECT_EQ(event_type_name(EventType::kPartitionCut), "partition_cut");
  EXPECT_EQ(event_type_name(EventType::kPartitionHeal), "partition_heal");
  EXPECT_EQ(event_type_name(EventType::kEnclaveRestart), "enclave_restart");
  EXPECT_EQ(event_type_name(EventType::kShardDown), "shard_down");
  EXPECT_EQ(event_type_name(EventType::kShardUp), "shard_up");
  EXPECT_EQ(event_type_name(EventType::kSnapshotInstalled),
            "snapshot_installed");
}

}  // namespace
}  // namespace tenet::telemetry

#endif  // TENET_TELEMETRY_ENABLED
