#!/usr/bin/env python3
"""Unit tests for the bench regression gate (bench/compare_bench.py).

The gate protects every committed BENCH_*.json baseline in CI, so its
edge cases are load-bearing: a zero baseline must reject any nonzero
current value (it used to auto-pass), a baseline metric missing from the
bench output must fail (a silently-dropped measurement is not a pass),
and the regression direction must follow the metric's suffix.

Run directly (ctest registers it with the tier1 label):
    python3 tests/tools/compare_bench_test.py
"""

import importlib.util
import json
import pathlib
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
SPEC = importlib.util.spec_from_file_location(
    "compare_bench", REPO_ROOT / "bench" / "compare_bench.py"
)
compare_bench = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(compare_bench)


def write_baseline(tmpdir: pathlib.Path, metrics: dict) -> pathlib.Path:
    path = tmpdir / "baseline.json"
    path.write_text(
        json.dumps(
            {"metrics": {k: {"pr": v} for k, v in metrics.items()}}
        )
    )
    return path


def check(after: dict, metrics: dict, max_regress: float = 5.0) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        baseline = write_baseline(pathlib.Path(tmp), metrics)
        return compare_bench.check_regression(
            after, baseline, max_regress, key_name="pr"
        )


class ZeroBaselineTest(unittest.TestCase):
    def test_zero_vs_nonzero_fails(self):
        # The old behaviour auto-passed any value over a zero baseline
        # because 100*(now-0)/0 was never computed; now it must fail even
        # for a tiny nonzero drift.
        self.assertEqual(check({"fallbacks": 1}, {"fallbacks": 0}), 1)
        self.assertEqual(check({"fallbacks": 0.001}, {"fallbacks": 0}), 1)

    def test_zero_vs_zero_passes(self):
        self.assertEqual(check({"fallbacks": 0}, {"fallbacks": 0}), 0)


class MissingKeyTest(unittest.TestCase):
    def test_missing_baseline_key_fails(self):
        self.assertEqual(check({"other_metric": 7}, {"tracked_ns": 100}), 1)

    def test_extra_bench_keys_are_informational(self):
        self.assertEqual(
            check({"tracked_ns": 100, "extra": 9}, {"tracked_ns": 100}), 0
        )


class KeyFilterTest(unittest.TestCase):
    """A typo'd or stale --key must never disarm the gate (it used to
    crash with KeyError on populated baselines and pass vacuously on
    empty metric maps)."""

    def check_with_key(self, after, baseline_obj, key_name, markdown=None):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = pathlib.Path(tmp) / "baseline.json"
            baseline.write_text(json.dumps(baseline_obj))
            return compare_bench.check_regression(
                after, baseline, 5.0, key_name=key_name, markdown_out=markdown
            )

    def test_key_column_absent_from_every_entry_fails(self):
        self.assertEqual(
            self.check_with_key(
                {"op_ns": 100},
                {"metrics": {"op_ns": {"pr3": 100}}},
                key_name="pr7",
            ),
            1,
        )

    def test_empty_metrics_map_fails(self):
        self.assertEqual(
            self.check_with_key({"op_ns": 100}, {"metrics": {}}, "pr7"), 1
        )

    def test_key_column_absent_from_one_entry_fails(self):
        # Mixed baselines: entries that do carry the column are still
        # compared, but the bad entry fails the gate.
        self.assertEqual(
            self.check_with_key(
                {"op_ns": 100, "other_ns": 50},
                {
                    "metrics": {
                        "op_ns": {"pr7": 100},
                        "other_ns": {"pr3": 50},
                    }
                },
                key_name="pr7",
            ),
            1,
        )

    def test_matching_key_column_passes(self):
        self.assertEqual(
            self.check_with_key(
                {"op_ns": 100},
                {"metrics": {"op_ns": {"pr7": 100}}},
                key_name="pr7",
            ),
            0,
        )


class MarkdownOutTest(unittest.TestCase):
    def run_markdown(self, after, metrics):
        with tempfile.TemporaryDirectory() as tmp:
            baseline = write_baseline(pathlib.Path(tmp), metrics)
            md = pathlib.Path(tmp) / "gate.md"
            rc = compare_bench.check_regression(
                after, baseline, 5.0, key_name="pr", markdown_out=md
            )
            return rc, md.read_text()

    def test_pass_renders_table(self):
        rc, text = self.run_markdown({"op_ns": 100}, {"op_ns": 100})
        self.assertEqual(rc, 0)
        self.assertIn("| metric | baseline | now | regression | status |", text)
        self.assertIn("| op_ns | 100 | 100 | +0.0% | OK |", text)
        self.assertIn("all metrics within 5%", text)

    def test_failure_renders_readable_diff(self):
        rc, text = self.run_markdown(
            {"op_ns": 150}, {"op_ns": 100, "gone_ns": 10}
        )
        self.assertEqual(rc, 1)
        self.assertIn("**FAIL**", text)
        self.assertIn("**REGRESSED**", text)
        self.assertIn("**MISSING**", text)


class DirectionTest(unittest.TestCase):
    def test_lower_is_better_suffixes(self):
        for key in (
            "foo_ns",
            "foo_ms",
            "foo_pct",
            "foo_to_heal",
            "foo_transitions",
            "foo_fallbacks",
            "foo_rss_mb",
        ):
            self.assertTrue(compare_bench.lower_is_better(key), key)
        for key in ("foo_MBps", "transition_reduction_x", "hits"):
            self.assertFalse(compare_bench.lower_is_better(key), key)

    def test_latency_regression_fails_and_improvement_passes(self):
        self.assertEqual(check({"op_ns": 120}, {"op_ns": 100}), 1)
        self.assertEqual(check({"op_ns": 80}, {"op_ns": 100}), 0)

    def test_throughput_direction_is_inverted(self):
        self.assertEqual(check({"io_MBps": 80}, {"io_MBps": 100}), 1)
        self.assertEqual(check({"io_MBps": 120}, {"io_MBps": 100}), 0)

    def test_within_budget_passes(self):
        self.assertEqual(
            check({"op_ns": 104}, {"op_ns": 100}, max_regress=5.0), 0
        )


if __name__ == "__main__":
    unittest.main()
