#!/usr/bin/env python3
"""Unit tests for the trace analyzer (tools/trace_analyze.py).

The analyzer's self-check mode gates the nightly telemetry-capture job,
so its DAG reconstruction and invariant checks are load-bearing: it must
rebuild one connected span DAG per trace from the exported parent edges,
pick the causal chain ending at the last-finishing span as the critical
path, tile that chain's wall time into phases that sum exactly to the
end-to-end latency, and reject traces whose span cost sums do not
reproduce the exporter's grand totals to the instruction.

The golden trace (golden_trace.json) mirrors the C++ exporter's shape:
span events carrying args.{trace,span,parent,flags} with optional
self/incl cost vectors, a legacy args-free event, and otherData totals.

Run directly (ctest registers it with the tier1 label):
    python3 tests/tools/trace_analyze_test.py
"""

import copy
import importlib.util
import io
import json
import pathlib
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
SPEC = importlib.util.spec_from_file_location(
    "trace_analyze", REPO_ROOT / "tools" / "trace_analyze.py"
)
trace_analyze = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(trace_analyze)

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden_trace.json"


def load_golden_doc():
    return json.loads(GOLDEN.read_text())


def write_doc(tmpdir, doc):
    path = pathlib.Path(tmpdir) / "trace.json"
    path.write_text(json.dumps(doc))
    return str(path)


class LoadAndGroupTest(unittest.TestCase):
    def test_legacy_events_are_filtered(self):
        spans, other = trace_analyze.load(str(GOLDEN))
        # 8 traceEvents, one of which (sim:boot) has no args.span.
        self.assertEqual(len(spans), 7)
        self.assertNotIn("boot", [s.name for s in spans])
        self.assertIn("costTotal", other)

    def test_traces_group_by_id(self):
        spans, _ = trace_analyze.load(str(GOLDEN))
        traces = trace_analyze.group_traces(spans)
        self.assertEqual(sorted(traces), [1, 2])
        self.assertEqual(len(traces[1]), 3)
        self.assertEqual(len(traces[2]), 4)

    def test_missing_self_is_zero_and_missing_incl_defaults_to_self(self):
        spans, _ = trace_analyze.load(str(GOLDEN))
        by_id = {s.span: s for s in spans}
        # span 2 (net:deliver) exports no "self" (all zero) but an incl
        # folded from its nested child.
        self.assertEqual(by_id[2].self_cost, trace_analyze.zero_cost())
        self.assertEqual(by_id[2].incl_cost["sgx"], 2)
        # span 3 exports self only; incl must default to self.
        self.assertEqual(by_id[3].incl_cost, by_id[3].self_cost)


class DagTest(unittest.TestCase):
    def setUp(self):
        spans, _ = trace_analyze.load(str(GOLDEN))
        self.traces = trace_analyze.group_traces(spans)

    def test_single_root_and_parent_edges(self):
        by_id, roots = trace_analyze.build_dag(self.traces[1])
        self.assertEqual([r.span for r in roots], [1])
        self.assertEqual([c.span for c in by_id[1].children], [2])
        self.assertEqual([c.span for c in by_id[2].children], [3])

    def test_critical_path_is_ancestry_of_last_finisher(self):
        # Trace 1: span 2 (net:deliver) ends at 2500, after its nested
        # child span 3 (2450) — the chain is root -> deliver, not the
        # deeper-but-earlier ecall.
        by_id, _ = trace_analyze.build_dag(self.traces[1])
        chain = trace_analyze.critical_path(self.traces[1], by_id)
        self.assertEqual([s.span for s in chain], [1, 2])
        # Trace 2: the deferred ocall (span 7) ends before its parent
        # delivery span 6, so the chain is 4 -> 5 -> 6.
        by_id2, _ = trace_analyze.build_dag(self.traces[2])
        chain2 = trace_analyze.critical_path(self.traces[2], by_id2)
        self.assertEqual([s.span for s in chain2], [4, 5, 6])

    def test_flags_survive_reconstruction(self):
        retx = [s.span for s in self.traces[2]
                if s.flags & trace_analyze.FLAG_RETX]
        deferred = [s.span for s in self.traces[2]
                    if s.flags & trace_analyze.FLAG_DEFERRED]
        self.assertEqual(retx, [5, 6])
        self.assertEqual(deferred, [7])


class AttributionTest(unittest.TestCase):
    def test_phases_tile_the_latency_exactly(self):
        spans, _ = trace_analyze.load(str(GOLDEN))
        traces = trace_analyze.group_traces(spans)
        by_id, _ = trace_analyze.build_dag(traces[1])
        chain = trace_analyze.critical_path(traces[1], by_id)
        phases, total = trace_analyze.attribute(chain)
        self.assertEqual(total, 1500)  # [1000, 2500]
        self.assertAlmostEqual(sum(phases.values()), total, places=6)
        # The 1000us gap before the delivery plus the zero-self-cost
        # delivery span itself are both network time.
        self.assertAlmostEqual(phases["network"], 1300.0)
        # The root's 200us splits by self cycles: 5 SGX instructions at
        # 10K cycles dwarf the 1000 normal-class instructions at IPC 1.8.
        self.assertGreater(phases["transitions"], 195.0)
        self.assertGreater(phases["crypto"], 0.0)
        covered = phases["network"] + phases["transitions"] + phases["crypto"]
        self.assertGreaterEqual(100.0 * covered / total, 95.0)

    def test_cycles_follow_the_paper_formula(self):
        cost = dict(trace_analyze.zero_cost(), sgx=2, norm=9, crypto=9)
        self.assertAlmostEqual(
            trace_analyze.cycles_of(cost), 2 * 10_000 + 18 / 1.8
        )


def control_plane_doc():
    """A sharded control-plane trace: a replication send on shard 2, the
    network hop, and the apply on shard 3 — the shape shard_group.cpp
    exports (cat in {replication, state_transfer, failover}, args.shard)."""
    return {
        "traceEvents": [
            {"name": "replicate", "cat": "replication", "ph": "X",
             "ts": 0, "dur": 300, "pid": 1, "tid": 1,
             "args": {"trace": 7, "span": 1, "parent": 0, "shard": 2,
                      "self": {"sgx": 1, "crypto": 50}}},
            {"name": "deliver", "cat": "net", "ph": "X",
             "ts": 1300, "dur": 100, "pid": 1, "tid": 1,
             "args": {"trace": 7, "span": 2, "parent": 1}},
            {"name": "apply", "cat": "replication", "ph": "X",
             "ts": 1400, "dur": 200, "pid": 1, "tid": 1,
             "args": {"trace": 7, "span": 3, "parent": 2, "shard": 3,
                      "self": {"norm": 90}}},
            {"name": "reforward_admitted", "cat": "failover", "ph": "X",
             "ts": 1600, "dur": 50, "pid": 1, "tid": 1,
             "args": {"trace": 7, "span": 4, "parent": 3, "shard": 3}},
        ]
    }


class ControlPlanePhaseTest(unittest.TestCase):
    def test_control_spans_classify_whole_and_still_tile(self):
        doc = control_plane_doc()
        with tempfile.TemporaryDirectory() as tmp:
            spans, _ = trace_analyze.load(write_doc(tmp, doc))
        traces = trace_analyze.group_traces(spans)
        by_id, _ = trace_analyze.build_dag(traces[7])
        chain = trace_analyze.critical_path(traces[7], by_id)
        self.assertEqual([s.span for s in chain], [1, 2, 3, 4])
        phases, total = trace_analyze.attribute(chain)
        self.assertEqual(total, 1650)
        # Tiling is exact even with whole-span control phases in the mix.
        self.assertAlmostEqual(sum(phases.values()), total, places=6)
        # Despite nonzero sgx/crypto self cost, the replication span's time
        # lands in "replication", not split into transitions/crypto.
        self.assertAlmostEqual(phases["replication"], 500.0)
        self.assertAlmostEqual(phases["failover"], 50.0)
        self.assertAlmostEqual(phases["network"], 1100.0)
        self.assertAlmostEqual(phases["transitions"], 0.0)

    def test_control_phases_count_toward_selfcheck_coverage(self):
        # The trace is >1ms and replication-dominated; coverage must pass
        # because control phases are attributed work, not a leak.
        with tempfile.TemporaryDirectory() as tmp:
            errors = trace_analyze.self_check(
                write_doc(tmp, control_plane_doc()), 95.0)
        self.assertEqual(errors, [])

    def test_shard_table_aggregates_tagged_spans(self):
        doc = control_plane_doc()
        with tempfile.TemporaryDirectory() as tmp:
            spans, _ = trace_analyze.load(write_doc(tmp, doc))
        per = trace_analyze.shard_table(spans, out=io.StringIO())
        self.assertEqual(sorted(per), [2, 3])
        self.assertEqual(per[2]["spans"], 1)
        self.assertEqual(per[3]["spans"], 2)
        self.assertAlmostEqual(per[2]["replication"], 300.0)
        self.assertAlmostEqual(per[3]["replication"], 200.0)
        self.assertAlmostEqual(per[3]["failover"], 50.0)
        # The untagged net:deliver span contributes to no row.
        self.assertEqual(sum(r["spans"] for r in per.values()), 3)

    def test_shards_cli_flag(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = write_doc(tmp, control_plane_doc())
            self.assertEqual(trace_analyze.main([path, "--shards"]), 0)
        # Golden trace has no shard tags: still exit 0 (prints a notice).
        self.assertEqual(trace_analyze.main([str(GOLDEN), "--shards"]), 0)


class CollapsedStackTest(unittest.TestCase):
    def test_stacks_are_dag_paths_weighted_by_self_cycles(self):
        spans, _ = trace_analyze.load(str(GOLDEN))
        traces = trace_analyze.group_traces(spans)
        out = trace_analyze.collapsed_stacks(traces)
        lines = dict(l.rsplit(" ", 1) for l in out.strip().splitlines())
        # Nested ecall: full ancestry path, weight = its own self cycles
        # (2 SGX * 10K + 28 normal-class / 1.8, rounded).
        self.assertEqual(
            int(lines["mbox:open_session;net:deliver;sgx:ecall"]), 20016
        )
        self.assertEqual(int(lines["mbox:open_session"]), 50556)
        # Zero-self spans (net:deliver) contribute no line of their own.
        self.assertNotIn("mbox:open_session;net:deliver", lines)


class SelfCheckTest(unittest.TestCase):
    def test_golden_trace_is_clean(self):
        errors = trace_analyze.self_check(str(GOLDEN), 95.0)
        self.assertEqual(errors, [])

    def test_cost_leak_is_detected(self):
        doc = load_golden_doc()
        doc["otherData"]["costTotal"]["crypto"] += 1
        with tempfile.TemporaryDirectory() as tmp:
            errors = trace_analyze.self_check(write_doc(tmp, doc), 95.0)
        self.assertTrue(any("cost accounting leak" in e for e in errors))

    def test_broken_parent_edge_is_detected(self):
        doc = load_golden_doc()
        for ev in doc["traceEvents"]:
            if ev.get("args", {}).get("span") == 2:
                ev["args"]["parent"] = 999  # orphan the delivery subtree
        with tempfile.TemporaryDirectory() as tmp:
            errors = trace_analyze.self_check(write_doc(tmp, doc), 95.0)
        self.assertTrue(any("roots" in e for e in errors))

    def test_self_exceeding_incl_is_detected(self):
        doc = load_golden_doc()
        for ev in doc["traceEvents"]:
            if ev.get("args", {}).get("span") == 2:
                ev["args"]["self"] = dict(
                    ev["args"]["incl"], trans=ev["args"]["incl"]["trans"] + 5
                )
        with tempfile.TemporaryDirectory() as tmp:
            errors = trace_analyze.self_check(write_doc(tmp, doc), 95.0)
        self.assertTrue(any("self.trans" in e for e in errors))

    def test_short_traces_skip_the_coverage_gate(self):
        # Trace 2 is 500us end-to-end with a dominant queueing gap; the
        # coverage check must not fire below the 1ms floor.
        errors = trace_analyze.self_check(str(GOLDEN), 95.0)
        self.assertFalse(any("trace 2" in e for e in errors))
        # Stretch it past 1ms (scale the timeline 10x) and the same shape
        # must now fail coverage.
        doc = load_golden_doc()
        for ev in doc["traceEvents"]:
            if ev.get("args", {}).get("trace") == 2:
                ev["ts"] = ev["ts"] * 10
                ev["dur"] = ev["dur"] * 10
        with tempfile.TemporaryDirectory() as tmp:
            errors = trace_analyze.self_check(write_doc(tmp, doc), 95.0)
        self.assertTrue(any("below 95.0%" in e for e in errors))


class CliTest(unittest.TestCase):
    def test_exit_codes(self):
        self.assertEqual(
            trace_analyze.main([str(GOLDEN), "--self-check"]), 0
        )
        self.assertEqual(trace_analyze.main([str(GOLDEN), "--list"]), 0)
        self.assertEqual(trace_analyze.main([str(GOLDEN)]), 0)
        self.assertEqual(
            trace_analyze.main([str(GOLDEN), "--trace-id", "1"]), 0
        )
        self.assertEqual(
            trace_analyze.main([str(GOLDEN), "--trace-id", "42"]), 1
        )
        doc = load_golden_doc()
        doc["otherData"]["costTotal"]["sgx"] += 3
        with tempfile.TemporaryDirectory() as tmp:
            path = write_doc(tmp, doc)
            self.assertEqual(
                trace_analyze.main([path, "--self-check"]), 1
            )

    def test_collapsed_writes_file(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = pathlib.Path(tmp) / "stacks.txt"
            rc = trace_analyze.main([str(GOLDEN), "--collapsed", str(out)])
            self.assertEqual(rc, 0)
            body = out.read_text()
            self.assertIn("mbox:open_session;net:deliver;sgx:ecall", body)
            for line in body.strip().splitlines():
                stack, weight = line.rsplit(" ", 1)
                self.assertTrue(int(weight) > 0, line)


if __name__ == "__main__":
    unittest.main()
