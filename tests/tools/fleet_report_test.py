#!/usr/bin/env python3
"""Unit tests for the fleet report / anomaly detector (tools/fleet_report.py).

The detector gates the nightly controlplane-chaos drill, so its rules are
load-bearing: a clean drill (every SLO breach overlapping a reconstructed
fault window, all counters monotone, every outage healed) must pass, and
each anomaly class — unhealed kill, counter regression, unexplained
breach, admitted-state loss, broken orderings — must fail --check.

Fixtures are synthetic JSONL matching the C++ exporters' shapes
(EventLog::write_jsonl, Scraper::write_jsonl).

Run directly (ctest registers it with the tier1 label):
    python3 tests/tools/fleet_report_test.py
"""

import importlib.util
import io
import json
import pathlib
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
SPEC = importlib.util.spec_from_file_location(
    "fleet_report", REPO_ROOT / "tools" / "fleet_report.py"
)
fleet_report = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(fleet_report)


def event(seq, ts_us, etype, node=0, a=0, b=0):
    return {"seq": seq, "ts_us": ts_us, "type": etype,
            "node": node, "a": a, "b": b}


def hist(buckets):
    """Sparse {floor: count} -> the exporter's histogram object."""
    count = sum(buckets.values())
    return {"count": count, "sum": 0, "min": 0, "max": 0,
            "p50": 0, "p90": 0, "p99": 0,
            "buckets": {str(k): v for k, v in buckets.items()}}


def scrape(seq, ts_us, counters=None, histograms=None):
    return {"seq": seq, "ts_us": ts_us,
            "metrics": {"counters": counters or {},
                        "gauges": {},
                        "histograms": histograms or {}}}


def run_main(tmp, events, scrapes, extra_args=(), summary=None):
    """Writes fixtures under `tmp` and runs fleet_report.main --check."""
    epath = pathlib.Path(tmp) / "events.jsonl"
    spath = pathlib.Path(tmp) / "scrapes.jsonl"
    epath.write_text("".join(json.dumps(e) + "\n" for e in events))
    spath.write_text("".join(json.dumps(s) + "\n" for s in scrapes))
    args = ["--events", str(epath), "--scrapes", str(spath), "--check"]
    if summary is not None:
        sumpath = pathlib.Path(tmp) / "summary.json"
        sumpath.write_text(json.dumps(summary))
        args += ["--summary", str(sumpath)]
    args += list(extra_args)
    import contextlib
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = fleet_report.main(args)
    return rc, buf.getvalue()


def clean_drill():
    """A healed kill-one-shard drill: outage window, in-window latency
    spike (explained), recovery, all counters monotone."""
    events = [
        event(1, 1_000, "shard_down", node=0, a=2),
        event(2, 1_500, "failover_adopted", node=1, a=2, b=4),
        event(3, 90_000, "shard_up", node=0, a=2),
        event(4, 95_000, "snapshot_installed", node=2, a=2, b=12),
    ]
    scrapes = [
        scrape(0, 0, {"net.messages_sent": 10, "net.messages_delivered": 10},
               {"shard.s1.hop_latency_us": hist({"256": 20})}),
        # Mid-outage: hop p99 blows past the cap — explained by the window.
        scrape(1, 50_000,
               {"net.messages_sent": 40, "net.messages_delivered": 36},
               {"shard.s1.hop_latency_us": hist({"256": 20, "8192": 30})}),
        scrape(2, 200_000,
               {"net.messages_sent": 80, "net.messages_delivered": 76},
               {"shard.s1.hop_latency_us": hist({"256": 60, "8192": 30})}),
    ]
    return events, scrapes


class CleanDrillTest(unittest.TestCase):
    def test_clean_drill_passes_check(self):
        events, scrapes = clean_drill()
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, events, scrapes)
        self.assertEqual(rc, 0, out)
        self.assertIn("anomalies: none", out)
        self.assertIn("shard_outage", out)

    def test_empty_inputs_pass(self):
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, [], [])
        self.assertEqual(rc, 0, out)


class AnomalyTest(unittest.TestCase):
    def test_unhealed_kill_fails_check(self):
        events, scrapes = clean_drill()
        # Inject the kill: shard 3 goes down and never comes back.
        events.append(event(5, 210_000, "shard_down", node=0, a=3))
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, events, scrapes)
        self.assertEqual(rc, 1, out)
        self.assertIn("unhealed_shard_outage", out)
        self.assertIn("shard 3", out)

    def test_counter_regression_fails_check(self):
        events, scrapes = clean_drill()
        scrapes[2]["metrics"]["counters"]["net.messages_sent"] = 5  # < 40
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, events, scrapes)
        self.assertEqual(rc, 1, out)
        self.assertIn("counter_regression", out)
        self.assertIn("net.messages_sent", out)

    def test_unexplained_latency_breach_fails_check(self):
        # Same latency spike, but the event log records no fault at all.
        _, scrapes = clean_drill()
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, [], scrapes)
        self.assertEqual(rc, 1, out)
        self.assertIn("unexplained_slo_breach", out)

    def test_unexplained_goodput_breach_fails_check(self):
        scrapes = [
            scrape(0, 0, {"net.messages_sent": 10,
                          "net.messages_delivered": 10}),
            scrape(1, 50_000, {"net.messages_sent": 110,
                               "net.messages_delivered": 20}),
        ]
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, [], scrapes)
        self.assertEqual(rc, 1, out)
        self.assertIn("unexplained_slo_breach", out)
        self.assertIn("goodput", out)

    def test_partition_window_explains_goodput_breach(self):
        events = [
            event(1, 0, "partition_cut", node=4, a=9),
            event(2, 60_000, "partition_heal", node=0),
        ]
        scrapes = [
            scrape(0, 0, {"net.messages_sent": 10,
                          "net.messages_delivered": 10}),
            scrape(1, 50_000, {"net.messages_sent": 110,
                               "net.messages_delivered": 20}),
        ]
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, events, scrapes)
        self.assertEqual(rc, 0, out)

    def test_admitted_state_loss_fails_check(self):
        events, scrapes = clean_drill()
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, events, scrapes,
                               summary={"chaos_lost_admissions": 2})
        self.assertEqual(rc, 1, out)
        self.assertIn("admitted_state_loss", out)

    def test_clean_summary_passes(self):
        events, scrapes = clean_drill()
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, events, scrapes,
                               summary={"chaos_lost_admissions": 0})
        self.assertEqual(rc, 0, out)

    def test_broken_event_order_fails_check(self):
        events, scrapes = clean_drill()
        events[2]["seq"] = 1  # duplicate seq
        with tempfile.TemporaryDirectory() as tmp:
            rc, out = run_main(tmp, events, scrapes)
        self.assertEqual(rc, 1, out)
        self.assertIn("broken_event_order", out)


class WindowQuantileTest(unittest.TestCase):
    def test_delta_only(self):
        base = {"1": 10}
        tip = {"1": 10, "4096": 10}
        q0 = fleet_report.window_quantile(base, tip, 0.0)
        q99 = fleet_report.window_quantile(base, tip, 0.99)
        self.assertEqual(q0, 4096)
        self.assertGreaterEqual(q99, 4096)
        self.assertLessEqual(q99, 8191)

    def test_degenerate_windows_read_zero(self):
        self.assertEqual(fleet_report.window_quantile({"8": 5}, {"8": 5}, 0.5), 0)
        # Negative delta (forged base) reads zero rather than nonsense.
        self.assertEqual(fleet_report.window_quantile({"8": 9}, {"8": 5}, 0.5), 0)

    def test_hop_shard_parser(self):
        self.assertEqual(fleet_report.hop_shard("shard.s7.hop_latency_us"), 7)
        self.assertEqual(fleet_report.hop_shard("shard.s12.hop_latency_us"), 12)
        self.assertIsNone(fleet_report.hop_shard("shard.sx.hop_latency_us"))
        self.assertIsNone(fleet_report.hop_shard("net.messages_sent"))


class ReportJsonTest(unittest.TestCase):
    def test_out_writes_full_report(self):
        events, scrapes = clean_drill()
        with tempfile.TemporaryDirectory() as tmp:
            outpath = pathlib.Path(tmp) / "report.json"
            rc, _ = run_main(tmp, events, scrapes,
                             extra_args=["--out", str(outpath)])
            self.assertEqual(rc, 0)
            report = json.loads(outpath.read_text())
        self.assertEqual(report["event_total"], 4)
        self.assertEqual(report["scrape_total"], 3)
        self.assertEqual(report["anomalies"], [])
        self.assertEqual(len(report["fault_windows"]), 1)
        self.assertEqual(report["fault_windows"][0]["shard"], 2)
        self.assertEqual(report["event_counts"]["shard_down"], 1)


if __name__ == "__main__":
    unittest.main()
