#!/usr/bin/env python3
"""Unit tests for the ocall taint lint (tools/taint_lint.py).

The static pass is a CI hard gate over src/, so its edge cases are
load-bearing: a secret identifier inside an ocall payload must be an
error, the same identifier in a string literal or comment must not
(sink labels like "attest.session_key" are metric names, not leaks),
multi-line argument lists must still be searched, and the allow()
annotation must downgrade a deliberate fixture leak without hiding it.

The final test mirrors the real gate: the repository's own src/ tree
must scan clean, so a regression that introduces a key-material sink
fails here (tier1) before it even reaches the lint job.

Run directly (ctest registers it with the tier1 label):
    python3 tests/tools/taint_lint_test.py
"""

import importlib.util
import pathlib
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
SPEC = importlib.util.spec_from_file_location(
    "taint_lint", REPO_ROOT / "tools" / "taint_lint.py"
)
taint_lint = importlib.util.module_from_spec(SPEC)
SPEC.loader.exec_module(taint_lint)


def scan_snippet(code: str, subdir: str = "src"):
    """Write `code` into a temp tree under `subdir` and run the scanner."""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        d = root / subdir
        d.mkdir(parents=True)
        (d / "snippet.cpp").write_text(code)
        findings, files = scan_root(root)
        assert files == 1
        return findings


def scan_root(root: pathlib.Path):
    return taint_lint.scan_tree(root)


class SecretInSinkTest(unittest.TestCase):
    def test_seal_key_in_ocall_is_error(self):
        findings = scan_snippet(
            "void f(EnclaveEnv& env) {\n"
            '  env.ocall(0x42, env.seal_key(tag));\n'
            "}\n"
        )
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["severity"], "error")
        self.assertEqual(findings[0]["sink"], "ocall")
        self.assertEqual(findings[0]["secret"], "seal_key")
        self.assertEqual(findings[0]["line"], 2)

    def test_session_key_in_telemetry_label_is_error(self):
        findings = scan_snippet(
            "void g() {\n"
            "  TENET_COUNT(label_for(session_key));\n"
            "}\n"
        )
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["sink"], "TENET_COUNT")

    def test_multiline_argument_list_is_searched(self):
        findings = scan_snippet(
            "void h(EnclaveEnv& env) {\n"
            "  env.ocall_async(kOcallLog,\n"
            "                  wrap(\n"
            "                      shared_secret_));\n"
            "}\n"
        )
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["secret"], "shared_secret")
        # The finding anchors to the sink call, not the secret's line.
        self.assertEqual(findings[0]["line"], 2)


class NonFindingsTest(unittest.TestCase):
    def test_clean_ocall_passes(self):
        findings = scan_snippet(
            "void f(EnclaveEnv& env) {\n"
            "  env.ocall(0x42, arg);\n"
            "  crypto::Bytes k = env.seal_key(tag);  // stays in-enclave\n"
            "}\n"
        )
        self.assertEqual(findings, [])

    def test_secret_in_string_literal_is_not_a_leak(self):
        # Metric names routinely mention key kinds; only identifiers leak.
        findings = scan_snippet(
            'void g() { TENET_COUNT("attest.session_key.derivations"); }\n'
        )
        self.assertEqual(findings, [])

    def test_secret_in_comment_is_not_a_leak(self):
        findings = scan_snippet(
            "void g(EnclaveEnv& env) {\n"
            "  // the seal_key never crosses here\n"
            "  env.ocall(0x42, arg);  /* not the report_key */\n"
            "}\n"
        )
        self.assertEqual(findings, [])

    def test_commented_out_sink_is_not_a_leak(self):
        findings = scan_snippet(
            "// env.ocall(0x42, env.seal_key(tag));\n"
        )
        self.assertEqual(findings, [])


class SeverityTest(unittest.TestCase):
    def test_tests_dir_is_warning(self):
        findings = scan_snippet(
            "void f(EnclaveEnv& env) { env.ocall(1, report_key); }\n",
            subdir="tests",
        )
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["severity"], "warning")

    def test_bench_dir_is_warning(self):
        findings = scan_snippet(
            "void f(EnclaveEnv& env) { env.ocall(1, hkdf(a, b, c, 32)); }\n",
            subdir="bench",
        )
        self.assertEqual(findings[0]["severity"], "warning")

    def test_allow_annotation_suppresses(self):
        findings = scan_snippet(
            "void f(EnclaveEnv& env) {\n"
            "  // taint-lint: allow(positive control)\n"
            "  env.ocall_async(1, env.seal_key(tag));\n"
            "}\n"
        )
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["severity"], "suppressed")

    def test_allow_on_unrelated_line_does_not_suppress(self):
        findings = scan_snippet(
            "// taint-lint: allow(too far away)\n"
            "void f(EnclaveEnv& env) {\n"
            "\n"
            "\n"
            "  env.ocall_async(1, env.seal_key(tag));\n"
            "}\n"
        )
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0]["severity"], "error")


class RealTreeGateTest(unittest.TestCase):
    def test_repository_src_has_zero_errors(self):
        # The actual CI gate: no key material flows into an ocall buffer,
        # telemetry label, or trace export anywhere in the trusted tree.
        findings, files = scan_root(REPO_ROOT)
        errors = [f for f in findings if f["severity"] == "error"]
        self.assertGreater(files, 50, "scanner found suspiciously few files")
        self.assertEqual(
            errors, [], "key material reaches a boundary sink in src/"
        )


class FuzzBinDiscoveryTest(unittest.TestCase):
    def test_missing_binary_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            self.assertIsNone(
                taint_lint.find_fuzz_bin(pathlib.Path(tmp), None)
            )

    def test_explicit_path_must_exist(self):
        self.assertIsNone(
            taint_lint.find_fuzz_bin(REPO_ROOT, "/nonexistent/boundary_fuzz")
        )


if __name__ == "__main__":
    sys.exit(unittest.main())
