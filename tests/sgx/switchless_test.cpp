// Switchless transition tests (DESIGN.md §10): the ring's deterministic
// worker model (park/wakeup, spin budget, full-ring fallback, FIFO
// wrap-around), the enclave-level routing, and the exact agreement
// between ring stats, cost-model counters and telemetry.
#include <gtest/gtest.h>

#include "sgx/apps.h"
#include "sgx/platform.h"
#include "sgx/switchless.h"
#include "telemetry/telemetry.h"

namespace tenet::sgx {
namespace {

using apps::SendRunRequest;

// --- SwitchlessRing unit tests -----------------------------------------

TEST(SwitchlessRing, WorkersStartParkedAndWakeOnFallback) {
  SwitchlessRing ring({/*ring_capacity=*/4, /*spin_budget=*/8}, "t.occ");
  EXPECT_TRUE(ring.worker_asleep());
  // First call pays the wakeup; the fallback transition is the kick.
  EXPECT_EQ(ring.begin_call(), SwitchlessOutcome::kFallbackAsleep);
  EXPECT_FALSE(ring.worker_asleep());
  EXPECT_EQ(ring.stats().wakeups, 1u);
  EXPECT_EQ(ring.stats().fallbacks_asleep, 1u);
  // Worker is now polling: the next call is served through the ring.
  EXPECT_EQ(ring.begin_call(), SwitchlessOutcome::kHit);
  EXPECT_EQ(ring.stats().hits, 1u);
}

TEST(SwitchlessRing, SpinBudgetParksTheWorkerAgain) {
  SwitchlessRing ring({4, /*spin_budget=*/3}, "t.occ");
  (void)ring.begin_call();  // wake
  ASSERT_FALSE(ring.worker_asleep());
  // Each synchronous transition over an EMPTY ring burns one poll.
  ring.note_sync_transition();
  ring.note_sync_transition();
  EXPECT_FALSE(ring.worker_asleep());
  ring.note_sync_transition();
  EXPECT_TRUE(ring.worker_asleep());
  EXPECT_EQ(ring.begin_call(), SwitchlessOutcome::kFallbackAsleep);
  EXPECT_EQ(ring.stats().wakeups, 2u);
}

TEST(SwitchlessRing, PendingWorkKeepsTheWorkerBusy) {
  SwitchlessRing ring({4, /*spin_budget=*/1}, "t.occ");
  (void)ring.begin_call();  // wake (fallback)
  ASSERT_EQ(ring.begin_call(), SwitchlessOutcome::kHit);
  ring.push(1, crypto::to_bytes("a"));
  // A non-empty ring means the worker is working, not idling: sync
  // transitions do NOT burn its spin budget.
  for (int i = 0; i < 10; ++i) ring.note_sync_transition();
  EXPECT_FALSE(ring.worker_asleep());
}

TEST(SwitchlessRing, FullRingFallsBackAndDrainRestoresService) {
  SwitchlessRing ring({/*ring_capacity=*/2, 8}, "t.occ");
  (void)ring.begin_call();  // wake
  for (uint32_t i = 0; i < 2; ++i) {
    ASSERT_EQ(ring.begin_call(), SwitchlessOutcome::kHit);
    ring.push(i, crypto::to_bytes("p"));
  }
  ASSERT_TRUE(ring.full());
  EXPECT_EQ(ring.begin_call(), SwitchlessOutcome::kFallbackFull);
  EXPECT_EQ(ring.stats().fallbacks_full, 1u);

  std::vector<uint32_t> order;
  EXPECT_EQ(ring.drain([&](uint32_t code, const crypto::Bytes&) {
    order.push_back(code);
  }), 2u);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1}));
  EXPECT_FALSE(ring.full());
  EXPECT_EQ(ring.begin_call(), SwitchlessOutcome::kHit);
}

TEST(SwitchlessRing, WrapAroundPreservesFifoOrder) {
  // Many fill/drain cycles through a tiny ring: submission order must
  // survive every wrap of the (logical) slot indices.
  SwitchlessRing ring({/*ring_capacity=*/3, 64}, "t.occ");
  (void)ring.begin_call();  // wake
  std::vector<uint32_t> seen;
  uint32_t next = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    while (!ring.full()) {
      ASSERT_EQ(ring.begin_call(), SwitchlessOutcome::kHit);
      crypto::Bytes payload;
      crypto::append_u32(payload, next);
      ring.push(next++, payload);
    }
    (void)ring.drain([&](uint32_t code, const crypto::Bytes& payload) {
      ASSERT_EQ(crypto::read_u32(payload, 0), code);
      seen.push_back(code);
    });
  }
  ASSERT_EQ(seen.size(), 30u);
  for (uint32_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(ring.stats().drained, 30u);
  EXPECT_EQ(ring.stats().hits, 30u);
}

// --- Enclave-level routing ---------------------------------------------

struct SwitchlessWorld {
  explicit SwitchlessWorld(bool switchless,
                           SwitchlessConfig config = {})
      : platform(authority, switchless ? "swl-host" : "sync-host") {
    enclave = &platform.launch(vendor, apps::packet_sender_image());
    if (switchless) enclave->enable_switchless(config);
    enclave->set_ocall_handler(
        [this](uint32_t code, crypto::BytesView payload) {
          handler_log.emplace_back(code,
                                   crypto::Bytes(payload.begin(),
                                                 payload.end()));
          return crypto::Bytes{};
        });
  }

  crypto::Bytes run(uint32_t packets) {
    SendRunRequest req;
    req.packet_count = packets;
    req.packet_size = 64;
    return enclave->ecall(apps::PacketFn::kSendRun, req.serialize());
  }

  Authority authority;
  Vendor vendor{"swl-vendor"};
  Platform platform;
  Enclave* enclave = nullptr;
  std::vector<std::pair<uint32_t, crypto::Bytes>> handler_log;
};

TEST(SwitchlessEnclave, ApplicationOutputIsByteIdentical) {
  SwitchlessWorld sync(false);
  SwitchlessWorld swl(true);
  // Identical workload, both modes: every ecall result and the exact
  // sequence of (code, payload) pairs the untrusted handler observes must
  // match byte for byte — only the cost accounting may differ.
  for (const uint32_t n : {1u, 5u, 100u}) {
    EXPECT_EQ(sync.run(n), swl.run(n));
  }
  EXPECT_EQ(sync.handler_log, swl.handler_log);
}

TEST(SwitchlessEnclave, TransitionsCollapseOnTheHotPath) {
  SwitchlessWorld sync(false);
  SwitchlessWorld swl(true);
  const auto sync_before = sync.enclave->cost().snapshot();
  const auto swl_before = swl.enclave->cost().snapshot();
  (void)sync.run(100);
  (void)swl.run(100);
  const auto sync_d = sync.enclave->cost().delta(sync_before);
  const auto swl_d = swl.enclave->cost().delta(swl_before);

  // Table 2 invariant intact in sync mode: 2N + 4 transitions.
  EXPECT_EQ(sync_d.transitions, 204u);
  EXPECT_EQ(sync_d.switchless_hits, 0u);
  // Switchless: first-ecall wakeup (2) + net-open wakeup (2) + one
  // ring-full fallback at 64 queued sends (2) — the acceptance criterion
  // is >= 5x fewer, this is 34x.
  EXPECT_EQ(swl_d.transitions, 6u);
  EXPECT_GE(sync_d.transitions, 5 * swl_d.transitions);
  EXPECT_EQ(swl_d.switchless_hits, 99u);
  EXPECT_EQ(swl_d.switchless_fallbacks, 3u);
}

TEST(SwitchlessEnclave, FallbackPathsAccountExactly) {
  // Tiny ring + tiny spin budget: exercise both fallback kinds.
  SwitchlessConfig config;
  config.ring_capacity = 4;
  config.spin_budget = 2;
  SwitchlessWorld swl(true, config);
  (void)swl.run(20);

  const SwitchlessRing* ocall_ring = swl.enclave->ocall_ring();
  const SwitchlessRing* ecall_ring = swl.enclave->ecall_ring();
  ASSERT_NE(ocall_ring, nullptr);
  ASSERT_NE(ecall_ring, nullptr);
  // Every ocall the app made is exactly one hit or one fallback, and
  // every deferred request was eventually drained.
  const auto& os = ocall_ring->stats();
  EXPECT_EQ(os.hits + os.fallbacks(), 21u);  // net-open + 20 sends
  EXPECT_EQ(os.drained, os.hits);            // all deferred sends executed
  EXPECT_GT(os.fallbacks_full, 0u);          // capacity 4 forces full rings
  // The cost model agrees with the rings' own tallies.
  const CostModel& cost = swl.enclave->cost();
  EXPECT_EQ(cost.switchless_hits(),
            os.hits + ecall_ring->stats().hits);
  EXPECT_EQ(cost.switchless_fallbacks(),
            os.fallbacks() + ecall_ring->stats().fallbacks());
}

TEST(SwitchlessEnclave, SurvivesRelaunchDisabled) {
  // A fresh enclave instance of the same image starts with switchless off
  // unless re-enabled (EnclaveNode re-applies it; the raw Enclave API
  // does not) — the ring pointers must never dangle across destroy.
  SwitchlessWorld swl(true);
  (void)swl.run(5);
  Enclave& fresh = swl.platform.restart_enclave(swl.enclave->id());
  EXPECT_FALSE(fresh.switchless_enabled());
  EXPECT_EQ(fresh.ocall_ring(), nullptr);
}

#if TENET_TELEMETRY_ENABLED

struct TelemetryOn {
  TelemetryOn() {
    telemetry::registry().reset_values();
    telemetry::set_enabled(true);
  }
  ~TelemetryOn() { telemetry::set_enabled(false); }
};

uint64_t counted(const char* name) {
  return telemetry::registry().counter(name).value();
}

TEST(SwitchlessTelemetry, CountersCrossCheckExactly) {
  TelemetryOn on;
  SwitchlessWorld swl(true);
  (void)swl.run(100);

  const auto& os = swl.enclave->ocall_ring()->stats();
  const auto& es = swl.enclave->ecall_ring()->stats();
  const CostModel& cost = swl.enclave->cost();

  // Telemetry (counted at the instrumentation sites) == ring stats ==
  // cost-model bookkeeping, as absolute values.
  EXPECT_EQ(counted("sgx.switchless.hits"), os.hits + es.hits);
  EXPECT_EQ(counted("sgx.switchless.hits"), cost.switchless_hits());
  EXPECT_EQ(counted("sgx.switchless.fallbacks_asleep"),
            os.fallbacks_asleep + es.fallbacks_asleep);
  EXPECT_EQ(counted("sgx.switchless.fallbacks_full"),
            os.fallbacks_full + es.fallbacks_full);
  EXPECT_EQ(counted("sgx.switchless.fallbacks_asleep") +
                counted("sgx.switchless.fallbacks_full"),
            cost.switchless_fallbacks());
  EXPECT_EQ(counted("sgx.switchless.wakeups"), os.wakeups + es.wakeups);
  EXPECT_EQ(counted("sgx.switchless.drained"), os.drained + es.drained);
  // And the transition counters still agree with the cost model (the
  // switchless paths must not fire sgx.eenter/eexit/eresume).
  EXPECT_EQ(counted("sgx.eenter"), cost.user_count(UserInstr::kEEnter));
  EXPECT_EQ(counted("sgx.eexit"), cost.user_count(UserInstr::kEExit));
  EXPECT_EQ(counted("sgx.eresume"), cost.user_count(UserInstr::kEResume));

  // Occupancy histogram: one sample per ocall-ring hit (the ecall ring
  // records its own metric), samples bounded by the ring capacity.
  const auto& occ = telemetry::registry().histogram(
      "sgx.switchless.ocall_ring_occupancy");
  EXPECT_EQ(occ.count(), os.hits);
  EXPECT_LE(occ.max(), swl.enclave->ocall_ring()->config().ring_capacity);
}

#endif  // TENET_TELEMETRY_ENABLED

}  // namespace
}  // namespace tenet::sgx
