// Tests for the Table 2 rig: in-enclave packet I/O cost accounting.
#include <gtest/gtest.h>

#include "sgx/apps.h"
#include "sgx/platform.h"

namespace tenet::sgx {
namespace {

using apps::PacketFn;
using apps::SendRunRequest;

struct IoWorld {
  IoWorld() : platform(authority, "io-host") {
    enclave = &platform.launch(vendor, apps::packet_sender_image());
    enclave->set_ocall_handler([this](uint32_t code, crypto::BytesView payload) {
      switch (code) {
        case apps::kOcallNetOpen:
          ++opens;
          return crypto::Bytes{};
        case apps::kOcallNetSend:
          ++sends;
          bytes_on_wire += payload.size();
          return crypto::Bytes{};
        case apps::kOcallNetSendBatch: {
          crypto::Reader r(payload);
          while (!r.done()) {
            const crypto::Bytes pkt = r.lv();
            ++sends;
            bytes_on_wire += pkt.size();
          }
          ++batch_calls;
          return crypto::Bytes{};
        }
        default:
          return crypto::Bytes{};
      }
    });
  }

  uint32_t run(SendRunRequest req) {
    const crypto::Bytes out = enclave->ecall(PacketFn::kSendRun, req.serialize());
    return out.empty() ? 0 : crypto::read_u32(out, 0);
  }

  Authority authority;
  Vendor vendor{"io-vendor"};
  Platform platform;
  Enclave* enclave = nullptr;
  int opens = 0;
  int sends = 0;
  int batch_calls = 0;
  size_t bytes_on_wire = 0;
};

TEST(PacketIo, SendsRequestedPackets) {
  IoWorld w;
  SendRunRequest req;
  req.packet_count = 5;
  req.packet_size = 1500;
  EXPECT_EQ(w.run(req), 5u);
  EXPECT_EQ(w.opens, 1);
  EXPECT_EQ(w.sends, 5);
  EXPECT_EQ(w.bytes_on_wire, 5 * 1500u);
}

TEST(PacketIo, SgxInstructionCountIs2NPlus4) {
  // Table 2: SGX(U) = 6 for 1 packet, 204 for 100 packets — i.e. 2N + 4
  // (EENTER + open-exit pair + one exit/resume pair per packet + EEXIT).
  for (uint32_t n : {1u, 10u, 100u}) {
    IoWorld w;
    const auto before = w.enclave->cost().snapshot();
    SendRunRequest req;
    req.packet_count = n;
    ASSERT_EQ(w.run(req), n);
    EXPECT_EQ(w.enclave->cost().delta(before).sgx_user, 2 * n + 4) << "n=" << n;
  }
}

TEST(PacketIo, CryptoAddsNormalInstructionsOnly) {
  IoWorld w1, w2;
  SendRunRequest plain;
  plain.packet_count = 10;
  SendRunRequest enc = plain;
  enc.encrypt = true;

  const auto b1 = w1.enclave->cost().snapshot();
  ASSERT_EQ(w1.run(plain), 10u);
  const auto d1 = w1.enclave->cost().delta(b1);

  const auto b2 = w2.enclave->cost().snapshot();
  ASSERT_EQ(w2.run(enc), 10u);
  const auto d2 = w2.enclave->cost().delta(b2);

  // EGETKEY for the session key is one extra SGX(U) instruction; the AES
  // work shows up as normal instructions.
  EXPECT_EQ(d2.sgx_user, d1.sgx_user + 1);
  EXPECT_GT(d2.normal, d1.normal);
  // ~94 AES blocks per 1500B packet at per_aes_block cost each.
  const uint64_t aes_floor =
      10ull * 90 * w1.enclave->cost().constants().per_aes_block;
  EXPECT_GT(d2.normal - d1.normal, aes_floor);
}

TEST(PacketIo, EncryptedPacketsArriveEncrypted) {
  IoWorld w;
  SendRunRequest req;
  req.packet_count = 1;
  req.packet_size = 64;
  req.encrypt = true;

  crypto::Bytes captured;
  w.enclave->set_ocall_handler([&](uint32_t code, crypto::BytesView payload) {
    if (code == apps::kOcallNetSend) captured.assign(payload.begin(), payload.end());
    return crypto::Bytes{};
  });
  ASSERT_EQ(w.run(req), 1u);
  ASSERT_FALSE(captured.empty());
  // ECB+PKCS#7 of 64 bytes = 80 bytes, and not equal to the plaintext.
  EXPECT_EQ(captured.size(), 80u);
  crypto::Bytes plain(64);
  for (size_t b = 0; b < plain.size(); ++b) plain[b] = static_cast<uint8_t>(b);
  EXPECT_NE(crypto::Bytes(captured.begin(), captured.begin() + 64), plain);
}

TEST(PacketIo, BatchingAmortizesExits) {
  IoWorld unbatched, batched;
  SendRunRequest req;
  req.packet_count = 64;
  const auto b1 = unbatched.enclave->cost().snapshot();
  ASSERT_EQ(unbatched.run(req), 64u);
  const auto d1 = unbatched.enclave->cost().delta(b1);

  req.batched = true;
  req.batch_size = 16;
  const auto b2 = batched.enclave->cost().snapshot();
  ASSERT_EQ(batched.run(req), 64u);
  const auto d2 = batched.enclave->cost().delta(b2);

  // 64 exit pairs vs 4: SGX(U) drops from 2*64+4 to 2*4+4.
  EXPECT_EQ(d1.sgx_user, 2 * 64 + 4u);
  EXPECT_EQ(d2.sgx_user, 2 * 4 + 4u);
  EXPECT_EQ(batched.batch_calls, 4);
  EXPECT_EQ(batched.sends, 64);
  // Context-switch normal-instruction overhead drops too.
  EXPECT_LT(d2.normal, d1.normal);
}

TEST(PacketIo, PerPacketCostAmortizesWithBatchSize) {
  // The paper: "while the cost of a single I/O operation is high, the
  // cost can be amortized with batched I/O."
  auto per_packet_cycles = [](uint32_t batch_size) {
    IoWorld w;
    SendRunRequest req;
    req.packet_count = 128;
    req.batched = batch_size > 1;
    req.batch_size = batch_size;
    const auto before = w.enclave->cost().snapshot();
    EXPECT_EQ(w.run(req), 128u);
    const auto d = w.enclave->cost().delta(before);
    return w.enclave->cost().cycles_of(d) / 128.0;
  };
  const double c1 = per_packet_cycles(1);
  const double c16 = per_packet_cycles(16);
  const double c64 = per_packet_cycles(64);
  EXPECT_GT(c1, c16);
  EXPECT_GT(c16, c64);
}

TEST(PacketIo, ZeroPacketsRejected) {
  IoWorld w;
  SendRunRequest req;
  req.packet_count = 0;
  EXPECT_EQ(w.run(req), 0u);
}

}  // namespace
}  // namespace tenet::sgx
