#include "sgx/enclave.h"

#include <gtest/gtest.h>

#include "sgx/adversary.h"
#include "sgx/apps.h"
#include "sgx/platform.h"

namespace tenet::sgx {
namespace {

struct World {
  Authority authority;
  Vendor vendor{"test-vendor"};
  Platform platform{authority, "host-A"};
};

TEST(Enclave, LaunchAndEcall) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  EXPECT_TRUE(e.alive());
  EXPECT_EQ(e.measurement(), apps::echo_image().measure());
  const crypto::Bytes out = e.ecall(apps::kEchoReverse, crypto::to_bytes("abc"));
  EXPECT_EQ(crypto::to_string(out), "cba");
}

TEST(Enclave, LaunchChargesPrivilegedInstructions) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  // ECREATE + per-page (EADD + 16 EEXTEND) + EINIT.
  const uint64_t pages = apps::echo_image().page_count();
  EXPECT_EQ(e.cost().sgx_priv_instructions(), 1 + pages * 17 + 1);
  EXPECT_EQ(e.cost().sgx_user_instructions(), 0u);  // launch is privileged
}

TEST(Enclave, EcallChargesEnterExitAndCopies) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  const auto before = e.cost().snapshot();
  (void)e.ecall(apps::kEchoReverse, crypto::Bytes(100, 1));
  const auto d = e.cost().delta(before);
  EXPECT_EQ(d.sgx_user, 2u);  // EENTER + EEXIT
  // 100 bytes in + 100 bytes out, copied at boundary_bytes_per_instr.
  const uint64_t rate = e.cost().constants().boundary_bytes_per_instr;
  EXPECT_EQ(d.normal, 2 * ((100 + rate - 1) / rate));
}

TEST(Enclave, OcallRoundTripAndAccounting) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  uint32_t seen_code = 0;
  e.set_ocall_handler([&](uint32_t code, crypto::BytesView payload) {
    seen_code = code;
    crypto::Bytes out(payload.begin(), payload.end());
    out.push_back('!');
    return out;
  });
  const auto before = e.cost().snapshot();
  const crypto::Bytes out = e.ecall(apps::kEchoOcall, crypto::to_bytes("ping"));
  EXPECT_EQ(crypto::to_string(out), "ping!");
  EXPECT_EQ(seen_code, 0x42u);
  // EENTER + (EEXIT + ERESUME for the ocall) + EEXIT.
  EXPECT_EQ(e.cost().delta(before).sgx_user, 4u);
}

TEST(Enclave, OcallWithoutHandlerFaults) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  EXPECT_THROW((void)e.ecall(apps::kEchoOcall, {}), HardwareFault);
}

TEST(Enclave, HeapAllocGrowsEpcAndChargesAllocatorWork) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  const size_t image_pages = w.platform.epc().pages_of(e.id());
  const auto before = e.cost().snapshot();

  crypto::Bytes arg;
  crypto::append_u32(arg, 3 * kPageSize + 1);  // needs 4 pages
  (void)e.ecall(apps::kEchoAlloc, arg);

  EXPECT_EQ(w.platform.epc().pages_of(e.id()), image_pages + 4);
  const auto d = e.cost().delta(before);
  EXPECT_EQ(d.sgx_user, 2u);  // EENTER/EEXIT only (SGX1: no EACCEPT)
  EXPECT_EQ(d.sgx_priv, 4u);  // 4 EAUG (book-keeping, excluded from tables)
  // The allocator work lands in normal instructions.
  EXPECT_GE(d.normal, 4 * e.cost().constants().per_page_zero);
}

TEST(Enclave, HeapAllocIsHighWaterMark) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  crypto::Bytes arg;
  crypto::append_u32(arg, 100);
  (void)e.ecall(apps::kEchoAlloc, arg);  // page 1
  const size_t pages_after_first = w.platform.epc().pages_of(e.id());
  (void)e.ecall(apps::kEchoAlloc, arg);  // still within page 1
  EXPECT_EQ(w.platform.epc().pages_of(e.id()), pages_after_first);
}

TEST(Enclave, InEnclaveFaultExitsCleanly) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  EXPECT_THROW((void)e.ecall(apps::kEchoThrow, {}), std::runtime_error);
  // The TCS is released; further calls work.
  EXPECT_EQ(crypto::to_string(e.ecall(apps::kEchoReverse, crypto::to_bytes("xy"))),
            "yx");
}

TEST(Enclave, DestroyedEnclaveRefusesEntry) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  e.destroy();
  EXPECT_FALSE(e.alive());
  EXPECT_THROW((void)e.ecall(apps::kEchoReverse, {}), HardwareFault);
  EXPECT_EQ(w.platform.epc().pages_of(e.id()), 0u);
}

TEST(Enclave, TamperedEpcPageFaultsOnNextEntry) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  (void)e.ecall(apps::kEchoReverse, crypto::to_bytes("ok"));
  ASSERT_TRUE(w.platform.epc().adversary_corrupt(e.id(), 0, 123));
  EXPECT_THROW((void)e.ecall(apps::kEchoReverse, crypto::to_bytes("x")),
               HardwareFault);
}

TEST(Enclave, EinitRejectsBadSigstruct) {
  World w;
  const EnclaveImage image = apps::echo_image();
  SigStruct s = w.vendor.sign(image, 1);
  s.mr_enclave[5] ^= 1;  // signature no longer covers this measurement
  EXPECT_THROW(w.platform.launch(s, image), HardwareFault);
}

TEST(Enclave, EinitRejectsMismatchedImage) {
  World w;
  // Sigstruct for variant 0, but the host loads a patched image — the
  // §3.2 "curious volunteer" attack at launch time.
  const SigStruct s = w.vendor.sign(apps::echo_image(0), 1);
  const EnclaveImage patched =
      adversary::patch_image(apps::echo_image(0), "spy on traffic");
  EXPECT_THROW(w.platform.launch(s, patched), HardwareFault);
}

TEST(Enclave, SealKeyStablePerEnclaveIdentity) {
  World w;
  Enclave& e1 = w.platform.launch(w.vendor, apps::echo_image(0));
  Enclave& e2 = w.platform.launch(w.vendor, apps::echo_image(0));
  Enclave& e3 = w.platform.launch(w.vendor, apps::echo_image(1));
  const crypto::Bytes k1 = e1.ecall(apps::kEchoSealKey, {});
  const crypto::Bytes k2 = e2.ecall(apps::kEchoSealKey, {});
  const crypto::Bytes k3 = e3.ecall(apps::kEchoSealKey, {});
  EXPECT_EQ(k1, k2);  // same measurement, same platform -> same seal key
  EXPECT_NE(k1, k3);  // different measurement -> different key
}

TEST(Enclave, SealKeyDiffersAcrossPlatforms) {
  World w;
  Platform other(w.authority, "host-B");
  Enclave& e1 = w.platform.launch(w.vendor, apps::echo_image(0));
  Enclave& e2 = other.launch(w.vendor, apps::echo_image(0));
  EXPECT_NE(e1.ecall(apps::kEchoSealKey, {}), e2.ecall(apps::kEchoSealKey, {}));
}

TEST(Platform, DuplicateNamesRejected) {
  Authority authority;
  Platform a(authority, "same");
  EXPECT_THROW(Platform(authority, "same"), std::invalid_argument);
}

TEST(Platform, QuotingEnclaveHasWellKnownMeasurement) {
  World w;
  Platform other(w.authority, "host-B");
  EXPECT_EQ(w.platform.quoting_enclave().measurement(),
            Platform::quoting_enclave_measurement());
  EXPECT_EQ(other.quoting_enclave().measurement(),
            Platform::quoting_enclave_measurement());
}

}  // namespace
}  // namespace tenet::sgx
