// Platform::restart_enclave and the sealed-state recovery story: a fresh
// instance of the same build on the same platform keeps the identity
// (measurement, seal keys) while losing all runtime state; a patched
// build does NOT inherit that identity and can neither unseal the dead
// enclave's checkpoint nor slip past the cost accounting.
#include <gtest/gtest.h>

#include "sgx/adversary.h"
#include "sgx/apps.h"
#include "sgx/platform.h"

namespace tenet::sgx {
namespace {

struct World {
  Authority authority;
  Vendor vendor{"restart-vendor"};
  Platform platform{authority, "restart-host"};
};

TEST(Restart, FreshInstanceOfSameBuild) {
  World w;
  Enclave& e1 = w.platform.launch(w.vendor, apps::echo_image());
  const EnclaveId old_id = e1.id();
  const Measurement m = e1.measurement();

  Enclave& e2 = w.platform.restart_enclave(old_id);
  EXPECT_NE(e2.id(), old_id);
  EXPECT_EQ(e2.measurement(), m);
  EXPECT_TRUE(e2.alive());
  // The old instance is gone: restarting it again is a hardware fault.
  EXPECT_THROW((void)w.platform.restart_enclave(old_id), HardwareFault);
}

TEST(Restart, UnknownIdThrows) {
  World w;
  EXPECT_THROW((void)w.platform.restart_enclave(12345), HardwareFault);
}

TEST(Restart, RuntimeStateIsLost) {
  World w;
  Enclave& e1 = w.platform.launch(w.vendor, apps::echo_image());
  crypto::Bytes alloc_arg;
  crypto::append_u32(alloc_arg, 4096);
  (void)e1.ecall(apps::kEchoAlloc, alloc_arg);
  Enclave& e2 = w.platform.restart_enclave(e1.id());
  // A restart is a cold start: the fresh instance re-runs from the image.
  EXPECT_EQ(e2.ecall(apps::kEchoReverse, crypto::to_bytes("abc")),
            crypto::to_bytes("cba"));
}

TEST(Restart, CostAccountingIsMonotone) {
  World w;
  Enclave& e1 = w.platform.launch(w.vendor, apps::echo_image());
  (void)e1.ecall(apps::kEchoReverse, crypto::to_bytes("some work"));
  const CostModel::Snapshot before = w.platform.total_snapshot();

  Enclave& e2 = w.platform.restart_enclave(e1.id());
  const CostModel::Snapshot after = w.platform.total_snapshot();
  // The crashed instance's work is retired, not forgotten: totals never
  // move backwards across a restart.
  EXPECT_GE(after.sgx_user, before.sgx_user);
  EXPECT_GE(after.sgx_priv, before.sgx_priv);
  EXPECT_GE(after.normal, before.normal);

  (void)e2.ecall(apps::kEchoReverse, crypto::to_bytes("more work"));
  const CostModel::Snapshot later = w.platform.total_snapshot();
  EXPECT_GT(later.sgx_user, after.sgx_user);
}

TEST(Restart, SealedStateSurvivesRestartEnclave) {
  World w;
  Enclave& e1 = w.platform.launch(w.vendor, apps::echo_image());
  const crypto::Bytes secret = crypto::to_bytes("admitted relay list v7");
  const crypto::Bytes sealed = e1.ecall(apps::kEchoSeal, secret);
  ASSERT_FALSE(sealed.empty());

  Enclave& e2 = w.platform.restart_enclave(e1.id());
  EXPECT_EQ(e2.ecall(apps::kEchoUnseal, sealed), secret);
}

TEST(Restart, PatchedBuildCannotUnsealTheCheckpoint) {
  // Recovery-time substitution attack: the host crashes the enclave, then
  // "recovers" with a patched build hoping to inherit the sealed state.
  // The patch changes the measurement, so the seal key differs and the
  // checkpoint stays opaque.
  World w;
  Enclave& honest = w.platform.launch(w.vendor, apps::echo_image());
  const Measurement honest_mr = honest.measurement();
  const crypto::Bytes sealed =
      honest.ecall(apps::kEchoSeal, crypto::to_bytes("node secrets"));
  honest.destroy();

  const EnclaveImage patched =
      adversary::patch_image(apps::echo_image(), "log plaintext");
  Enclave& evil = w.platform.launch(w.vendor, patched);
  EXPECT_NE(evil.measurement(), honest_mr);
  EXPECT_TRUE(evil.ecall(apps::kEchoUnseal, sealed).empty());

  // The faithful build, restarted later, still can.
  Enclave& again = w.platform.launch(w.vendor, apps::echo_image());
  EXPECT_EQ(again.ecall(apps::kEchoUnseal, sealed),
            crypto::to_bytes("node secrets"));
}

TEST(Restart, PatchedBuildStillFailsAttestationAfterRestart) {
  // Restarting an enclave must not launder its identity: a quote from a
  // restarted patched build still carries the patched measurement and the
  // authority-side policy check still rejects it.
  World w;
  const EnclaveImage patched =
      adversary::patch_image(apps::echo_image(), "exfiltrate keys");
  Enclave& evil1 = w.platform.launch(w.vendor, patched);
  Enclave& evil2 = w.platform.restart_enclave(evil1.id());
  EXPECT_EQ(evil2.measurement(), patched.measure());  // identity unchanged
  EXPECT_NE(evil2.measurement(), apps::echo_image().measure());
}

}  // namespace
}  // namespace tenet::sgx
