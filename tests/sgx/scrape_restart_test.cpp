// Scrape continuity across Platform::restart_enclave: the scrape ring
// keeps deterministic sample boundaries, every registry counter stays
// monotone through the teardown/relaunch, and the restart itself lands in
// the structured event log attributed to the dead instance.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sgx/apps.h"
#include "sgx/platform.h"
#include "telemetry/events.h"
#include "telemetry/scrape.h"
#include "telemetry/telemetry.h"

#if TENET_TELEMETRY_ENABLED

namespace tenet::sgx {
namespace {

class TelemetryOn {
 public:
  TelemetryOn() {
    telemetry::set_enabled(true);
    telemetry::event_log().clear();
  }
  ~TelemetryOn() {
    telemetry::set_enabled(false);
    telemetry::event_log().clear();
  }
};

uint64_t counter_in(const telemetry::Scraper::Sample& s,
                    const std::string& name, bool* found = nullptr) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) {
      if (found != nullptr) *found = true;
      return v;
    }
  }
  if (found != nullptr) *found = false;
  return 0;
}

TEST(ScrapeRestart, CountersStayMonotoneAcrossEnclaveRestart) {
  TelemetryOn guard;
  Authority authority;
  Vendor vendor{"scrape-vendor"};
  Platform platform{authority, "scrape-host"};
  telemetry::Scraper scraper;

  Enclave& e1 = platform.launch(vendor, apps::echo_image());
  (void)e1.ecall(apps::kEchoReverse, crypto::to_bytes("pre-restart work"));
  scraper.scrape(/*ts_us=*/1000);

  const EnclaveId old_id = e1.id();
  Enclave& e2 = platform.restart_enclave(old_id);
  (void)e2.ecall(apps::kEchoReverse, crypto::to_bytes("post-restart work"));
  scraper.scrape(/*ts_us=*/2000);

  // Deterministic scrape boundaries: sequential seqs, caller timestamps.
  ASSERT_EQ(scraper.size(), 2u);
  const auto& before = scraper.samples()[0];
  const auto& after = scraper.samples()[1];
  EXPECT_EQ(before.seq, 0u);
  EXPECT_EQ(after.seq, 1u);
  EXPECT_EQ(before.ts_us, 1000u);
  EXPECT_EQ(after.ts_us, 2000u);

  // Monotone counters through the restart: nothing the dead instance
  // charged is forgotten, so every pre-restart counter is <= its
  // post-restart reading (instruments are never destroyed).
  ASSERT_FALSE(before.counters.empty());
  for (const auto& [name, value] : before.counters) {
    bool found = false;
    const uint64_t later = counter_in(after, name, &found);
    ASSERT_TRUE(found) << "counter " << name << " vanished across restart";
    EXPECT_GE(later, value) << "counter " << name << " moved backwards";
  }
  EXPECT_GT(counter_in(after, "sgx.enclave_restarts"),
            counter_in(before, "sgx.enclave_restarts"));

  // The restart is a fleet event, attributed to the torn-down instance.
  bool restart_seen = false;
  for (const auto& e : telemetry::event_log().snapshot()) {
    if (e.type == telemetry::EventType::kEnclaveRestart &&
        e.node == static_cast<uint32_t>(old_id)) {
      restart_seen = true;
    }
  }
  EXPECT_TRUE(restart_seen);
  EXPECT_TRUE(telemetry::event_log().consistent());
}

}  // namespace
}  // namespace tenet::sgx

#endif  // TENET_TELEMETRY_ENABLED
