// Integration cross-check: the telemetry counters (incremented at the
// instrumentation sites) must agree exactly with the cost model's and the
// EPC's own tallies of the same events. The two are counted independently,
// so agreement here means the exported metrics can be trusted to reproduce
// the paper's instruction-count tables.
#include <gtest/gtest.h>

#include "sgx/apps.h"
#include "sgx/epc.h"
#include "sgx/platform.h"
#include "telemetry/telemetry.h"

// These tests only make sense when the instrumentation is compiled in.
#if TENET_TELEMETRY_ENABLED

namespace tenet::sgx {
namespace {

/// Enables telemetry on a zeroed registry for one test's scope.
struct TelemetryOn {
  TelemetryOn() {
    telemetry::registry().reset_values();
    telemetry::set_enabled(true);
  }
  ~TelemetryOn() { telemetry::set_enabled(false); }
};

uint64_t counted(const char* name) {
  return telemetry::registry().counter(name).value();
}

TEST(TelemetryCrosscheck, TransitionCountersMatchCostModel) {
  TelemetryOn on;
  Authority authority;
  Vendor vendor{"xcheck-vendor"};
  Platform platform{authority, "xcheck-host"};
  Enclave& e = platform.launch(vendor, apps::echo_image());
  e.set_ocall_handler([](uint32_t, crypto::BytesView payload) {
    return crypto::Bytes(payload.begin(), payload.end());
  });

  // A mixed workload: plain ecalls, an ocall round-trip (EEXIT + ERESUME),
  // and a heap allocation (EAUG pages).
  (void)e.ecall(apps::kEchoReverse, crypto::to_bytes("hello"));
  (void)e.ecall(apps::kEchoOcall, crypto::to_bytes("ping"));
  crypto::Bytes arg;
  crypto::append_u32(arg, 2 * kPageSize);
  (void)e.ecall(apps::kEchoAlloc, arg);

  const CostModel& cost = e.cost();
  EXPECT_EQ(counted("sgx.eenter"), cost.user_count(UserInstr::kEEnter));
  EXPECT_EQ(counted("sgx.eexit"), cost.user_count(UserInstr::kEExit));
  EXPECT_EQ(counted("sgx.eresume"), cost.user_count(UserInstr::kEResume));
  EXPECT_EQ(counted("sgx.eaug"), cost.priv_count(PrivInstr::kEAug));
  EXPECT_EQ(counted("sgx.eadd_pages"), cost.priv_count(PrivInstr::kEAdd));
  // Absolute values, so a double-count in BOTH tallies cannot hide.
  EXPECT_EQ(counted("sgx.eenter"), 3u);
  EXPECT_EQ(counted("sgx.eresume"), 1u);
  EXPECT_EQ(counted("sgx.ocall"), 1u);
  EXPECT_EQ(counted("sgx.enclave_launches"), 1u);
}

TEST(TelemetryCrosscheck, PagingCountersMatchEpcTallies) {
  TelemetryOn on;
  // Tiny EPC so adds force evictions; reads force reloads.
  Epc epc(crypto::Bytes(32, 0x55), /*capacity_pages=*/4);
  for (uint64_t v = 0; v < 10; ++v) {
    epc.add_page(1, v, crypto::Bytes(8, static_cast<uint8_t>(v)));
  }
  for (uint64_t v = 0; v < 10; ++v) (void)epc.read_page(1, v);

  ASSERT_GT(epc.evictions(), 0u);
  ASSERT_GT(epc.reloads(), 0u);
  EXPECT_EQ(counted("sgx.epc.ewb"), epc.evictions());
  EXPECT_EQ(counted("sgx.epc.eldu"), epc.reloads());
  EXPECT_EQ(counted("sgx.epc.pages_added"), 10u);
  // Every EWB and every ELDU is one MEE open + one MEE seal on top of the
  // seal done when the page was first added.
  EXPECT_EQ(counted("sgx.epc.mee_seals"),
            10u + epc.evictions() + epc.reloads());
  EXPECT_EQ(counted("sgx.epc.mee_opens"), epc.evictions() + epc.reloads());
}

TEST(TelemetryCrosscheck, RollbackDetectionIsCounted) {
  TelemetryOn on;
  Epc epc(crypto::Bytes(32, 0x66));
  epc.add_page(1, 0, crypto::to_bytes("v1"));
  epc.evict_page(1, 0);
  const auto old_spill = epc.adversary_snapshot_spill(1, 0);
  ASSERT_TRUE(old_spill.has_value());
  (void)epc.read_page(1, 0);  // reload
  epc.evict_page(1, 0);       // spill again with a fresh version
  ASSERT_TRUE(epc.adversary_replace_spill(1, 0, *old_spill));
  EXPECT_THROW((void)epc.read_page(1, 0), HardwareFault);
  EXPECT_EQ(counted("sgx.epc.rollbacks_detected"), 1u);
}

}  // namespace
}  // namespace tenet::sgx

#endif  // TENET_TELEMETRY_ENABLED
