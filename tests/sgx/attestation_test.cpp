#include "sgx/attestation.h"

#include <gtest/gtest.h>

#include "sgx/adversary.h"
#include "sgx/apps.h"

namespace tenet::sgx {
namespace {

using apps::AttestFn;

/// Two platforms, challenger and target enclaves, the standard Figure 1
/// cast. Challenger expects the canonical target measurement.
struct AttestWorld {
  explicit AttestWorld(AttestationConfig cfg = {})
      : config(cfg),
        challenger_platform(authority, "challenger-host"),
        target_platform(authority, "target-host") {
    config.expect.expect_enclave(apps::target_image(authority, config).measure());
    challenger =
        &challenger_platform.launch(vendor, apps::challenger_image(authority, config));
    target = &target_platform.launch(vendor, apps::target_image(authority, config));
  }

  /// Runs the full protocol; returns the challenger's outcome byte.
  bool run() {
    const crypto::Bytes msg1 = challenger->ecall(AttestFn::kCreateChallenge, {});
    msg2 = target->ecall(AttestFn::kHandleChallenge, msg1);
    if (msg2.empty()) return false;
    const crypto::Bytes result =
        challenger->ecall(AttestFn::kConsumeResponse, msg2);
    return !result.empty() && result[0] == 1;
  }

  Authority authority;
  Vendor vendor{"app-vendor"};
  AttestationConfig config;
  Platform challenger_platform;
  Platform target_platform;
  Enclave* challenger = nullptr;
  Enclave* target = nullptr;
  crypto::Bytes msg2;
};

TEST(Attestation, SucceedsWithDh) {
  AttestWorld w;
  EXPECT_TRUE(w.run());
}

TEST(Attestation, BothSidesDeriveSameSessionKey) {
  AttestWorld w;
  ASSERT_TRUE(w.run());
  const crypto::Bytes kc =
      w.challenger->ecall(AttestFn::kGetSessionKey, crypto::to_bytes("chan"));
  const crypto::Bytes kt =
      w.target->ecall(AttestFn::kGetSessionKey, crypto::to_bytes("chan"));
  ASSERT_FALSE(kc.empty());
  EXPECT_EQ(kc, kt);
  // Different labels give independent keys.
  EXPECT_NE(kc, w.challenger->ecall(AttestFn::kGetSessionKey,
                                    crypto::to_bytes("other")));
}

TEST(Attestation, KeyConfirmationRoundTrip) {
  AttestWorld w;
  ASSERT_TRUE(w.run());
  const crypto::Bytes msg3 = w.challenger->ecall(AttestFn::kCreateConfirm, {});
  ASSERT_FALSE(msg3.empty());
  const crypto::Bytes ok = w.target->ecall(AttestFn::kVerifyConfirm, msg3);
  EXPECT_EQ(ok[0], 1);

  crypto::Bytes tampered = msg3;
  tampered.back() ^= 1;
  EXPECT_EQ(w.target->ecall(AttestFn::kVerifyConfirm, tampered)[0], 0);
}

TEST(Attestation, SucceedsWithoutDh) {
  AttestationConfig cfg;
  cfg.use_dh = false;
  AttestWorld w(cfg);
  EXPECT_TRUE(w.run());
  // No DH -> no session key available.
  EXPECT_TRUE(
      w.challenger->ecall(AttestFn::kGetSessionKey, crypto::to_bytes("k"))
          .empty());
}

TEST(Attestation, DhCostDominates) {
  // Table 1's headline: "the Diffie-Hellman key exchange takes up 90% of
  // the cycles." Compare target-enclave normal instructions w/ and w/o DH.
  AttestationConfig with_dh;
  AttestWorld w1(with_dh);
  ASSERT_TRUE(w1.run());
  const uint64_t normal_with = w1.target->cost().snapshot().normal;

  AttestationConfig without_dh;
  without_dh.use_dh = false;
  AttestWorld w2(without_dh);
  ASSERT_TRUE(w2.run());
  const uint64_t normal_without = w2.target->cost().snapshot().normal;

  EXPECT_GT(normal_with, 5 * normal_without);
}

TEST(Attestation, WrongMeasurementRejected) {
  AttestationConfig cfg;
  AttestWorld w(cfg);
  // Challenger expects a different (patched) target.
  w.config.expect.expect_enclave(
      apps::target_image(w.authority, w.config, /*variant=*/9).measure());
  w.challenger->destroy();
  w.challenger = &w.challenger_platform.launch(
      w.vendor, apps::challenger_image(w.authority, w.config));
  EXPECT_FALSE(w.run());
}

TEST(Attestation, PatchedTargetEnclaveRejected) {
  // The §3.2 scenario: a volunteer runs a modified Tor OR. It launches
  // fine (the volunteer controls the host) but fails attestation.
  AttestWorld w;
  const EnclaveImage patched = adversary::patch_image(
      apps::target_image(w.authority, w.config), "exit-traffic sniffer");
  w.target->destroy();
  w.target = &w.target_platform.launch(w.vendor, patched);
  EXPECT_FALSE(w.run());
}

TEST(Attestation, SignerPolicyEnforced) {
  AttestationConfig cfg;
  cfg.expect.mr_signer = Vendor("app-vendor").signer_id();
  AttestWorld w(cfg);
  EXPECT_TRUE(w.run());

  AttestationConfig cfg2;
  cfg2.expect.mr_signer = Vendor("somebody-else").signer_id();
  AttestWorld w2(cfg2);
  EXPECT_FALSE(w2.run());
}

TEST(Attestation, MinimumSecurityVersionEnforced) {
  AttestationConfig cfg;
  cfg.expect.min_security_version = 2;
  AttestWorld w(cfg);
  // Default launch() signs with security_version = 1.
  EXPECT_FALSE(w.run());

  // Re-launch the target with an upgraded SVN.
  const EnclaveImage img = apps::target_image(w.authority, w.config);
  w.target->destroy();
  w.target = &w.target_platform.launch(w.vendor.sign(img, 1, /*svn=*/3), img);
  EXPECT_TRUE(w.run());
}

TEST(Attestation, RevokedPlatformRejected) {
  AttestWorld w;
  w.authority.revoke(w.target_platform.id());
  EXPECT_FALSE(w.run());
}

TEST(Attestation, MitmKeySpliceRejected) {
  // A MITM replaces the target's DH public value in msg2 with its own.
  // REPORTDATA binds the genuine value, so the challenger must reject.
  AttestWorld w;
  const crypto::Bytes msg1 = w.challenger->ecall(AttestFn::kCreateChallenge, {});
  crypto::Bytes msg2 = w.target->ecall(AttestFn::kHandleChallenge, msg1);
  ASSERT_FALSE(msg2.empty());

  // msg2 = "ATT2" | LV quote | LV dh_pub. Flip a byte inside dh_pub.
  msg2[msg2.size() - 1] ^= 0x01;
  const crypto::Bytes result =
      w.challenger->ecall(AttestFn::kConsumeResponse, msg2);
  EXPECT_EQ(result[0], 0);
}

TEST(Attestation, ReplayedQuoteFromOtherSessionRejected) {
  // Run one full session, then replay its msg2 against a fresh challenge:
  // the nonce embedded in REPORTDATA no longer matches.
  AttestWorld w;
  ASSERT_TRUE(w.run());
  const crypto::Bytes replayed = w.msg2;

  Enclave& fresh_challenger = w.challenger_platform.launch(
      w.vendor, apps::challenger_image(w.authority, w.config));
  (void)fresh_challenger.ecall(AttestFn::kCreateChallenge, {});
  const crypto::Bytes result =
      fresh_challenger.ecall(AttestFn::kConsumeResponse, replayed);
  EXPECT_EQ(result[0], 0);
}

TEST(Attestation, MutualModeVerifiesChallenger) {
  AttestationConfig cfg;
  cfg.mutual = true;
  AttestWorld w(cfg);
  // In this test both sides use the same policy object; expect is the
  // *target* measurement, so the target's check of the challenger fails —
  // set the expectation to the challenger image instead for the target's
  // side by using signer policy, which both share.
  AttestationConfig sym;
  sym.mutual = true;
  sym.expect.mr_signer = w.vendor.signer_id();
  Platform pc(w.authority, "mutual-chal"), pt(w.authority, "mutual-targ");
  Enclave& c = pc.launch(w.vendor, apps::challenger_image(w.authority, sym));
  Enclave& t = pt.launch(w.vendor, apps::target_image(w.authority, sym));

  const crypto::Bytes msg1 = c.ecall(AttestFn::kCreateChallenge, {});
  const crypto::Bytes msg2 = t.ecall(AttestFn::kHandleChallenge, msg1);
  ASSERT_FALSE(msg2.empty());
  EXPECT_EQ(c.ecall(AttestFn::kConsumeResponse, msg2)[0], 1);
}

TEST(Attestation, MutualModeRejectsUnattestedChallenger) {
  // Challenger omits its quote (sends non-mutual msg1) but target policy
  // demands mutual attestation.
  AttestationConfig target_cfg;
  target_cfg.mutual = true;
  target_cfg.expect.mr_signer = Vendor("app-vendor").signer_id();

  AttestationConfig chal_cfg;  // mutual = false
  Authority authority;
  Vendor vendor("app-vendor");
  Platform pc(authority, "c-host"), pt(authority, "t-host");
  Enclave& c = pc.launch(vendor, apps::challenger_image(authority, chal_cfg));
  Enclave& t = pt.launch(vendor, apps::target_image(authority, target_cfg));

  const crypto::Bytes msg1 = c.ecall(AttestFn::kCreateChallenge, {});
  EXPECT_TRUE(t.ecall(AttestFn::kHandleChallenge, msg1).empty());
}

TEST(Attestation, MalformedMessagesRejectedGracefully) {
  AttestWorld w;
  EXPECT_TRUE(
      w.target->ecall(AttestFn::kHandleChallenge, crypto::to_bytes("junk"))
          .empty());
  (void)w.challenger->ecall(AttestFn::kCreateChallenge, {});
  const crypto::Bytes result = w.challenger->ecall(
      AttestFn::kConsumeResponse, crypto::to_bytes("garbage"));
  EXPECT_EQ(result[0], 0);
}

TEST(Attestation, ForeignAuthorityQuotesRejected) {
  // A platform enrolled with a DIFFERENT attestation authority (another
  // EPID group — e.g. a knock-off CPU vendor) produces quotes the
  // challenger's authority cannot verify.
  AttestWorld w;  // uses w.authority
  Authority foreign(/*seed=*/777);
  Vendor vendor("app-vendor");
  Platform foreign_platform(foreign, "foreign-host");
  Enclave& foreign_target = foreign_platform.launch(
      vendor, apps::target_image(foreign, w.config));

  const crypto::Bytes msg1 = w.challenger->ecall(AttestFn::kCreateChallenge, {});
  const crypto::Bytes msg2 =
      foreign_target.ecall(AttestFn::kHandleChallenge, msg1);
  ASSERT_FALSE(msg2.empty());  // the foreign platform happily quotes...
  const crypto::Bytes result =
      w.challenger->ecall(AttestFn::kConsumeResponse, msg2);
  EXPECT_EQ(result[0], 0);  // ...but the group signature does not verify
}

TEST(Attestation, SgxInstructionCountsAreStableAndSmall) {
  // Table 1 reports SGX(U) instruction counts in the tens. Verify ours are
  // deterministic run-to-run and in the same order of magnitude.
  AttestWorld w1, w2;
  ASSERT_TRUE(w1.run());
  ASSERT_TRUE(w2.run());
  const uint64_t target1 = w1.target->cost().sgx_user_instructions();
  const uint64_t target2 = w2.target->cost().sgx_user_instructions();
  EXPECT_EQ(target1, target2);
  EXPECT_GT(target1, 0u);
  EXPECT_LT(target1, 64u);

  const uint64_t qe = w1.target_platform.quoting_enclave()
                          .cost()
                          .sgx_user_instructions();
  EXPECT_GT(qe, 0u);
  EXPECT_LT(qe, 64u);
}

}  // namespace
}  // namespace tenet::sgx
