// EPC paging (EWB/ELDU) and rollback protection.
#include <gtest/gtest.h>

#include "sgx/epc.h"

namespace tenet::sgx {
namespace {

crypto::Bytes mee_key() { return crypto::Bytes(32, 0x77); }

TEST(EpcPaging, ExplicitEvictAndTransparentReload) {
  Epc epc(mee_key());
  const crypto::Bytes content = crypto::to_bytes("page me out");
  epc.add_page(1, 0, content);
  ASSERT_TRUE(epc.resident(1, 0));

  epc.evict_page(1, 0);
  EXPECT_FALSE(epc.resident(1, 0));
  EXPECT_EQ(epc.pages_of(1), 1u);  // still mapped, just not resident
  EXPECT_EQ(epc.evictions(), 1u);

  // Reading pages it back in transparently.
  const crypto::Bytes page = epc.read_page(1, 0);
  EXPECT_TRUE(std::equal(content.begin(), content.end(), page.begin()));
  EXPECT_TRUE(epc.resident(1, 0));
  EXPECT_EQ(epc.reloads(), 1u);
}

TEST(EpcPaging, CapacityPressureEvictsAutomatically) {
  Epc epc(mee_key(), /*capacity_pages=*/4);
  for (uint64_t v = 0; v < 10; ++v) {
    crypto::Bytes content;
    crypto::append_u64(content, v);
    epc.add_page(1, v, content);
  }
  EXPECT_LE(epc.pages_in_use(), 4u);
  EXPECT_EQ(epc.pages_of(1), 10u);  // all mapped, spilled as needed
  EXPECT_GE(epc.evictions(), 6u);

  // Every page still reads back correctly (round-tripping the spill).
  for (uint64_t v = 0; v < 10; ++v) {
    const crypto::Bytes page = epc.read_page(1, v);
    EXPECT_EQ(crypto::read_u64(page, 0), v) << "vaddr " << v;
  }
}

TEST(EpcPaging, WriteReloadsSpilledPage) {
  Epc epc(mee_key());
  epc.add_page(1, 0, crypto::to_bytes("v1"));
  epc.evict_page(1, 0);
  epc.write_page(1, 0, crypto::to_bytes("v2"));
  const crypto::Bytes page = epc.read_page(1, 0);
  EXPECT_EQ(page[1], '2');
}

TEST(EpcPaging, EvictNonResidentFaults) {
  Epc epc(mee_key());
  EXPECT_THROW(epc.evict_page(1, 0), HardwareFault);
  epc.add_page(1, 0, {});
  epc.evict_page(1, 0);
  EXPECT_THROW(epc.evict_page(1, 0), HardwareFault);  // already out
}

TEST(EpcPaging, DuplicateMappingOfSpilledPageRejected) {
  Epc epc(mee_key());
  epc.add_page(1, 0, {});
  epc.evict_page(1, 0);
  EXPECT_THROW(epc.add_page(1, 0, {}), HardwareFault);
}

TEST(EpcPaging, RollbackAttackDetected) {
  // The OS snapshots an old spilled copy, lets the enclave update the
  // page, then replays the stale snapshot — classic state-rollback.
  Epc epc(mee_key());
  epc.add_page(1, 0, crypto::to_bytes("balance=100"));
  epc.evict_page(1, 0);
  const auto old_snapshot = epc.adversary_snapshot_spill(1, 0);
  ASSERT_TRUE(old_snapshot.has_value());

  // Enclave pages it in, updates it, and it gets paged out again (new
  // version in the VA).
  epc.write_page(1, 0, crypto::to_bytes("balance=0"));
  epc.evict_page(1, 0);

  // The attacker replays the old "balance=100" copy.
  ASSERT_TRUE(epc.adversary_replace_spill(1, 0, *old_snapshot));
  EXPECT_THROW((void)epc.read_page(1, 0), HardwareFault);
}

TEST(EpcPaging, CorruptedSpillDetectedAtReload) {
  Epc epc(mee_key());
  epc.add_page(1, 0, crypto::to_bytes("spill integrity"));
  epc.evict_page(1, 0);
  ASSERT_TRUE(epc.adversary_corrupt(1, 0, 33));
  EXPECT_THROW((void)epc.read_page(1, 0), HardwareFault);
}

TEST(EpcPaging, SpilledCiphertextHidesContent) {
  Epc epc(mee_key());
  const crypto::Bytes secret = crypto::to_bytes("the enclave's private state");
  epc.add_page(1, 0, secret);
  epc.evict_page(1, 0);
  const auto ct = epc.adversary_read_ciphertext(1, 0);
  ASSERT_TRUE(ct.has_value());
  EXPECT_EQ(std::search(ct->begin(), ct->end(), secret.begin(), secret.end()),
            ct->end());
}

TEST(EpcPaging, RemoveEnclaveClearsSpill) {
  Epc epc(mee_key());
  epc.add_page(1, 0, {});
  epc.add_page(1, 1, {});
  epc.evict_page(1, 0);
  epc.remove_enclave(1);
  EXPECT_EQ(epc.pages_of(1), 0u);
  EXPECT_FALSE(epc.adversary_read_ciphertext(1, 0).has_value());
}

TEST(EpcPaging, TinyEpcStillRunsLargeEnclaveWorkingSet) {
  // A 2-page EPC backing a 50-page working set: thrashing, but correct.
  Epc epc(mee_key(), /*capacity_pages=*/2);
  for (uint64_t v = 0; v < 50; ++v) {
    crypto::Bytes content;
    crypto::append_u64(content, v * 31);
    epc.add_page(7, v, content);
  }
  for (int round = 0; round < 3; ++round) {
    for (uint64_t v = 0; v < 50; v += 7) {
      EXPECT_EQ(crypto::read_u64(epc.read_page(7, v), 0), v * 31);
    }
  }
  EXPECT_LE(epc.pages_in_use(), 2u);
}

}  // namespace
}  // namespace tenet::sgx
