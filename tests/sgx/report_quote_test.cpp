#include <gtest/gtest.h>

#include "sgx/adversary.h"
#include "sgx/apps.h"
#include "sgx/platform.h"
#include "sgx/quote.h"
#include "sgx/report.h"

namespace tenet::sgx {
namespace {

// An app that exposes EREPORT/quoting for direct testing.
class ReporterApp final : public EnclaveApp {
 public:
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            EnclaveEnv& env) override {
    if (fn == 1) {  // ereport toward measurement carried in arg
      Measurement target{};
      std::copy(arg.begin(), arg.begin() + 32, target.begin());
      const ReportData data = make_report_data(arg.subspan(32));
      return env.ereport(target, data).serialize();
    }
    if (fn == 2) {  // full quote flow
      return env.get_quote(make_report_data(arg)).serialize();
    }
    if (fn == 3) {  // own report key (EGETKEY)
      return env.report_key();
    }
    return {};
  }
};

EnclaveImage reporter_image() {
  return EnclaveImage::from_source(
      "reporter", "tenet reporter test enclave\n",
      [] { return std::make_unique<ReporterApp>(); });
}

struct World {
  Authority authority;
  Vendor vendor{"test-vendor"};
  Platform platform{authority, "host-A"};
};

crypto::Bytes self_report_arg(const Measurement& target,
                              std::string_view user_data) {
  crypto::Bytes arg(target.begin(), target.end());
  crypto::append(arg, crypto::to_bytes(user_data));
  return arg;
}

TEST(Report, MacVerifiesWithTargetReportKey) {
  World w;
  Enclave& reporter = w.platform.launch(w.vendor, reporter_image());
  Enclave& verifier = w.platform.launch(w.vendor, reporter_image());

  // reporter EREPORTs toward verifier's measurement...
  const Report r = Report::deserialize(
      reporter.ecall(1, self_report_arg(verifier.measurement(), "hello")));
  EXPECT_EQ(r.mr_enclave, reporter.measurement());
  EXPECT_EQ(r.target, verifier.measurement());

  // ...and the verifier can check it with its own EGETKEY report key.
  const crypto::Bytes verifier_key = verifier.ecall(3, {});
  EXPECT_TRUE(r.verify(verifier_key));

  // A different enclave's report key does not verify it.
  const crypto::Bytes reporter_key = reporter.ecall(3, {});
  EXPECT_EQ(verifier.measurement(), reporter.measurement());  // same image!
  EXPECT_TRUE(r.verify(reporter_key));  // same measurement -> same key
}

TEST(Report, TamperedFieldsFailMac) {
  World w;
  Enclave& reporter = w.platform.launch(w.vendor, reporter_image());
  const Measurement target = Platform::quoting_enclave_measurement();
  Report r = Report::deserialize(
      reporter.ecall(1, self_report_arg(target, "data")));
  const crypto::Bytes key = w.platform.derive_report_key(target);
  ASSERT_TRUE(r.verify(key));

  Report bad = r;
  bad.mr_enclave[0] ^= 1;
  EXPECT_FALSE(bad.verify(key));
  bad = r;
  bad.report_data[0] ^= 1;
  EXPECT_FALSE(bad.verify(key));
  bad = r;
  bad.security_version ^= 1;
  EXPECT_FALSE(bad.verify(key));
}

TEST(Report, SerializationRoundTrips) {
  World w;
  Enclave& reporter = w.platform.launch(w.vendor, reporter_image());
  const crypto::Bytes wire =
      reporter.ecall(1, self_report_arg(Platform::quoting_enclave_measurement(),
                                        "round-trip"));
  const Report r = Report::deserialize(wire);
  EXPECT_EQ(r.serialize(), wire);
}

TEST(Quote, EndToEndVerifiesUnderGroupKey) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, reporter_image());
  const Quote q = Quote::deserialize(e.ecall(2, crypto::to_bytes("session")));
  EXPECT_TRUE(w.authority.verify_quote(q));
  EXPECT_EQ(q.report.mr_enclave, e.measurement());
  EXPECT_EQ(q.platform, w.platform.id());
  EXPECT_EQ(q.report.report_data, make_report_data(crypto::to_bytes("session")));
}

TEST(Quote, VerifiesAcrossPlatforms) {
  // A quote produced on host-A verifies with only the authority's public
  // key — that is the whole point of remote attestation.
  World w;
  Platform remote(w.authority, "host-B");
  Enclave& e = remote.launch(w.vendor, reporter_image());
  const Quote q = Quote::deserialize(e.ecall(2, crypto::to_bytes("x")));
  EXPECT_TRUE(w.authority.verify_quote(q));
  EXPECT_EQ(q.platform, remote.id());
}

TEST(Quote, ForgedQuoteRejected) {
  World w;
  const Quote forged = adversary::forge_quote(
      apps::echo_image().measure(), Platform::quoting_enclave_measurement(),
      w.platform.id(), make_report_data(crypto::to_bytes("x")));
  EXPECT_FALSE(w.authority.verify_quote(forged));
}

TEST(Quote, SplicedReportDataRejected) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, reporter_image());
  const Quote q = Quote::deserialize(e.ecall(2, crypto::to_bytes("real")));
  const Quote spliced = adversary::splice_report_data(
      q, make_report_data(crypto::to_bytes("attacker")));
  EXPECT_FALSE(w.authority.verify_quote(spliced));
}

TEST(Quote, TamperedSignatureRejected) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, reporter_image());
  Quote q = Quote::deserialize(e.ecall(2, crypto::to_bytes("r")));
  q.signature.s = q.signature.s.add(crypto::BigInt(1))
                      .mod(crypto::DhGroup::oakley_group2().q());
  EXPECT_FALSE(w.authority.verify_quote(q));
}

TEST(Quote, RevokedPlatformRejected) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, reporter_image());
  const Quote q = Quote::deserialize(e.ecall(2, crypto::to_bytes("r")));
  ASSERT_TRUE(w.authority.verify_quote(q));
  w.authority.revoke(w.platform.id());
  EXPECT_FALSE(w.authority.verify_quote(q));
}

TEST(Quote, QuotingEnclaveRejectsForeignReport) {
  // A report MAC'd for a different target must not be quotable.
  World w;
  Enclave& e = w.platform.launch(w.vendor, reporter_image());
  const Report r = Report::deserialize(
      e.ecall(1, self_report_arg(e.measurement(), "not-for-qe")));
  EXPECT_FALSE(w.platform.quote_via_qe(r).has_value());
}

TEST(Quote, QuotingEnclaveRejectsCrossPlatformReport) {
  // A report generated on host-B cannot be quoted by host-A's QE: report
  // keys are platform-bound.
  World w;
  Platform other(w.authority, "host-B");
  Enclave& e = other.launch(w.vendor, reporter_image());
  const Report r = Report::deserialize(e.ecall(
      1, self_report_arg(Platform::quoting_enclave_measurement(), "x")));
  EXPECT_FALSE(w.platform.quote_via_qe(r).has_value());
}

TEST(Quote, SerializationRoundTrips) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, reporter_image());
  const crypto::Bytes wire = e.ecall(2, crypto::to_bytes("w"));
  EXPECT_EQ(Quote::deserialize(wire).serialize(), wire);
}

}  // namespace
}  // namespace tenet::sgx
