#include "sgx/image.h"

#include <gtest/gtest.h>

#include "sgx/apps.h"

namespace tenet::sgx {
namespace {

TEST(EnclaveImage, MeasurementIsDeterministic) {
  // §4: deterministic builds — same source, same measurement, everywhere.
  const EnclaveImage a = apps::echo_image(0);
  const EnclaveImage b = apps::echo_image(0);
  EXPECT_EQ(a.measure(), b.measure());
}

TEST(EnclaveImage, MeasurementDependsOnEveryCodeByte) {
  EnclaveImage img = apps::echo_image(0);
  const Measurement original = img.measure();
  img.code[img.code.size() / 2] ^= 1;
  EXPECT_NE(img.measure(), original);
}

TEST(EnclaveImage, DifferentVariantsDifferentMeasurement) {
  EXPECT_NE(apps::echo_image(0).measure(), apps::echo_image(1).measure());
}

TEST(EnclaveImage, NameNotPartOfMeasurement) {
  EnclaveImage a = apps::echo_image(0);
  EnclaveImage b = apps::echo_image(0);
  b.name = "renamed";
  EXPECT_EQ(a.measure(), b.measure());
}

TEST(EnclaveImage, PageCountRoundsUp) {
  EnclaveImage img;
  img.code = crypto::Bytes(1, 0);
  EXPECT_EQ(img.page_count(), 1u);
  img.code = crypto::Bytes(kPageSize, 0);
  EXPECT_EQ(img.page_count(), 1u);
  img.code = crypto::Bytes(kPageSize + 1, 0);
  EXPECT_EQ(img.page_count(), 2u);
}

TEST(EnclaveImage, MultiPageImagesMeasureAllPages) {
  EnclaveImage img;
  img.code = crypto::Bytes(3 * kPageSize, 0xab);
  const Measurement m1 = img.measure();
  img.code[2 * kPageSize + 17] ^= 1;  // flip a byte in the third page
  EXPECT_NE(img.measure(), m1);
}

TEST(Vendor, SignatureVerifies) {
  const Vendor tor("tor-foundation");
  const SigStruct s = tor.sign(apps::echo_image(0), /*product_id=*/7);
  EXPECT_TRUE(Vendor::verify(s));
  EXPECT_EQ(s.product_id, 7u);
  EXPECT_EQ(s.mr_enclave, apps::echo_image(0).measure());
}

TEST(Vendor, SignerIdIsStablePerVendor) {
  const Vendor a1("tor-foundation"), a2("tor-foundation"), b("other");
  EXPECT_EQ(a1.signer_id(), a2.signer_id());
  EXPECT_NE(a1.signer_id(), b.signer_id());
  const SigStruct s = a1.sign(apps::echo_image(0), 1);
  EXPECT_EQ(s.mr_signer(), a1.signer_id());
}

TEST(Vendor, TamperedSigStructFailsVerification) {
  const Vendor v("vendor");
  SigStruct s = v.sign(apps::echo_image(0), 1);
  s.mr_enclave[0] ^= 1;
  EXPECT_FALSE(Vendor::verify(s));

  SigStruct s2 = v.sign(apps::echo_image(0), 1);
  s2.security_version += 1;  // SVN upgrade without re-signing
  EXPECT_FALSE(Vendor::verify(s2));
}

TEST(Vendor, SubstitutedKeyFailsVerification) {
  const Vendor good("good"), evil("evil");
  SigStruct s = good.sign(apps::echo_image(0), 1);
  s.vendor_public_key = evil.public_key().serialize();
  EXPECT_FALSE(Vendor::verify(s));
}

TEST(SigStruct, SerializationRoundTrips) {
  const Vendor v("vendor");
  const SigStruct s = v.sign(apps::echo_image(3), 9, /*security_version=*/4);
  const SigStruct r = SigStruct::deserialize(s.serialize());
  EXPECT_EQ(r.mr_enclave, s.mr_enclave);
  EXPECT_EQ(r.vendor_name, "vendor");
  EXPECT_EQ(r.product_id, 9u);
  EXPECT_EQ(r.security_version, 4u);
  EXPECT_TRUE(Vendor::verify(r));
}

}  // namespace
}  // namespace tenet::sgx
