// (Mis)Use-class regression tests (DESIGN.md §15).
//
// Each misuse class from the TEE red-team taxonomy is mounted with the
// sgx::adversary toolkit twice: once against a deliberately vulnerable
// fixture — proving both that the attack works and that the detector
// catches it — and once against the production stack, proving the
// defense holds. A test here failing on a "fixed" build means a defense
// regressed; the fixture half failing means the detector regressed.
//
//   class 1  ocall-arg snoop        OcallSnoop vs EchoApp / LeakyApp
//   class 2  unchecked-bounds ecall BlockStoreApp unchecked vs checked,
//                                   plus the PacketSenderApp batch_size=0
//                                   spin (found by boundary_fuzz)
//   class 3  rollback w/o version   SealedBlobVault vs VersionedStoreApp
//   class 4  attest-before-verify   eager challenger vs ChallengerSession,
//                                   plus the msg1 transcript-binding fix
//                                   (found by boundary_fuzz)

#include <gtest/gtest.h>

#include "crypto/dh.h"
#include "sgx/adversary.h"
#include "sgx/apps.h"
#include "sgx/attestation.h"
#include "sgx/platform.h"
#include "sgx/sealing.h"

namespace tenet::sgx {
namespace {

using apps::AttestFn;

struct World {
  Authority authority;
  Vendor vendor{"misuse-vendor"};
  Platform platform{authority, "misuse-host"};
};

// ---------------------------------------------------------------------------
// Class 1 — secrets leaked via ocall arguments.
// ---------------------------------------------------------------------------

constexpr uint32_t kLeakSealKey = 50;

/// EchoApp plus one entry point that ships the enclave's seal key out
/// through an ocall — the textbook class-1 misuse. The snooping host
/// (which in the threat model sees every ocall payload) must catch it.
class LeakyApp final : public EnclaveApp {
 public:
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            EnclaveEnv& env) override {
    if (fn == kLeakSealKey) {
      // taint-lint: allow(deliberate class-1 fixture — the OcallSnoop
      // test below asserts this exact leak is caught)
      return env.ocall(0x42, env.seal_key(crypto::to_bytes("t")));
    }
    return echo_.handle_call(fn, arg, env);
  }

 private:
  apps::EchoApp echo_;
};

EnclaveImage leaky_image() {
  return EnclaveImage::from_source(
      "misuse-leaky", "tenet misuse fixture: leaky echo v1\n",
      [] { return std::make_unique<LeakyApp>(); });
}

TEST(MisuseOcallSnoop, LeakyEnclaveIsCaught) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, leaky_image());
  adversary::OcallSnoop snoop;
  e.set_ocall_handler(snoop.wrap(
      [](uint32_t, crypto::BytesView) { return crypto::Bytes{}; }));

  // The snoop learns the secret the same way the taint tap does: track
  // the enclave's actual seal key, then watch the boundary.
  const crypto::Bytes key = e.ecall(apps::kEchoSealKey, {});
  ASSERT_EQ(key.size(), 32u);
  snoop.track("seal_key", key);

  e.ecall(kLeakSealKey, {});
  ASSERT_FALSE(snoop.hits().empty());
  EXPECT_EQ(snoop.hits()[0].needle, "seal_key");
  EXPECT_EQ(snoop.hits()[0].code, 0x42u);
}

TEST(MisuseOcallSnoop, ProductionEchoAppLeaksNothing) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  adversary::OcallSnoop snoop;
  e.set_ocall_handler(snoop.wrap(
      [](uint32_t, crypto::BytesView) { return crypto::Bytes{}; }));
  snoop.track("seal_key", e.ecall(apps::kEchoSealKey, {}));

  // Drive every entry point that touches key material or the boundary:
  // seal/unseal derive the key in-enclave; the ocall carries caller data.
  const crypto::Bytes sealed =
      e.ecall(apps::kEchoSeal, crypto::to_bytes("state bytes"));
  e.ecall(apps::kEchoUnseal, sealed);
  e.ecall(apps::kEchoOcall, crypto::to_bytes("host-visible payload"));
  e.ecall(apps::kEchoReverse, crypto::to_bytes("abc"));

  EXPECT_GE(snoop.payloads_observed(), 1u);
  EXPECT_TRUE(snoop.hits().empty());
  // The sealed blob the host stores must not contain the key either.
  EXPECT_EQ(snoop.scan(0xF000, sealed), 0u);
}

// ---------------------------------------------------------------------------
// Class 2 — unchecked host-controlled lengths/offsets in ecall args.
// ---------------------------------------------------------------------------

constexpr uint32_t kReadUnchecked = 1;
constexpr uint32_t kReadChecked = 2;
constexpr size_t kPublicBytes = 32;

/// One contiguous in-enclave buffer: 32 public bytes followed by the
/// 32-byte secret region — the single-allocation layout where a bounds
/// check against the *public* size is the only wall. kReadUnchecked
/// validates the host's (offset, len) against the whole buffer, which is
/// exactly the misuse: an offset past the wall discloses the secret.
class BlockStoreApp final : public EnclaveApp {
 public:
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            EnclaveEnv& env) override {
    if (buf_.empty()) {
      buf_.assign(kPublicBytes, uint8_t{'P'});
      crypto::append(buf_, env.seal_key(crypto::to_bytes("blk")));
    }
    if (fn == kReadChecked) {
      uint32_t off = 0, len = 0;
      try {
        crypto::Reader r(arg);
        off = r.u32();
        len = r.u32();
      } catch (const std::exception&) {
        return {};  // malformed header: clean reject, no fault
      }
      if (uint64_t{off} + len > kPublicBytes) return {};
      return {buf_.begin() + off, buf_.begin() + off + len};
    }
    if (fn == kReadUnchecked) {
      // No try/catch, no wall: trusts the host like pre-hardening code.
      crypto::Reader r(arg);
      const uint32_t off = r.u32();
      const uint32_t len = r.u32();
      if (uint64_t{off} + len > buf_.size()) return {};
      return {buf_.begin() + off, buf_.begin() + off + len};
    }
    return {};
  }

 private:
  crypto::Bytes buf_;
};

EnclaveImage block_store_image() {
  return EnclaveImage::from_source(
      "misuse-blockstore", "tenet misuse fixture: block store v1\n",
      [] { return std::make_unique<BlockStoreApp>(); });
}

crypto::Bytes read_req(uint32_t off, uint32_t len) {
  crypto::Bytes req;
  crypto::append_u32(req, off);
  crypto::append_u32(req, len);
  return req;
}

TEST(MisuseUncheckedBounds, HostOffsetPastTheWallDisclosesSecrets) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, block_store_image());
  e.set_ocall_handler([](uint32_t, crypto::BytesView) {
    return crypto::Bytes{};
  });
  // Warm the buffer and learn the secret region's expected content.
  ASSERT_FALSE(e.ecall(kReadChecked, read_req(0, kPublicBytes)).empty());

  // The attack: offset straight past the public region.
  const crypto::Bytes leaked =
      e.ecall(kReadUnchecked, read_req(kPublicBytes, 32));
  ASSERT_EQ(leaked.size(), 32u);
  // It really is the secret region, not public padding, and the read is
  // stable — a true disclosure primitive, not garbage bytes.
  EXPECT_NE(leaked, crypto::Bytes(32, uint8_t{'P'}));
  EXPECT_EQ(leaked, e.ecall(kReadUnchecked, read_req(kPublicBytes, 32)));

  // The checked entry point holds the wall for the identical request.
  EXPECT_TRUE(e.ecall(kReadChecked, read_req(kPublicBytes, 32)).empty());
  EXPECT_TRUE(e.ecall(kReadChecked, read_req(kPublicBytes - 1, 2)).empty());
}

TEST(MisuseUncheckedBounds, TruncatedHeaderFaultsUncheckedOnly) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, block_store_image());
  e.set_ocall_handler([](uint32_t, crypto::BytesView) {
    return crypto::Bytes{};
  });
  // The unchecked parser lets the parse error escape the ecall (an AEX in
  // the model); the enclave survives but the host observed a fault it
  // fully controls — a crash oracle.
  EXPECT_THROW(e.ecall(kReadUnchecked, crypto::to_bytes("xy")),
               std::exception);
  EXPECT_TRUE(e.alive());
  // The checked parser rejects the same bytes without faulting.
  EXPECT_TRUE(e.ecall(kReadChecked, crypto::to_bytes("xy")).empty());
}

TEST(MisuseUncheckedBounds, DegenerateBatchRequestRejected) {
  // Regression for the boundary_fuzz finding: batched=true, batch_size=0
  // used to make zero progress per loop turn and spin the enclave in an
  // infinite empty-batch ocall storm. The request must be rejected
  // before the first boundary crossing.
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::packet_sender_image());
  size_t ocalls = 0;
  e.set_ocall_handler([&ocalls](uint32_t, crypto::BytesView) {
    ++ocalls;
    return crypto::Bytes{};
  });
  apps::SendRunRequest req;
  req.packet_count = 4;
  req.packet_size = 8;
  req.encrypt = false;
  req.batched = true;
  req.batch_size = 0;
  EXPECT_TRUE(e.ecall(apps::kSendRun, req.serialize()).empty());
  EXPECT_EQ(ocalls, 0u);
}

// ---------------------------------------------------------------------------
// Class 3 — sealed state without a freshness guarantee (rollback).
// ---------------------------------------------------------------------------

TEST(MisuseRollback, UnversionedSealAcceptsStaleState) {
  // The vulnerable half, demonstrated on plain seal_data: the host owns
  // the blob store, every historical version authenticates, so a replay
  // of epoch=1 after epoch=2 unseals cleanly. Sealing alone CANNOT
  // detect rollback — that is the misuse, and why every production
  // consumer must layer a version check on top.
  World w;
  adversary::SealedBlobVault vault;
  Enclave& e1 = w.platform.launch(w.vendor, apps::echo_image());
  vault.store("state", e1.ecall(apps::kEchoSeal, crypto::to_bytes("epoch=1")));
  vault.store("state", e1.ecall(apps::kEchoSeal, crypto::to_bytes("epoch=2")));
  e1.destroy();

  Enclave& e2 = w.platform.launch(w.vendor, apps::echo_image());
  ASSERT_EQ(vault.versions("state"), 2u);
  const crypto::Bytes stale = vault.replay("state", 0);
  EXPECT_EQ(e2.ecall(apps::kEchoUnseal, stale),
            crypto::to_bytes("epoch=1"));  // accepted: the rollback lands
}

constexpr uint32_t kVStore = 1;
constexpr uint32_t kVLoad = 2;

/// The defense fixture: state carries a monotonic version inside the
/// sealed payload and the enclave refuses to load anything older than
/// what it has already seen this lifetime. (Across restarts the trusted
/// high-water mark must come from peers — the sharded control plane's
/// version vectors; shard_group_test covers the rollback-at-join drill.)
class VersionedStoreApp final : public EnclaveApp {
 public:
  crypto::Bytes handle_call(uint32_t fn, crypto::BytesView arg,
                            EnclaveEnv& env) override {
    switch (fn) {
      case kVStore: {
        crypto::Bytes payload;
        crypto::append_u64(payload, ++version_);
        crypto::append_lv(payload, arg);
        return seal_data(env, crypto::to_bytes("vstate"), payload);
      }
      case kVLoad: {
        const auto payload = unseal_data(env, crypto::to_bytes("vstate"), arg);
        if (!payload.has_value()) return {};
        try {
          crypto::Reader r(*payload);
          const uint64_t version = r.u64();
          if (version < version_) return {};  // rollback detected
          version_ = version;
          return r.lv();
        } catch (const std::exception&) {
          return {};
        }
      }
      default:
        return {};
    }
  }

 private:
  uint64_t version_ = 0;
};

EnclaveImage versioned_store_image() {
  return EnclaveImage::from_source(
      "misuse-vstore", "tenet misuse fixture: versioned store v1\n",
      [] { return std::make_unique<VersionedStoreApp>(); });
}

TEST(MisuseRollback, VersionGuardRefusesReplay) {
  World w;
  adversary::SealedBlobVault vault;
  Enclave& e = w.platform.launch(w.vendor, versioned_store_image());
  vault.store("v", e.ecall(kVStore, crypto::to_bytes("epoch=1")));
  vault.store("v", e.ecall(kVStore, crypto::to_bytes("epoch=2")));

  // Loading the latest version succeeds and advances the high-water mark.
  EXPECT_EQ(e.ecall(kVLoad, vault.latest("v")), crypto::to_bytes("epoch=2"));
  // The replayed older blob authenticates but is refused.
  EXPECT_TRUE(e.ecall(kVLoad, vault.replay("v", 0)).empty());
  // And the current state remains loadable: the guard is not a lockout.
  EXPECT_EQ(e.ecall(kVLoad, vault.latest("v")), crypto::to_bytes("epoch=2"));
}

// ---------------------------------------------------------------------------
// Class 4 — acting on attestation evidence before verifying it.
// ---------------------------------------------------------------------------

TEST(MisuseAttestBeforeVerify, EagerChallengerPairsWithMitm) {
  // The vulnerable half, modeled outside the enclave API: an "eager"
  // challenger that does the DH math straight off msg2 and derives a
  // session key WITHOUT verifying the quote. A MITM who substitutes its
  // own DH value and a forged quote ends up sharing that key.
  Authority authority;
  crypto::Drbg rng = crypto::Drbg::from_label(7, "tenet.misuse.attest");
  const crypto::DhGroup& group = crypto::DhGroup::oakley_group2();

  const crypto::Bytes nonce = rng.bytes(32);
  const crypto::DhKeyPair eager_dh(group, rng);

  // The attacker's msg2: own DH public value, fabricated evidence.
  const crypto::DhKeyPair mitm_dh(group, rng);
  const Measurement claimed =
      crypto::Sha256::hash(crypto::to_bytes("whatever-the-policy-wants"));
  const Quote forged = adversary::forge_quote(
      claimed, claimed, /*claimed_platform=*/999,
      make_report_data(crypto::to_bytes("unbound")));
  crypto::Bytes msg2;
  crypto::append(msg2, crypto::to_bytes("ATT2"));
  crypto::append_lv(msg2, forged.serialize());
  crypto::append_lv(msg2, mitm_dh.public_bytes());

  // Eager fixture: parse, DH, derive, use. No verify_quote anywhere.
  crypto::Reader r(msg2);
  r.take(4);
  (void)r.lv();  // "checks later", i.e. never
  const crypto::Bytes peer_pub = r.lv();
  const crypto::Bytes eager_key = detail::derive_session_key(
      eager_dh.shared_secret(crypto::BytesView(peer_pub)), nonce, "chan", 32);

  const crypto::Bytes mitm_key = detail::derive_session_key(
      mitm_dh.shared_secret(crypto::BytesView(eager_dh.public_bytes())), nonce,
      "chan", 32);
  EXPECT_EQ(eager_key, mitm_key);  // the attack lands on the fixture

  // The production ChallengerSession fails closed on the same msg2: the
  // forged quote is rejected, and the session key is simply unreachable
  // before a successful verify.
  AttestationConfig cfg;
  cfg.expect.expect_enclave(claimed);
  ChallengerSession session(authority, cfg, rng);
  (void)session.create_challenge();
  const AttestationOutcome out = session.consume_response(msg2);
  EXPECT_FALSE(out.ok);
  EXPECT_FALSE(session.established());
  EXPECT_THROW((void)session.session_key("chan"), std::logic_error);
}

/// Figure-1 cast used by the wire-tampering tests below.
struct AttestWorld {
  AttestWorld() {
    config.expect.expect_enclave(
        apps::target_image(authority, config).measure());
    challenger = &challenger_platform.launch(
        vendor, apps::challenger_image(authority, config));
    target =
        &target_platform.launch(vendor, apps::target_image(authority, config));
  }

  Authority authority;
  Vendor vendor{"app-vendor"};
  AttestationConfig config;
  Platform challenger_platform{authority, "challenger-host"};
  Platform target_platform{authority, "target-host"};
  Enclave* challenger = nullptr;
  Enclave* target = nullptr;
};

TEST(MisuseAttestBeforeVerify, SplicedReportDataRejected) {
  // Session-splicing MITM: replay a genuine, authority-signed quote with
  // substituted REPORTDATA. Consumers that skip the binding check accept
  // it; ChallengerSession must not.
  AttestWorld w;
  const crypto::Bytes msg1 = w.challenger->ecall(AttestFn::kCreateChallenge, {});
  const crypto::Bytes msg2 = w.target->ecall(AttestFn::kHandleChallenge, msg1);
  ASSERT_FALSE(msg2.empty());

  crypto::Reader r(msg2);
  r.take(4);
  const Quote genuine = Quote::deserialize(r.lv());
  const crypto::Bytes dh_pub = r.lv();
  const Quote spliced = adversary::splice_report_data(
      genuine, make_report_data(crypto::to_bytes("attacker session")));

  crypto::Bytes tampered;
  crypto::append(tampered, crypto::to_bytes("ATT2"));
  crypto::append_lv(tampered, spliced.serialize());
  crypto::append_lv(tampered, dh_pub);

  const crypto::Bytes result =
      w.challenger->ecall(AttestFn::kConsumeResponse, tampered);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result[0], 0);  // rejected
}

TEST(MisuseAttestBeforeVerify, FlippedReservedFlagBitFailsClosed) {
  // Regression for the boundary_fuzz finding: a bit flipped in msg1's
  // reserved flag bits used to survive the whole handshake — the quote
  // binding covered only the nonce, so nothing tied the rest of the
  // challenge bytes down. With transcript binding the two sides' hashes
  // diverge and the handshake must fail closed.
  AttestWorld w;
  crypto::Bytes msg1 = w.challenger->ecall(AttestFn::kCreateChallenge, {});
  ASSERT_GT(msg1.size(), 4u);
  msg1[4] ^= 0x80;  // flags byte follows the 4-byte tag; 0x80 is reserved

  const crypto::Bytes msg2 = w.target->ecall(AttestFn::kHandleChallenge, msg1);
  if (!msg2.empty()) {
    const crypto::Bytes result =
        w.challenger->ecall(AttestFn::kConsumeResponse, msg2);
    ASSERT_FALSE(result.empty());
    EXPECT_EQ(result[0], 0) << "bit-flipped challenge was accepted";
  }
  // Either way, no shared key can exist for the mutated transcript.
  EXPECT_TRUE(w.challenger->ecall(AttestFn::kGetSessionKey,
                                  crypto::to_bytes("chan"))
                  .empty());
}

}  // namespace
}  // namespace tenet::sgx
