#include "sgx/sealing.h"

#include <gtest/gtest.h>

#include "sgx/apps.h"
#include "sgx/platform.h"

namespace tenet::sgx {
namespace {

struct World {
  Authority authority;
  Vendor vendor{"seal-vendor"};
  Platform platform{authority, "seal-host"};
};

TEST(Sealing, RoundTripWithinSameEnclave) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  const crypto::Bytes secret = crypto::to_bytes("directory authority keys");
  const crypto::Bytes sealed = e.ecall(apps::kEchoSeal, secret);
  EXPECT_NE(sealed, secret);
  EXPECT_EQ(e.ecall(apps::kEchoUnseal, sealed), secret);
}

TEST(Sealing, SurvivesEnclaveRestart) {
  // The whole point: seal, destroy the enclave, relaunch the SAME build on
  // the SAME platform, unseal.
  World w;
  Enclave& e1 = w.platform.launch(w.vendor, apps::echo_image());
  const crypto::Bytes secret = crypto::to_bytes("relay list v42");
  const crypto::Bytes sealed = e1.ecall(apps::kEchoSeal, secret);
  e1.destroy();

  Enclave& e2 = w.platform.launch(w.vendor, apps::echo_image());
  EXPECT_EQ(e2.ecall(apps::kEchoUnseal, sealed), secret);
}

TEST(Sealing, OtherEnclaveIdentityCannotUnseal) {
  World w;
  Enclave& original = w.platform.launch(w.vendor, apps::echo_image(0));
  Enclave& other = w.platform.launch(w.vendor, apps::echo_image(1));
  const crypto::Bytes sealed =
      original.ecall(apps::kEchoSeal, crypto::to_bytes("mine"));
  EXPECT_TRUE(other.ecall(apps::kEchoUnseal, sealed).empty());
}

TEST(Sealing, OtherPlatformCannotUnseal) {
  World w;
  Platform other(w.authority, "other-host");
  Enclave& e1 = w.platform.launch(w.vendor, apps::echo_image());
  Enclave& e2 = other.launch(w.vendor, apps::echo_image());
  const crypto::Bytes sealed =
      e1.ecall(apps::kEchoSeal, crypto::to_bytes("local only"));
  EXPECT_TRUE(e2.ecall(apps::kEchoUnseal, sealed).empty());
}

TEST(Sealing, TamperedBlobRejected) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  crypto::Bytes sealed = e.ecall(apps::kEchoSeal, crypto::to_bytes("x"));
  for (size_t i = 0; i < sealed.size(); i += 7) {
    crypto::Bytes bad = sealed;
    bad[i] ^= 1;
    EXPECT_TRUE(e.ecall(apps::kEchoUnseal, bad).empty()) << "byte " << i;
  }
}

TEST(Sealing, HostSeesOnlyCiphertext) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  const crypto::Bytes secret = crypto::to_bytes("the onion private key bytes");
  const crypto::Bytes sealed = e.ecall(apps::kEchoSeal, secret);
  EXPECT_EQ(std::search(sealed.begin(), sealed.end(), secret.begin(),
                        secret.end()),
            sealed.end());
}

TEST(Sealing, RepeatedSealsOfSamePlaintextDiffer) {
  // Per-blob random nonce: identical state does not leak equality.
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  const crypto::Bytes secret = crypto::to_bytes("same state");
  EXPECT_NE(e.ecall(apps::kEchoSeal, secret), e.ecall(apps::kEchoSeal, secret));
}

TEST(Sealing, EmptyPlaintextRoundTrips) {
  World w;
  Enclave& e = w.platform.launch(w.vendor, apps::echo_image());
  const crypto::Bytes sealed = e.ecall(apps::kEchoSeal, {});
  EXPECT_FALSE(sealed.empty());  // header+tag present
  EXPECT_TRUE(e.ecall(apps::kEchoUnseal, sealed).empty());
}

}  // namespace
}  // namespace tenet::sgx
