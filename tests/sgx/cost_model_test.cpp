#include "sgx/cost_model.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace tenet::sgx {
namespace {

TEST(CostModel, StartsAtZero) {
  const CostModel m;
  EXPECT_EQ(m.sgx_user_instructions(), 0u);
  EXPECT_EQ(m.sgx_priv_instructions(), 0u);
  EXPECT_EQ(m.normal_instructions(), 0u);
  EXPECT_EQ(m.cycles(), 0.0);
}

TEST(CostModel, SgxInstructionAccounting) {
  CostModel m;
  m.charge_user(UserInstr::kEEnter);
  m.charge_user(UserInstr::kEExit);
  m.charge_user(UserInstr::kEResume, 3);
  m.charge_priv(PrivInstr::kEAdd, 10);
  EXPECT_EQ(m.sgx_user_instructions(), 5u);
  EXPECT_EQ(m.sgx_priv_instructions(), 10u);
  // Privileged instructions never leak into the SGX(U) column.
  EXPECT_EQ(m.normal_instructions(), 0u);
}

TEST(CostModel, CyclesFormulaMatchesPaper) {
  // cycles = 10'000 * SGX(U) + normal / IPC, with IPC = 1.8 (§5).
  CostModel m;
  m.charge_user(UserInstr::kEEnter, 8);
  m.charge_normal(1'800'000);
  EXPECT_DOUBLE_EQ(m.cycles(), 8 * 10'000 + 1'800'000 / 1.8);
}

TEST(CostModel, BoundaryAndContextCharges) {
  CostModel m;
  m.charge_boundary_bytes(100);
  const uint64_t rate = m.constants().boundary_bytes_per_instr;
  EXPECT_EQ(m.normal_instructions(), (100 + rate - 1) / rate);
  const uint64_t before = m.normal_instructions();
  m.charge_context_switch();
  EXPECT_EQ(m.normal_instructions(), before + m.constants().per_context_switch);
}

TEST(CostModel, CryptoWorkIsConverted) {
  CostModel m;
  {
    CostScope scope(m);
    (void)crypto::Sha256::hash(crypto::Bytes(64, 0));  // 1 data + 1 pad block
  }
  EXPECT_EQ(m.normal_instructions(), 2 * m.constants().per_sha256_block);
}

TEST(CostModel, WorkOutsideScopeNotCharged) {
  CostModel m;
  (void)crypto::Sha256::hash(crypto::Bytes(64, 0));
  EXPECT_EQ(m.normal_instructions(), 0u);
}

TEST(CostModel, NestedScopesRestorePrevious) {
  CostModel outer, inner;
  {
    CostScope a(outer);
    {
      CostScope b(inner);
      (void)crypto::Sha256::hash(crypto::Bytes(1, 0));
    }
    (void)crypto::Sha256::hash(crypto::Bytes(1, 0));
  }
  EXPECT_EQ(inner.normal_instructions(), outer.normal_instructions());
  EXPECT_GT(outer.normal_instructions(), 0u);
}

TEST(CostModel, SnapshotDelta) {
  CostModel m;
  m.charge_user(UserInstr::kEEnter);
  m.charge_normal(50);
  const auto snap = m.snapshot();
  m.charge_user(UserInstr::kEExit, 2);
  m.charge_normal(25);
  const auto d = m.delta(snap);
  EXPECT_EQ(d.sgx_user, 2u);
  EXPECT_EQ(d.normal, 25u);
  EXPECT_DOUBLE_EQ(m.cycles_of(d), 2 * 10'000 + 25 / 1.8);
}

TEST(CostModel, ResetClearsEverything) {
  CostModel m;
  m.charge_user(UserInstr::kEEnter);
  m.charge_normal(10);
  {
    CostScope s(m);
    (void)crypto::Sha256::hash(crypto::Bytes(10, 1));
  }
  m.reset();
  EXPECT_EQ(m.sgx_user_instructions(), 0u);
  EXPECT_EQ(m.normal_instructions(), 0u);
}

TEST(CostModel, InstrNamesForReporting) {
  EXPECT_STREQ(to_string(UserInstr::kEEnter), "EENTER");
  EXPECT_STREQ(to_string(UserInstr::kEGetKey), "EGETKEY");
  EXPECT_STREQ(to_string(PrivInstr::kECreate), "ECREATE");
  EXPECT_STREQ(to_string(PrivInstr::kEAug), "EAUG");
}

}  // namespace
}  // namespace tenet::sgx
