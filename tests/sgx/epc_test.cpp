#include "sgx/epc.h"

#include <gtest/gtest.h>

namespace tenet::sgx {
namespace {

crypto::Bytes mee_key() { return crypto::Bytes(32, 0x5a); }

TEST(Epc, AddAndReadBackPage) {
  Epc epc(mee_key());
  const crypto::Bytes content = crypto::to_bytes("enclave code page");
  epc.add_page(1, 0, content);
  const crypto::Bytes page = epc.read_page(1, 0);
  ASSERT_EQ(page.size(), kPageSize);
  EXPECT_TRUE(std::equal(content.begin(), content.end(), page.begin()));
  EXPECT_EQ(epc.pages_in_use(), 1u);
}

TEST(Epc, PagesArePaddedToPageSize) {
  Epc epc(mee_key());
  epc.add_page(1, 0, crypto::Bytes{1, 2, 3});
  const crypto::Bytes page = epc.read_page(1, 0);
  EXPECT_EQ(page.size(), kPageSize);
  EXPECT_EQ(page[3], 0);
}

TEST(Epc, RejectsDuplicateMapping) {
  Epc epc(mee_key());
  epc.add_page(1, 0, {});
  EXPECT_THROW(epc.add_page(1, 0, {}), HardwareFault);
}

TEST(Epc, RejectsOversizedPage) {
  Epc epc(mee_key());
  EXPECT_THROW(epc.add_page(1, 0, crypto::Bytes(kPageSize + 1, 0)),
               HardwareFault);
}

TEST(Epc, CapacityPressureSpillsInsteadOfFailing) {
  // With EWB/ELDU paging, a full EPC evicts rather than refusing: the
  // third page maps fine, and at most two stay resident.
  Epc epc(mee_key(), /*capacity_pages=*/2);
  epc.add_page(1, 0, {});
  epc.add_page(1, 1, {});
  EXPECT_NO_THROW(epc.add_page(1, 2, {}));
  EXPECT_LE(epc.pages_in_use(), 2u);
  EXPECT_EQ(epc.pages_of(1), 3u);
}

TEST(Epc, UnmappedAccessFaults) {
  Epc epc(mee_key());
  EXPECT_THROW((void)epc.read_page(1, 0), HardwareFault);
  EXPECT_THROW(epc.write_page(1, 0, {}), HardwareFault);
}

TEST(Epc, WriteUpdatesContent) {
  Epc epc(mee_key());
  epc.add_page(1, 0, crypto::to_bytes("before"));
  epc.write_page(1, 0, crypto::to_bytes("after!"));
  const crypto::Bytes page = epc.read_page(1, 0);
  EXPECT_TRUE(std::equal(page.begin(), page.begin() + 6,
                         crypto::to_bytes("after!").begin()));
}

TEST(Epc, RemoveEnclaveFreesOnlyItsPages) {
  Epc epc(mee_key());
  epc.add_page(1, 0, {});
  epc.add_page(1, 1, {});
  epc.add_page(2, 0, {});
  epc.remove_enclave(1);
  EXPECT_EQ(epc.pages_in_use(), 1u);
  EXPECT_EQ(epc.pages_of(1), 0u);
  EXPECT_EQ(epc.pages_of(2), 1u);
  EXPECT_NO_THROW((void)epc.read_page(2, 0));
}

TEST(Epc, AdversaryReadSeesOnlyCiphertext) {
  Epc epc(mee_key());
  const crypto::Bytes secret = crypto::to_bytes("routing policy: prefer AS42");
  epc.add_page(7, 0, secret);
  const auto ct = epc.adversary_read_ciphertext(7, 0);
  ASSERT_TRUE(ct.has_value());
  // The plaintext must not appear anywhere in what the OS can read.
  const auto it = std::search(ct->begin(), ct->end(), secret.begin(), secret.end());
  EXPECT_EQ(it, ct->end());
  EXPECT_FALSE(epc.adversary_read_ciphertext(7, 99).has_value());
}

TEST(Epc, AdversaryCorruptionDetectedOnRead) {
  Epc epc(mee_key());
  epc.add_page(7, 0, crypto::to_bytes("integrity-protected"));
  ASSERT_TRUE(epc.adversary_corrupt(7, 0, /*byte_offset=*/100));
  EXPECT_THROW((void)epc.read_page(7, 0), HardwareFault);
  EXPECT_THROW(epc.verify_owner_pages(7), HardwareFault);
}

TEST(Epc, CorruptionOfOtherEnclaveDoesNotAffectVictim) {
  Epc epc(mee_key());
  epc.add_page(1, 0, crypto::to_bytes("victim"));
  epc.add_page(2, 0, crypto::to_bytes("other"));
  ASSERT_TRUE(epc.adversary_corrupt(2, 0, 5));
  EXPECT_NO_THROW(epc.verify_owner_pages(1));
  EXPECT_THROW(epc.verify_owner_pages(2), HardwareFault);
}

TEST(Epc, VerifyCleanPagesPasses) {
  Epc epc(mee_key());
  for (uint64_t v = 0; v < 8; ++v) epc.add_page(3, v, {});
  EXPECT_NO_THROW(epc.verify_owner_pages(3));
}

TEST(Epc, PressureFaultNamesTheRequestingEnclave) {
  // An EPC with no evictable room at all: the pressure fault is a typed
  // error carrying WHICH enclave's request could not be satisfied, so
  // hosts can kill/restart the right tenant instead of guessing.
  Epc epc(mee_key(), /*capacity_pages=*/0);
  try {
    epc.add_page(/*owner=*/42, /*vaddr=*/0, crypto::to_bytes("page"));
    FAIL() << "expected EpcPressureError";
  } catch (const EpcPressureError& e) {
    EXPECT_EQ(e.requester(), 42u);
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos);
  }
}

TEST(Epc, PressureFaultIsStillAHardwareFault) {
  // Existing callers that only know HardwareFault keep working.
  Epc epc(mee_key(), /*capacity_pages=*/0);
  EXPECT_THROW(epc.add_page(7, 0, {}), HardwareFault);
}

TEST(Epc, DifferentMeeKeysProduceDifferentCiphertext) {
  Epc a(crypto::Bytes(32, 1));
  Epc b(crypto::Bytes(32, 2));
  const crypto::Bytes content = crypto::to_bytes("same plaintext");
  a.add_page(1, 0, content);
  b.add_page(1, 0, content);
  EXPECT_NE(*a.adversary_read_ciphertext(1, 0), *b.adversary_read_ciphertext(1, 0));
}

}  // namespace
}  // namespace tenet::sgx
