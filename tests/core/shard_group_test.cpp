// Sharded, replicated enclave control plane (DESIGN.md §14). The four
// acceptance properties pinned here:
//   1. a 1-shard configured group is byte-identical on the wire to an
//      unsharded run under the same seed (sharding costs nothing until a
//      second replica exists);
//   2. killing a shard mid-deployment and rejoining it later loses no
//      admitted state (replication + re-forwarding + attested rejoin);
//   3. a patched (wrong-measurement) replica is rejected at the state
//      transfer layer even when the app's attestation policy admits it;
//   4. a rolled-back sealed snapshot (stale version vector) is refused by
//      a joiner that provably observed more.
// Plus the split-brain drill on the net.fault.partition primitive: the
// minority side fails closed while the majority keeps admitting.
#include "core/shard_group.h"

#include <gtest/gtest.h>

#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"
#include "routing/scenario.h"

namespace tenet::core {
namespace {

// ---------------------------------------------------------------------------
// Ledger harness: a minimal SecureApp whose admitted state is a key->blob
// map, replicated through a shard group. Exercises the replica protocol
// without the routing/Tor/mbox application logic on top.
// ---------------------------------------------------------------------------

enum LedgerControl : uint32_t {
  kLedgerConfigure = 1,  // serialized ShardConfig
  kLedgerAdmit = 2,      // u64 key | LV entry -> u8 admitted
  kLedgerCount = 3,      // -> u64
  kLedgerJoin = 4,       // empty (begin_join)
  kLedgerReachable = 5,  // u32 shard | u8 up
  kLedgerEntries = 6,    // -> u32 n | (u64 key | LV entry)...
  kLedgerInject = 100,   // u32 peer | LV frame -> u8 consumed (red-team)
};

class LedgerApp final : public SecureApp {
 public:
  using SecureApp::SecureApp;

  void on_secure_message(Ctx&, netsim::NodeId, crypto::BytesView) override {}

  crypto::Bytes on_control(Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    switch (subfn) {
      case kLedgerConfigure: {
        ShardReplica::Hooks hooks;
        hooks.apply = [this](Ctx& c, uint32_t, uint64_t key,
                             crypto::BytesView entry) {
          c.alloc(entry.size());
          entries_[key] = crypto::Bytes(entry.begin(), entry.end());
        };
        hooks.snapshot = [this](Ctx&) { return serialize(); };
        // Merge semantics per the install contract: union the donor's
        // entries into ours (load() inserts without clearing).
        hooks.install = [this](Ctx&, crypto::BytesView state) {
          return load(state);
        };
        enable_sharding(ctx, ShardConfig::deserialize(arg), std::move(hooks));
        return {};
      }
      case kLedgerAdmit: {
        crypto::Reader r(arg);
        const uint64_t key = r.u64();
        const crypto::BytesView entry = r.lv_view();
        crypto::Bytes out;
        if (shard() != nullptr && shard()->active() && !shard()->serving()) {
          out.push_back(0);  // minority partition: fail closed
          return out;
        }
        if (shard() != nullptr && shard()->active()) {
          shard()->admit(ctx, key, entry);
        }
        ctx.alloc(entry.size());
        entries_[key] = crypto::Bytes(entry.begin(), entry.end());
        out.push_back(1);
        return out;
      }
      case kLedgerCount: {
        crypto::Bytes out;
        crypto::append_u64(out, entries_.size());
        return out;
      }
      case kLedgerJoin:
        if (shard() != nullptr) shard()->begin_join(ctx);
        return {};
      case kLedgerReachable:
        if (shard() != nullptr && arg.size() >= 5) {
          shard()->set_reachable(ctx, crypto::read_u32(arg, 0), arg[4] != 0);
        }
        return {};
      case kLedgerEntries:
        return serialize();
      case kLedgerInject: {
        // Red-team control port (mirrors the boundary fuzzer's): hands an
        // arbitrary byte string to ShardReplica::handle_secure as if it
        // had arrived authenticated from `peer` — the post-decryption
        // hostile-frame surface, with the transport layer bypassed.
        crypto::Reader r(arg);
        const netsim::NodeId peer = r.u32();
        const crypto::BytesView frame = r.lv_view();
        crypto::Bytes out;
        out.push_back(
            shard() != nullptr && shard()->handle_secure(ctx, peer, frame)
                ? 1
                : 0);
        return out;
      }
      default:
        return {};
    }
  }

  crypto::Bytes on_checkpoint(Ctx&) override { return serialize(); }
  void on_restore(Ctx&, crypto::BytesView state) override { (void)load(state); }

 private:
  [[nodiscard]] crypto::Bytes serialize() const {
    crypto::Bytes out;
    crypto::append_u32(out, static_cast<uint32_t>(entries_.size()));
    for (const auto& [key, entry] : entries_) {
      crypto::append_u64(out, key);
      crypto::append_lv(out, entry);
    }
    return out;
  }
  bool load(crypto::BytesView state) {
    try {
      crypto::Reader r(state);
      const uint32_t n = r.u32();
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t key = r.u64();
        entries_[key] = r.lv();
      }
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }

  std::map<uint64_t, crypto::Bytes> entries_;
};

crypto::Bytes shard_cfg(uint32_t self, const std::vector<ShardMember>& members,
                        uint32_t replication = 2) {
  ShardConfig cfg;
  cfg.self = self;
  cfg.replication = replication;
  cfg.members = members;
  return cfg.serialize();
}

crypto::Bytes admit_arg(uint64_t key, std::string_view entry) {
  crypto::Bytes arg;
  crypto::append_u64(arg, key);
  crypto::append_lv(arg, crypto::to_bytes(entry));
  return arg;
}

bool admit(EnclaveNode& node, uint64_t key, std::string_view entry) {
  const crypto::Bytes out = node.control(kLedgerAdmit, admit_arg(key, entry));
  return !out.empty() && out[0] == 1;
}

uint64_t entry_count(EnclaveNode& node) {
  return crypto::read_u64(node.control(kLedgerCount), 0);
}

/// N ledger replicas on one simulator, all built from the same project.
struct LedgerWorld {
  explicit LedgerWorld(size_t n, uint64_t seed = 1)
      : sim(seed), project("ledger", "tenet ledger app v1\n", nullptr) {
    const sgx::AttestationConfig cfg = project.policy(/*mutual=*/true);
    const sgx::Authority* auth = &authority;
    sgx::EnclaveImage image = project.build();
    image.factory = [auth, cfg] {
      return std::make_unique<LedgerApp>(*auth, cfg);
    };
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<EnclaveNode>(
          sim, authority, "ledger-" + std::to_string(i),
          project.foundation(), image));
      nodes.back()->start();
      members.push_back(
          ShardMember{static_cast<uint32_t>(i), nodes.back()->id()});
    }
  }

  /// Pushes the shard config to every replica and runs ring attestation.
  void configure() {
    for (size_t i = 0; i < nodes.size(); ++i) {
      nodes[i]->control(kLedgerConfigure,
                        shard_cfg(static_cast<uint32_t>(i), members));
    }
    sim.run();
  }

  void hint(size_t node, uint32_t shard, bool up) {
    crypto::Bytes arg;
    crypto::append_u32(arg, shard);
    arg.push_back(up ? 1 : 0);
    nodes[node]->control(kLedgerReachable, arg);
  }

  netsim::Simulator sim;
  sgx::Authority authority;
  OpenProject project;
  std::vector<std::unique_ptr<EnclaveNode>> nodes;
  std::vector<ShardMember> members;
};

// ---------------------------------------------------------------------------
// ShardMap: placement is deterministic and actually spreads small keys
// ---------------------------------------------------------------------------

TEST(ShardMapPlacement, SmallKeysSpreadAcrossShards) {
  // Regression: ring points are mix64((shard << 32) | v), so unsalted key
  // hashing collided exactly with shard 0's virtual nodes for every key
  // < kVirtualNodes — pinning all ASNs/node ids/session ids to shard 0.
  const std::vector<ShardMember> members = {{0, 100}, {1, 101}, {2, 102}};
  const ShardMap map(members);
  std::map<uint32_t, size_t> hits;
  for (uint64_t key = 1; key <= 64; ++key) ++hits[map.owner(key)];
  EXPECT_EQ(hits.size(), members.size()) << "some shard owns no small key";
  for (const auto& [shard, n] : hits) {
    EXPECT_LT(n, 64u) << "shard " << shard << " owns every key";
  }
}

TEST(ShardMapPlacement, RouterAndReplicasAgree) {
  const std::vector<ShardMember> members = {{0, 100}, {1, 101}, {2, 102}};
  const ShardMap map(members);
  const ShardRouter router{ShardMap(members)};
  for (uint64_t key = 1; key <= 200; ++key) {
    EXPECT_EQ(router.route_shard(key), map.owner(key)) << "key " << key;
    EXPECT_EQ(router.route(key), map.node(map.owner(key)));
  }
}

TEST(ShardMapPlacement, DownShardFallsBackToSuccessorOrder) {
  // The router's fallback direction must equal the replication direction:
  // the successor shard is exactly the one holding the replica.
  const std::vector<ShardMember> members = {{0, 100}, {1, 101}, {2, 102}};
  const ShardMap map(members);
  ShardRouter router{ShardMap(members)};
  for (uint64_t key = 1; key <= 50; ++key) {
    const uint32_t home = map.owner(key);
    router.set_down(home, true);
    EXPECT_EQ(router.route_shard(key), map.successor(home)) << "key " << key;
    router.set_down(home, false);
  }
}

// ---------------------------------------------------------------------------
// 1. Single-shard byte-identity
// ---------------------------------------------------------------------------

struct WireRecord {
  netsim::NodeId src;
  netsim::NodeId dst;
  uint32_t port;
  crypto::Bytes payload;
  bool operator==(const WireRecord&) const = default;
};

std::vector<WireRecord> run_routing_wiretap(bool configure_one_shard) {
  routing::ScenarioConfig cfg;
  cfg.n_ases = 6;
  cfg.seed = 2015;
  routing::RoutingDeployment dep(cfg);
  if (configure_one_shard) {
    // A 1-member group, configured by hand (the scenario only pushes a
    // config when shards > 1). It must be completely inert.
    dep.controller_node()->control(
        routing::kCtlConfigureShard,
        shard_cfg(0, {ShardMember{0, dep.controller_node()->id()}}));
  }
  std::vector<WireRecord> wire;
  dep.sim().set_wiretap([&wire](const netsim::Message& m) {
    wire.push_back(WireRecord{m.src, m.dst, m.port, m.payload});
  });
  dep.run_attestation_phase();
  dep.run_routing_phase();
  return wire;
}

TEST(ShardGroup, SingleShardConfiguredRunIsByteIdenticalToUnsharded) {
  const std::vector<WireRecord> plain = run_routing_wiretap(false);
  const std::vector<WireRecord> sharded = run_routing_wiretap(true);
  ASSERT_FALSE(plain.empty());
  ASSERT_EQ(plain.size(), sharded.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], sharded[i]) << "wire message " << i << " diverged";
  }
}

// ---------------------------------------------------------------------------
// 2. Kill-and-rejoin loses no admitted state (full routing deployment)
// ---------------------------------------------------------------------------

TEST(ShardGroup, KillAndRejoinLosesNoAdmittedState) {
  routing::ScenarioConfig cfg;
  cfg.n_ases = 12;
  cfg.seed = 5;
  cfg.shards = 3;
  cfg.robust = true;  // ASes re-attest + re-submit after failover on their own
  routing::RoutingDeployment dep(cfg);
  dep.run_attestation_phase();
  dep.run_routing_phase();

  const routing::ComputationResult expected =
      routing::BgpComputation::compute(dep.policies());
  const auto tables_match = [&] {
    for (const auto& [asn, policy] : dep.policies()) {
      const routing::RoutingTable table = dep.table_of(asn);
      const auto it = expected.tables.find(asn);
      ASSERT_NE(it, expected.tables.end());
      ASSERT_EQ(table.size(), it->second.size()) << "AS " << asn;
      for (const auto& [prefix, route] : table) {
        EXPECT_EQ(route.as_path, it->second.at(prefix).as_path)
            << "AS " << asn << " prefix " << prefix;
      }
    }
  };
  tables_match();

  // Kill a non-owner shard that actually fronts at least one AS, so the
  // drill moves real clients and real admitted state.
  size_t victim = 0;
  for (size_t s = 1; s < dep.shard_count() && victim == 0; ++s) {
    for (const auto& [asn, policy] : dep.policies()) {
      if (dep.shard_of_as(asn) == s) {
        victim = s;
        break;
      }
    }
  }
  ASSERT_NE(victim, 0u) << "no extra shard fronts an AS at this seed";

  ASSERT_TRUE(dep.kill_shard(victim));
  dep.sim().run();

  // Zero admitted-state loss: the aggregation owner still holds every
  // policy, stays serving (2-of-3 majority), and every AS — including the
  // re-pointed ones — still resolves the exact same routing tables.
  EXPECT_EQ(crypto::read_u64(
                dep.shard_node(0)->control(routing::kCtlPoliciesReceived), 0),
            cfg.n_ases);
  EXPECT_EQ(dep.shard_node(0)->query(kQueryShardServing), 1u);
  for (const auto& [asn, policy] : dep.policies()) {
    EXPECT_TRUE(dep.as_has_routes(asn)) << "AS " << asn;
  }
  tables_match();

  // Rejoin: recovered from image + sealed checkpoint, attested state
  // transfer brings the replica back to the full picture.
  ASSERT_TRUE(dep.heal_shard(victim));
  dep.sim().run();

  core::EnclaveNode* healed = dep.shard_node(victim);
  EXPECT_EQ(healed->query(kQueryShardJoined), 1u);
  EXPECT_EQ(healed->query(kQueryShardRollbacksRefused), 0u);
  EXPECT_EQ(crypto::read_u64(
                healed->control(routing::kCtlPoliciesReceived), 0),
            cfg.n_ases);
  EXPECT_EQ(healed->query(kQueryShardServing), 1u);
  tables_match();
}

// ---------------------------------------------------------------------------
// 3. Patched replica rejected at attested state transfer
// ---------------------------------------------------------------------------

TEST(ShardGroup, PatchedReplicaGetsNoStateDespiteLooseAttestationPolicy) {
  netsim::Simulator sim(/*seed=*/3);
  sgx::Authority authority;
  OpenProject genuine("ledger", "tenet ledger app v1\n", nullptr);
  OpenProject patched("ledger-patched",
                      "tenet ledger app v1 (patched: exfiltrates entries)\n",
                      nullptr);
  ASSERT_FALSE(genuine.measurement() == patched.measurement());

  // Deliberately loose app-level policy: it admits BOTH builds (and drops
  // the signer pin), modeling a host that slipped a patched binary past a
  // sloppy attestation config.
  sgx::AttestationConfig loose = genuine.policy(/*mutual=*/true);
  loose.expect.also_accept(patched.measurement());
  loose.expect.mr_signer.reset();
  const sgx::Authority* auth = &authority;
  const auto factory = [auth, loose] {
    return std::make_unique<LedgerApp>(*auth, loose);
  };
  sgx::EnclaveImage gimage = genuine.build();
  gimage.factory = factory;
  sgx::EnclaveImage pimage = patched.build();
  pimage.factory = factory;

  EnclaveNode g(sim, authority, "genuine", genuine.foundation(), gimage);
  EnclaveNode p(sim, authority, "patched", patched.foundation(), pimage);
  g.start();
  p.start();

  const std::vector<ShardMember> members = {ShardMember{0, g.id()},
                                            ShardMember{1, p.id()}};
  g.control(kLedgerConfigure, shard_cfg(0, members));
  p.control(kLedgerConfigure, shard_cfg(1, members));
  sim.run();

  // Attestation itself succeeds (the loose policy admits the patched
  // measurement)...
  ASSERT_EQ(g.query(kQueryAttestedPeerCount), 1u);
  ASSERT_EQ(p.query(kQueryAttestedPeerCount), 1u);

  // ...but replication refuses to cross the measurement boundary: the
  // patched replica drops the genuine shard's append (not its image), so
  // no admitted entry ever lands there.
  EXPECT_TRUE(admit(g, 7, "route-7"));
  sim.run();
  EXPECT_EQ(p.query(kQueryShardEntriesApplied), 0u);
  EXPECT_GE(p.query(kQueryShardRejectedPeers), 1u);
  EXPECT_EQ(entry_count(p), 0u);

  // And the genuine donor refuses to serve the patched joiner a snapshot:
  // the join request dies at the gate and the joiner never completes.
  p.control(kLedgerJoin);
  sim.run();
  EXPECT_GE(g.query(kQueryShardRejectedPeers), 1u);
  EXPECT_EQ(p.query(kQueryShardJoined), 0u);
  EXPECT_EQ(entry_count(p), 0u);
}

// ---------------------------------------------------------------------------
// 4. Rolled-back sealed snapshot refused
// ---------------------------------------------------------------------------

TEST(ShardGroup, StaleSnapshotFromRolledBackDonorIsRefused) {
  LedgerWorld w(2, /*seed=*/4);
  w.configure();
  ASSERT_EQ(w.nodes[0]->query(kQueryAttestedPeerCount), 1u);

  // Two admissions, sealed checkpoint on node 0 — then three more. The
  // host now holds a stale-but-authentic sealed blob for node 0.
  EXPECT_TRUE(admit(*w.nodes[0], 1, "alpha"));
  EXPECT_TRUE(admit(*w.nodes[0], 2, "beta"));
  w.sim.run();
  w.nodes[0]->checkpoint();  // seals versions up to 2
  EXPECT_TRUE(admit(*w.nodes[0], 3, "gamma"));
  EXPECT_TRUE(admit(*w.nodes[0], 4, "delta"));
  EXPECT_TRUE(admit(*w.nodes[0], 5, "epsilon"));
  w.sim.run();
  ASSERT_EQ(entry_count(*w.nodes[1]), 5u);
  w.nodes[1]->checkpoint();  // seals versions up to 5

  // Crash both. Node 1 restores its own (current) checkpoint; node 0 is
  // rolled back by the host to the stale blob — the rollback attack.
  w.nodes[1]->inject_fault();
  ASSERT_TRUE(w.nodes[1]->recover());
  w.nodes[1]->control(kLedgerConfigure, shard_cfg(1, w.members));
  w.nodes[0]->inject_fault();
  ASSERT_TRUE(w.nodes[0]->recover());
  w.nodes[0]->control(kLedgerConfigure, shard_cfg(0, w.members));
  ASSERT_EQ(entry_count(*w.nodes[0]), 2u);  // the rollback "took" locally
  EXPECT_EQ(w.nodes[1]->query(kQueryShardVersionTotal), 5u);

  // Node 1 rejoins and is offered the rolled-back state: its restored
  // version vector provably observed more, so it refuses the snapshot and
  // keeps its five entries.
  w.nodes[1]->control(kLedgerJoin);
  w.sim.run();
  EXPECT_EQ(w.nodes[1]->query(kQueryShardRollbacksRefused), 1u);
  EXPECT_EQ(w.nodes[1]->query(kQueryShardJoined), 0u);
  EXPECT_EQ(entry_count(*w.nodes[1]), 5u);

  // Control: the rolled-back node itself rejoins from the fresher donor —
  // that snapshot dominates and installs, healing the rollback.
  w.nodes[0]->control(kLedgerJoin);
  w.sim.run();
  EXPECT_EQ(w.nodes[0]->query(kQueryShardJoined), 1u);
  EXPECT_EQ(entry_count(*w.nodes[0]), 5u);
  EXPECT_EQ(w.nodes[0]->query(kQueryShardVersionTotal), 5u);
  EXPECT_EQ(w.nodes[0]->control(kLedgerEntries),
            w.nodes[1]->control(kLedgerEntries));
}

// ---------------------------------------------------------------------------
// Split-brain: minority fails closed, majority serves, heal converges
// ---------------------------------------------------------------------------

TEST(ShardGroup, PartitionedMinorityFailsClosedMajorityServes) {
  LedgerWorld w(3, /*seed=*/6);
  w.configure();

  // Cut {0, 1} from {2} with the simulator's partition primitive, and give
  // every replica the matching host liveness hints (the hints only steer
  // availability; the partition makes them truthful).
  const double t0 = w.sim.now();
  w.sim.fault_plan().add_partition({w.nodes[0]->id(), w.nodes[1]->id()},
                                   {w.nodes[2]->id()}, t0, t0 + 50.0);
  w.hint(0, 2, false);
  w.hint(1, 2, false);
  w.hint(2, 0, false);
  w.hint(2, 1, false);

  // Majority side (2 of 3) keeps admitting; the entry replicates within
  // the partition (the ring skips the unreachable shard).
  EXPECT_EQ(w.nodes[0]->query(kQueryShardServing), 1u);
  EXPECT_TRUE(admit(*w.nodes[0], 10, "majority-entry"));
  w.sim.run();
  EXPECT_EQ(entry_count(*w.nodes[1]), 1u);

  // Minority side fails closed: not serving, admission refused, nothing
  // stored — no divergent history that a heal would have to reconcile.
  EXPECT_EQ(w.nodes[2]->query(kQueryShardServing), 0u);
  EXPECT_FALSE(admit(*w.nodes[2], 99, "minority-entry"));
  EXPECT_EQ(entry_count(*w.nodes[2]), 0u);

  // Heal: advance past the partition window, flip the hints, rejoin. The
  // minority catches up via attested state transfer and serves again.
  w.sim.schedule_timer(t0 + 60.0 - w.sim.now(), netsim::kInvalidNode, [] {});
  w.sim.run();
  w.hint(0, 2, true);
  w.hint(1, 2, true);
  w.hint(2, 0, true);
  w.hint(2, 1, true);
  w.sim.run();
  w.nodes[2]->control(kLedgerJoin);
  w.sim.run();
  EXPECT_EQ(w.nodes[2]->query(kQueryShardJoined), 1u);
  EXPECT_EQ(w.nodes[2]->query(kQueryShardServing), 1u);
  EXPECT_EQ(entry_count(*w.nodes[2]), 1u);
  EXPECT_EQ(w.nodes[2]->control(kLedgerEntries),
            w.nodes[0]->control(kLedgerEntries));
}

// ---------------------------------------------------------------------------
// Hostile replication frames (DESIGN.md §15, misuse class 2 on the wire).
// A compromised-but-attested peer — or a host replaying captured records —
// controls every byte after the secure-channel decrypt. The kLedgerInject
// control port drops crafted 0xE0..0xEF frames straight into
// ShardReplica::handle_secure; every one must be consumed cleanly, never
// fault the enclave, and never corrupt replicated state.
// ---------------------------------------------------------------------------

/// Injects `frame` into `node` as if it arrived authenticated from `peer`;
/// returns handle_secure's consumed flag.
bool inject(EnclaveNode& node, netsim::NodeId peer, crypto::BytesView frame) {
  crypto::Bytes arg;
  crypto::append_u32(arg, peer);
  crypto::append_lv(arg, frame);
  const crypto::Bytes out = node.control(kLedgerInject, arg);
  return !out.empty() && out[0] == 1;
}

/// A version-vector wire blob whose length prefix claims `claimed` entries
/// but carries only `actual` of them.
crypto::Bytes truncated_vv(uint32_t claimed, uint32_t actual) {
  crypto::Bytes vv;
  crypto::append_u32(vv, claimed);
  for (uint32_t i = 0; i < actual; ++i) {
    crypto::append_u32(vv, i);
    crypto::append_u64(vv, 1);
  }
  return vv;
}

TEST(ShardWireHostility, TruncatedVersionVectorJoinIsDroppedCleanly) {
  LedgerWorld w(3, /*seed=*/9);
  w.configure();
  EnclaveNode& node = *w.nodes[0];
  const netsim::NodeId peer = w.nodes[1]->id();

  // Join request whose vector claims 1000 entries backed by one.
  crypto::Bytes frame;
  frame.push_back(kShardJoinReq);
  crypto::append_u32(frame, 1);
  crypto::append_lv(frame, truncated_vv(1000, 1));
  EXPECT_TRUE(inject(node, peer, frame));
  w.sim.run();

  // Dropped without serving a snapshot and without faulting: the peer gate
  // passed (trusted peer), no rejection was counted, and the replica still
  // admits new state afterwards.
  EXPECT_EQ(node.query(kQueryShardRejectedPeers), 0u);
  EXPECT_TRUE(admit(node, 1, "post-hostility"));
}

TEST(ShardWireHostility, TruncatedVersionVectorSnapshotIsDroppedCleanly) {
  LedgerWorld w(3, /*seed=*/10);
  w.configure();
  EnclaveNode& node = *w.nodes[0];
  const uint64_t vv_before = node.query(kQueryShardVersionTotal);

  crypto::Bytes frame;
  frame.push_back(kShardSnapshot);
  crypto::append_u32(frame, 1);  // donor
  crypto::append_lv(frame, truncated_vv(500, 2));
  crypto::append_lv(frame, crypto::Bytes{});  // app state
  EXPECT_TRUE(inject(node, w.nodes[1]->id(), frame));

  // Nothing merged, nothing installed, nothing dead.
  EXPECT_EQ(node.query(kQueryShardVersionTotal), vv_before);
  EXPECT_EQ(entry_count(node), 0u);
  EXPECT_TRUE(admit(node, 2, "still-serving"));
}

TEST(ShardWireHostility, DuplicateVnodeEntriesTakeComponentwiseMax) {
  // Codec level: a crafted duplicate must not LOWER a component (last-wins
  // would quietly weaken the dominance check behind rollback refusal).
  crypto::Bytes wire;
  crypto::append_u32(wire, 2);
  crypto::append_u32(wire, 7);
  crypto::append_u64(wire, 5);
  crypto::append_u32(wire, 7);
  crypto::append_u64(wire, 1);  // duplicate vnode, lower version
  const VersionVector vv = VersionVector::deserialize(wire);
  EXPECT_EQ(vv.get(7), 5u);
}

TEST(ShardWireHostility, DuplicateVnodeSnapshotMergesAtMax) {
  // End to end: a snapshot frame carrying the duplicate-entry vector must
  // merge at the component-wise max (+5), not at the last entry (+1).
  LedgerWorld w(3, /*seed=*/11);
  w.configure();
  EnclaveNode& node = *w.nodes[0];
  ASSERT_TRUE(admit(node, 1, "alpha"));
  ASSERT_TRUE(admit(node, 2, "beta"));
  w.sim.run();
  const uint64_t vv_before = node.query(kQueryShardVersionTotal);

  crypto::Bytes vv;
  crypto::append_u32(vv, 2);
  crypto::append_u32(vv, 2);  // shard 2...
  crypto::append_u64(vv, 5);  // ...at version 5
  crypto::append_u32(vv, 2);  // duplicate shard 2...
  crypto::append_u64(vv, 1);  // ...claiming version 1

  crypto::Bytes state;  // donor state with one planted entry
  crypto::append_u32(state, 1);
  crypto::append_u64(state, 500);
  crypto::append_lv(state, crypto::to_bytes("planted"));

  crypto::Bytes frame;
  frame.push_back(kShardSnapshot);
  crypto::append_u32(frame, 2);
  crypto::append_lv(frame, vv);
  crypto::append_lv(frame, state);
  EXPECT_TRUE(inject(node, w.nodes[1]->id(), frame));

  EXPECT_EQ(node.query(kQueryShardVersionTotal), vv_before + 5);
  EXPECT_EQ(entry_count(node), 3u);  // alpha, beta, planted
}

TEST(ShardWireHostility, WrongMeasurementPeerAppendIsRefused) {
  // Same cast as the patched-replica test: the app-level policy admits
  // the patched build, so the peer IS attested — but an append frame from
  // it must still die at the replication measurement gate.
  netsim::Simulator sim(/*seed=*/12);
  sgx::Authority authority;
  OpenProject genuine("ledger", "tenet ledger app v1\n", nullptr);
  OpenProject patched("ledger-patched",
                      "tenet ledger app v1 (patched: forges appends)\n",
                      nullptr);
  sgx::AttestationConfig loose = genuine.policy(/*mutual=*/true);
  loose.expect.also_accept(patched.measurement());
  loose.expect.mr_signer.reset();
  const sgx::Authority* auth = &authority;
  const auto factory = [auth, loose] {
    return std::make_unique<LedgerApp>(*auth, loose);
  };
  sgx::EnclaveImage gimage = genuine.build();
  gimage.factory = factory;
  sgx::EnclaveImage pimage = patched.build();
  pimage.factory = factory;
  EnclaveNode g(sim, authority, "genuine", genuine.foundation(), gimage);
  EnclaveNode p(sim, authority, "patched", patched.foundation(), pimage);
  g.start();
  p.start();
  const std::vector<ShardMember> members = {ShardMember{0, g.id()},
                                            ShardMember{1, p.id()}};
  g.control(kLedgerConfigure, shard_cfg(0, members));
  p.control(kLedgerConfigure, shard_cfg(1, members));
  sim.run();
  ASSERT_EQ(g.query(kQueryAttestedPeerCount), 1u);

  const crypto::Bytes forged =
      encode_shard_append(1, 99, 77, 1, 0, crypto::to_bytes("forged-entry"));
  EXPECT_TRUE(inject(g, p.id(), forged));  // consumed (and dropped)
  EXPECT_EQ(g.query(kQueryShardEntriesApplied), 0u);
  EXPECT_GE(g.query(kQueryShardRejectedPeers), 1u);
  EXPECT_EQ(entry_count(g), 0u);
}

TEST(ShardWireHostility, UnknownPeerAppendIsRefused) {
  LedgerWorld w(3, /*seed=*/13);
  w.configure();
  EnclaveNode& node = *w.nodes[0];
  const crypto::Bytes forged =
      encode_shard_append(1, 42, 7, 1, 0, crypto::to_bytes("spoofed"));
  EXPECT_TRUE(inject(node, /*peer=*/0xDEAD, forged));
  EXPECT_EQ(node.query(kQueryShardEntriesApplied), 0u);
  EXPECT_GE(node.query(kQueryShardRejectedPeers), 1u);
}

TEST(ShardWireHostility, HostileCopiesCountIsClampedToGroupSize) {
  // copies=2^32-1 used to buy billions of ring-forwarding hops from one
  // frame; the clamp bounds the walk at the member count. The frame still
  // applies once per replica (version dedup), then the storm dies out.
  LedgerWorld w(3, /*seed=*/14);
  w.configure();
  const crypto::Bytes frame = encode_shard_append(
      1, 99, 77, 0xFFFFFFFFu, 0, crypto::to_bytes("hostile-copies"));
  EXPECT_TRUE(inject(*w.nodes[0], w.nodes[1]->id(), frame));
  w.sim.run();  // must terminate: the clamp bounds total forwards

  uint64_t applied = 0;
  for (const auto& n : w.nodes) applied += n->query(kQueryShardEntriesApplied);
  EXPECT_GE(applied, 1u);
  EXPECT_LE(applied, w.nodes.size());
}

TEST(ShardWireHostility, ReservedAndTruncatedFramesAreInertNoise) {
  LedgerWorld w(3, /*seed=*/15);
  w.configure();
  EnclaveNode& node = *w.nodes[0];
  const netsim::NodeId peer = w.nodes[1]->id();
  const uint64_t vv_before = node.query(kQueryShardVersionTotal);

  // Every reserved-but-unassigned tag in the shard range, with junk tails.
  for (uint32_t tag = kShardTagLo; tag <= kShardTagHi; ++tag) {
    if (tag == kShardAppend || tag == kShardJoinReq || tag == kShardSnapshot ||
        tag == kShardApp) {
      continue;
    }
    crypto::Bytes frame{static_cast<uint8_t>(tag), 0xFF, 0x00, 0x41};
    EXPECT_TRUE(inject(node, peer, frame)) << "tag 0x" << std::hex << tag;
  }
  // Assigned tags with the header cut mid-field.
  EXPECT_TRUE(inject(node, peer, crypto::Bytes{kShardAppend, 0x01}));
  EXPECT_TRUE(inject(node, peer, crypto::Bytes{kShardSnapshot}));
  EXPECT_TRUE(inject(node, peer, crypto::Bytes{kShardApp, 0x00, 0x00}));
  // A non-shard payload is not consumed — it belongs to the app layer.
  EXPECT_FALSE(inject(node, peer, crypto::to_bytes("app-payload")));

  EXPECT_EQ(node.query(kQueryShardVersionTotal), vv_before);
  EXPECT_EQ(node.query(kQueryShardEntriesApplied), 0u);
  EXPECT_TRUE(admit(node, 3, "alive-after-noise"));
}

}  // namespace
}  // namespace tenet::core
