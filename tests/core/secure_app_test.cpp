#include "core/secure_app.h"

#include <gtest/gtest.h>

#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"
#include "sgx/adversary.h"

namespace tenet::core {
namespace {

/// Minimal application over the core framework: stores received secure
/// messages; control subfn 1 sends a secure message {u32 peer | LV text}.
class ChatApp final : public SecureApp {
 public:
  using SecureApp::SecureApp;

  void on_peer_attested(Ctx&, netsim::NodeId peer) override {
    attested_events.push_back(peer);
  }
  void on_secure_message(Ctx&, netsim::NodeId peer,
                         crypto::BytesView payload) override {
    inbox.emplace_back(peer, crypto::to_string(payload));
  }
  void on_plain_message(Ctx&, netsim::NodeId peer,
                        crypto::BytesView payload) override {
    plain_inbox.emplace_back(peer, crypto::to_string(payload));
  }
  crypto::Bytes on_control(Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    if (subfn == 1) {
      crypto::Reader r(arg);
      const netsim::NodeId peer = r.u32();
      ctx.send_secure(peer, r.lv());
    }
    if (subfn == 2) {
      crypto::Reader r(arg);
      const netsim::NodeId peer = r.u32();
      ctx.send_plain(peer, r.lv());
    }
    return {};
  }

  std::vector<netsim::NodeId> attested_events;
  std::vector<std::pair<netsim::NodeId, std::string>> inbox;
  std::vector<std::pair<netsim::NodeId, std::string>> plain_inbox;
};

/// The ChatApp as an open project so all nodes share one measurement.
struct ChatWorld {
  explicit ChatWorld(bool use_dh = true)
      : project("chat",
                "tenet chat application v1\nstores secure messages\n",
                nullptr) {
    sgx::AttestationConfig cfg = project.policy(/*mutual=*/false, use_dh);
    const OpenProject* proj = &project;
    const sgx::Authority* auth = &authority;
    image = proj->build();
    image.factory = [auth, cfg] { return std::make_unique<ChatApp>(*auth, cfg); };
  }

  EnclaveNode& add_node(const std::string& name) {
    nodes.push_back(std::make_unique<EnclaveNode>(
        sim, authority, name, project.foundation(), image));
    nodes.back()->start();
    return *nodes.back();
  }

  void send_chat(EnclaveNode& from, netsim::NodeId to, std::string_view text) {
    crypto::Bytes arg;
    crypto::append_u32(arg, to);
    crypto::append_lv(arg, crypto::to_bytes(text));
    (void)from.control(1, arg);
  }

  netsim::Simulator sim;
  sgx::Authority authority;
  OpenProject project;
  sgx::EnclaveImage image;
  std::vector<std::unique_ptr<EnclaveNode>> nodes;
};

TEST(SecureApp, AttestThenExchangeSecureMessages) {
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");
  EnclaveNode& b = w.add_node("bob");

  a.connect_to(b.id());
  w.sim.run();

  EXPECT_EQ(a.query(kQueryAttestationsInitiated), 1u);
  EXPECT_EQ(b.query(kQueryAttestationsServed), 1u);
  EXPECT_EQ(a.query(kQueryAttestedPeerCount), 1u);
  EXPECT_EQ(b.query(kQueryAttestedPeerCount), 1u);

  w.send_chat(a, b.id(), "hello bob");
  w.send_chat(b, a.id(), "hello alice");
  w.sim.run();

  // Verify via rejected-record counters that traffic flowed cleanly.
  EXPECT_EQ(a.query(kQueryRejectedRecords), 0u);
  EXPECT_EQ(b.query(kQueryRejectedRecords), 0u);
}

TEST(SecureApp, AttestationHappensOncePerPeer) {
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");
  EnclaveNode& b = w.add_node("bob");
  a.connect_to(b.id());
  w.sim.run();
  a.connect_to(b.id());  // second connect: cached
  a.connect_to(b.id());
  w.sim.run();
  EXPECT_EQ(a.query(kQueryAttestationsInitiated), 1u);
  EXPECT_EQ(b.query(kQueryAttestationsServed), 1u);
}

TEST(SecureApp, SecureSendBeforeAttestationFails) {
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");
  EnclaveNode& b = w.add_node("bob");
  crypto::Bytes arg;
  crypto::append_u32(arg, b.id());
  crypto::append_lv(arg, crypto::to_bytes("too early"));
  EXPECT_THROW((void)a.control(1, arg), std::logic_error);
}

TEST(SecureApp, PatchedPeerIsRejected) {
  // §3.2: "Malicious Tor nodes fail to pass an enclave integrity check."
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");

  sgx::EnclaveImage evil = sgx::adversary::patch_image(w.image, "log plaintext");
  EnclaveNode evil_node(w.sim, w.authority, "mallory", w.project.foundation(),
                        evil);
  evil_node.start();

  a.connect_to(evil_node.id());
  w.sim.run();
  EXPECT_EQ(a.query(kQueryAttestedPeerCount), 0u);
}

TEST(SecureApp, TamperedRecordIsDroppedAndCounted) {
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");
  EnclaveNode& b = w.add_node("bob");
  a.connect_to(b.id());
  w.sim.run();

  // A MITM injects a corrupted record claiming to come from alice.
  crypto::Bytes fake(64, 0xee);
  w.sim.post(netsim::Message{a.id(), b.id(), kPortSecure, fake});
  w.sim.run();
  EXPECT_EQ(b.query(kQueryRejectedRecords), 1u);
}

TEST(SecureApp, RecordsFromUnattestedSourceRejected) {
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");
  EnclaveNode& b = w.add_node("bob");
  (void)a;
  // No attestation at all; random node id claims a secure record.
  w.sim.post(netsim::Message{77, b.id(), kPortSecure, crypto::Bytes(64, 1)});
  w.sim.run();
  EXPECT_EQ(b.query(kQueryRejectedRecords), 1u);
}

TEST(SecureApp, PlainPortBypassesChannels) {
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");
  EnclaveNode& b = w.add_node("bob");
  crypto::Bytes arg;
  crypto::append_u32(arg, b.id());
  crypto::append_lv(arg, crypto::to_bytes("public hello"));
  (void)a.control(2, arg);
  w.sim.run();
  // No channel required, no rejections.
  EXPECT_EQ(b.query(kQueryRejectedRecords), 0u);
}

TEST(SecureApp, AttestationOnlyModeWithoutDh) {
  ChatWorld w(/*use_dh=*/false);
  EnclaveNode& a = w.add_node("alice");
  EnclaveNode& b = w.add_node("bob");
  a.connect_to(b.id());
  w.sim.run();
  EXPECT_EQ(a.query(kQueryAttestedPeerCount), 1u);
  // Without DH there is no channel: secure send must fail.
  crypto::Bytes arg;
  crypto::append_u32(arg, b.id());
  crypto::append_lv(arg, crypto::to_bytes("x"));
  EXPECT_THROW((void)a.control(1, arg), std::logic_error);
}

TEST(SecureApp, ManyNodesFullMeshAttestation) {
  ChatWorld w;
  constexpr int kN = 5;
  std::vector<EnclaveNode*> nodes;
  for (int i = 0; i < kN; ++i) {
    nodes.push_back(&w.add_node("node-" + std::to_string(i)));
  }
  for (int i = 0; i < kN; ++i) {
    for (int j = i + 1; j < kN; ++j) {
      nodes[static_cast<size_t>(i)]->connect_to(nodes[static_cast<size_t>(j)]->id());
    }
  }
  w.sim.run();
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(nodes[static_cast<size_t>(i)]->query(kQueryAttestedPeerCount),
              static_cast<uint64_t>(kN - 1))
        << "node " << i;
  }
}

TEST(SecureApp, SecureTrafficIsEncryptedOnTheWire) {
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");

  // A passive wiretap node records everything it can see by proxying.
  class Wiretap : public netsim::Node {
   public:
    using netsim::Node::Node;
    void handle_message(const netsim::Message& msg) override {
      seen.push_back(msg.payload);
    }
    std::vector<crypto::Bytes> seen;
  };
  EnclaveNode& b = w.add_node("bob");
  a.connect_to(b.id());
  w.sim.run();

  const std::string secret = "the secret routing policy of AS 7018";
  w.send_chat(a, b.id(), secret);
  w.sim.run();

  // Check the simulator-level stats: the payload bytes on the secure port
  // exceeded plaintext size (AEAD overhead), and bob accepted the record.
  EXPECT_EQ(b.query(kQueryRejectedRecords), 0u);
  EXPECT_GT(w.sim.stats(a.id()).bytes_sent, secret.size());
}

TEST(EnclaveNode, DeadNodeStopsResponding) {
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");
  EnclaveNode& b = w.add_node("bob");
  a.connect_to(b.id());
  w.sim.run();
  ASSERT_FALSE(b.dead());

  // Privileged attacker corrupts bob's enclave pages.
  ASSERT_TRUE(b.platform().epc().adversary_corrupt(b.enclave().id(), 0, 50));
  w.send_chat(a, b.id(), "are you there?");
  w.sim.run();
  EXPECT_TRUE(b.dead());  // enclave faulted; node went silent (DoS only)
}

TEST(EnclaveNode, CostSnapshotAggregatesPlatform) {
  ChatWorld w;
  EnclaveNode& a = w.add_node("alice");
  EnclaveNode& b = w.add_node("bob");
  a.connect_to(b.id());
  w.sim.run();
  const auto sa = a.cost_snapshot();
  EXPECT_GT(sa.sgx_user, 0u);
  EXPECT_GT(sa.normal, 0u);
}

}  // namespace
}  // namespace tenet::core
