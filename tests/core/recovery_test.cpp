// Enclave recovery: attestation retry with backoff under loss, channel
// NACK + re-handshake after a peer restart, MAC-failure rekeying, sealed
// checkpoint/restore through a real injected EPC fault — and the headline
// determinism guarantee: a scripted faulty run (loss + a forced crash)
// produces byte-identical telemetry on every replay.
#include <gtest/gtest.h>

#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"
#include "netsim/robust_channel.h"
#include "telemetry/telemetry.h"

namespace tenet::core {
namespace {

/// Stateful app: stores received strings AND its own notes; checkpoint
/// carries the notes so they survive an enclave restart.
class MemoApp final : public SecureApp {
 public:
  using SecureApp::SecureApp;

  void on_secure_message(Ctx&, netsim::NodeId,
                         crypto::BytesView payload) override {
    inbox.emplace_back(crypto::to_string(payload));
  }
  crypto::Bytes on_control(Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    switch (subfn) {
      case 1: {  // send secure: u32 peer | LV text
        crypto::Reader r(arg);
        const netsim::NodeId peer = r.u32();
        ctx.send_secure(peer, r.lv());
        return {};
      }
      case 2: {  // inbox count
        crypto::Bytes out;
        crypto::append_u64(out, inbox.size());
        return out;
      }
      case 3:  // add note
        notes.emplace_back(arg.begin(), arg.end());
        return {};
      case 4: {  // notes, concatenated as LVs
        crypto::Bytes out;
        for (const crypto::Bytes& n : notes) crypto::append_lv(out, n);
        return out;
      }
      default:
        return {};
    }
  }
  crypto::Bytes on_checkpoint(Ctx&) override {
    crypto::Bytes state;
    crypto::append_u32(state, static_cast<uint32_t>(notes.size()));
    for (const crypto::Bytes& n : notes) crypto::append_lv(state, n);
    return state;
  }
  void on_restore(Ctx&, crypto::BytesView state) override {
    try {
      crypto::Reader r(state);
      const uint32_t n = r.u32();
      for (uint32_t i = 0; i < n; ++i) notes.push_back(r.lv());
    } catch (const std::exception&) {
    }
  }

  std::vector<std::string> inbox;
  std::vector<crypto::Bytes> notes;
};

struct RecoveryWorld {
  explicit RecoveryWorld(netsim::RetryPolicy retry = {}, uint64_t seed = 1)
      : sim(seed), project("memo", "tenet memo app v1\n", nullptr) {
    const sgx::AttestationConfig cfg = project.policy();
    const sgx::Authority* auth = &authority;
    image = project.build();
    image.factory = [auth, cfg, retry] {
      auto app = std::make_unique<MemoApp>(*auth, cfg);
      app->enable_recovery(retry);
      return app;
    };
    a = std::make_unique<EnclaveNode>(sim, authority, "rw-a",
                                      project.foundation(), image);
    b = std::make_unique<EnclaveNode>(sim, authority, "rw-b",
                                      project.foundation(), image);
    a->start();
    b->start();
  }

  void send(EnclaveNode& from, netsim::NodeId to, std::string_view text) {
    crypto::Bytes arg;
    crypto::append_u32(arg, to);
    crypto::append_lv(arg, crypto::to_bytes(text));
    (void)from.control(1, arg);
  }
  uint64_t received(EnclaveNode& n) { return crypto::read_u64(n.control(2), 0); }

  netsim::Simulator sim;
  sgx::Authority authority;
  OpenProject project;
  sgx::EnclaveImage image;
  std::unique_ptr<EnclaveNode> a, b;
};

// ---------------------------------------------------------------------------
// Backoff schedule + RobustChannel unit behaviour
// ---------------------------------------------------------------------------

TEST(Backoff, GrowsExponentiallyAndCaps) {
  netsim::RetryPolicy p;
  p.base_delay = 0.1;
  p.multiplier = 2.0;
  p.max_delay = 0.5;
  p.jitter = 0;  // deterministic, no draw
  crypto::Drbg rng = crypto::Drbg::from_label(1, "backoff.test");
  EXPECT_DOUBLE_EQ(netsim::backoff_delay(p, 0, rng), 0.1);
  EXPECT_DOUBLE_EQ(netsim::backoff_delay(p, 1, rng), 0.2);
  EXPECT_DOUBLE_EQ(netsim::backoff_delay(p, 2, rng), 0.4);
  EXPECT_DOUBLE_EQ(netsim::backoff_delay(p, 3, rng), 0.5);   // capped
  EXPECT_DOUBLE_EQ(netsim::backoff_delay(p, 30, rng), 0.5);  // stays capped
}

TEST(Backoff, JitterDrawsExactlyOneValueAndBoundsDelay) {
  netsim::RetryPolicy p;
  p.base_delay = 0.1;
  p.jitter = 0.5;
  crypto::Drbg rng1 = crypto::Drbg::from_label(2, "backoff.jitter");
  crypto::Drbg rng2 = crypto::Drbg::from_label(2, "backoff.jitter");
  const double d = netsim::backoff_delay(p, 0, rng1);
  EXPECT_GE(d, 0.1);
  EXPECT_LT(d, 0.1 * 1.5);
  // Exactly one draw: both generators are now in the same state.
  (void)rng2.uniform_real();
  EXPECT_EQ(rng1.bytes(16), rng2.bytes(16));
}

TEST(RobustChannel, EpochCountsInstalls) {
  netsim::RobustChannel ch;
  EXPECT_FALSE(ch.ready());
  EXPECT_EQ(ch.epoch(), 0u);
  const crypto::Bytes key(netsim::SecureChannel::kKeySize, 0x42);
  ch.install(key, /*initiator=*/true);
  EXPECT_TRUE(ch.ready());
  EXPECT_EQ(ch.epoch(), 1u);
  ch.install(key, true);  // rekey
  EXPECT_EQ(ch.epoch(), 2u);
  ch.reset();
  EXPECT_FALSE(ch.ready());
  EXPECT_EQ(ch.epoch(), 2u);  // epoch survives the reset
}

TEST(RobustChannel, TracksConsecutiveOpenFailures) {
  const crypto::Bytes key(netsim::SecureChannel::kKeySize, 0x42);
  netsim::RobustChannel tx, rx;
  tx.install(key, true);
  rx.install(key, false);
  EXPECT_FALSE(rx.open(crypto::Bytes(48, 0xee)).has_value());
  EXPECT_FALSE(rx.open(crypto::Bytes(48, 0xef)).has_value());
  EXPECT_EQ(rx.consecutive_failures(), 2u);
  const crypto::Bytes record = tx.seal(crypto::to_bytes("ok"));
  EXPECT_TRUE(rx.open(record).has_value());
  EXPECT_EQ(rx.consecutive_failures(), 0u);  // success clears the streak
}

TEST(RobustChannel, SealWithoutKeyThrows) {
  netsim::RobustChannel ch;
  EXPECT_THROW((void)ch.seal(crypto::to_bytes("x")), std::logic_error);
  EXPECT_FALSE(ch.open(crypto::Bytes(48, 1)).has_value());
}

// ---------------------------------------------------------------------------
// Attestation retry under faults
// ---------------------------------------------------------------------------

TEST(Recovery, RetryRecoversFromLostChallenge) {
  netsim::RetryPolicy retry;
  RecoveryWorld w(retry);
  // The first challenge is eaten by a cut link; the backoff retransmission
  // goes through after the heal. No host-driven reconnect needed.
  w.sim.cut_link(w.a->id(), w.b->id());
  w.a->connect_to(w.b->id());
  w.sim.heal_link(w.a->id(), w.b->id());
  w.sim.run();
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);
  EXPECT_GE(w.a->query(kQueryAttestRetries), 1u);
  w.send(*w.a, w.b->id(), "after retry");
  w.sim.run();
  EXPECT_EQ(w.received(*w.b), 1u);
}

TEST(Recovery, RetryBudgetExhaustionReportsPeerFailure) {
  netsim::RetryPolicy retry;
  retry.max_attempts = 5;
  RecoveryWorld w(retry);
  w.sim.cut_link(w.a->id(), w.b->id());  // black hole, forever
  w.a->connect_to(w.b->id());
  w.sim.run();  // drains all retry timers
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 0u);
  EXPECT_EQ(w.a->query(kQueryAttestRetries), 4u);  // attempts 1..4 resent
  EXPECT_EQ(w.a->query(kQueryPeerFailures), 1u);

  // The peer state was dropped: healing + reconnecting starts fresh.
  w.sim.heal_link(w.a->id(), w.b->id());
  w.a->connect_to(w.b->id());
  w.sim.run();
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);
}

TEST(Recovery, AttestationSurvivesHeavyLoss) {
  netsim::RetryPolicy retry;
  retry.max_attempts = 10;
  RecoveryWorld w(retry, /*seed=*/7);
  netsim::LinkFaults f;
  f.loss = 0.5;
  w.sim.fault_plan().set_default(f);
  w.a->connect_to(w.b->id());
  w.sim.run();
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);
}

// ---------------------------------------------------------------------------
// Peer restart: NACK -> re-handshake
// ---------------------------------------------------------------------------

TEST(Recovery, PeerRestartNackTriggersRehandshake) {
  RecoveryWorld w;
  w.a->connect_to(w.b->id());
  w.sim.run();
  ASSERT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);

  w.b->relaunch();  // fresh enclave: all channel state gone
  ASSERT_EQ(w.b->query(kQueryAttestedPeerCount), 0u);

  // A still believes the channel is up. Its record is rejected by the new
  // instance, which NACKs; A re-attests automatically and traffic resumes.
  w.send(*w.a, w.b->id(), "lost to the restart");
  w.sim.run();
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);
  EXPECT_EQ(w.a->query(kQueryRehandshakes), 1u);
  EXPECT_GE(w.b->query(kQueryRejectedRecords), 1u);

  w.send(*w.a, w.b->id(), "after recovery");
  w.sim.run();
  EXPECT_EQ(w.received(*w.b), 1u);
}

TEST(Recovery, ForgedNackCannotTearDownHealthyChannel) {
  // kPortChannelReset is unauthenticated (threat model: DoS only). A
  // forged NACK for a healthy channel triggers at most one extra
  // handshake; it must not wedge or kill the relationship.
  RecoveryWorld w;
  w.a->connect_to(w.b->id());
  w.sim.run();
  w.sim.post(netsim::Message{w.b->id(), w.a->id(), kPortChannelReset, {}});
  w.sim.run();
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);
  w.send(*w.a, w.b->id(), "still fine");
  w.sim.run();
  EXPECT_EQ(w.received(*w.b), 1u);
}

TEST(Recovery, MacFailureBurstTriggersRehandshake) {
  netsim::RetryPolicy retry;
  retry.mac_failure_threshold = 3;
  RecoveryWorld w(retry);
  w.a->connect_to(w.b->id());
  w.sim.run();
  ASSERT_EQ(w.b->query(kQueryAttestedPeerCount), 1u);

  // A MITM injects garbage records "from" A until B presumes the channel
  // dead and re-attests.
  for (int i = 0; i < 3; ++i) {
    w.sim.post(netsim::Message{w.a->id(), w.b->id(), kPortSecure,
                               crypto::Bytes(64, static_cast<uint8_t>(i))});
  }
  w.sim.run();
  EXPECT_GE(w.b->query(kQueryRejectedRecords), 3u);
  EXPECT_EQ(w.b->query(kQueryRehandshakes), 1u);
  // Fresh keys on both sides; service intact in both directions.
  w.send(*w.a, w.b->id(), "ping");
  w.send(*w.b, w.a->id(), "pong");
  w.sim.run();
  EXPECT_EQ(w.received(*w.b), 1u);
  EXPECT_EQ(w.received(*w.a), 1u);
}

// ---------------------------------------------------------------------------
// Sealed checkpoint / restore through a real EPC fault
// ---------------------------------------------------------------------------

TEST(Recovery, CheckpointRestoreSurvivesInjectedFault) {
  RecoveryWorld w;
  (void)w.b->control(3, crypto::to_bytes("relay list v42"));
  (void)w.b->control(3, crypto::to_bytes("authority keys"));

  const crypto::Bytes sealed = w.b->checkpoint();
  ASSERT_FALSE(sealed.empty());
  // Sealed means sealed: the host-held blob leaks no plaintext.
  const crypto::Bytes secret = crypto::to_bytes("relay list v42");
  EXPECT_EQ(std::search(sealed.begin(), sealed.end(), secret.begin(),
                        secret.end()),
            sealed.end());

  w.b->inject_fault();
  EXPECT_TRUE(w.b->dead());

  ASSERT_TRUE(w.b->recover());
  EXPECT_FALSE(w.b->dead());
  const crypto::Bytes notes = w.b->control(4);
  crypto::Reader r(notes);
  EXPECT_EQ(crypto::to_string(r.lv()), "relay list v42");
  EXPECT_EQ(crypto::to_string(r.lv()), "authority keys");
}

TEST(Recovery, RestoreRejectsGarbageBlob) {
  RecoveryWorld w;
  (void)w.b->control(3, crypto::to_bytes("note"));
  (void)w.b->checkpoint();
  w.b->inject_fault();
  w.b->relaunch();
  EXPECT_FALSE(w.b->restore(crypto::Bytes(77, 0xab)));
  EXPECT_TRUE(w.b->control(4).empty());  // nothing restored from garbage
}

TEST(Recovery, NodeWithoutCheckpointHasNothingToRestore) {
  RecoveryWorld w;
  w.a->inject_fault();
  w.a->relaunch();
  EXPECT_TRUE(w.a->last_checkpoint().empty());
  EXPECT_FALSE(w.a->restore({}));
}

// ---------------------------------------------------------------------------
// Determinism: the acceptance criterion
// ---------------------------------------------------------------------------

std::string run_scripted_chaos() {
  telemetry::registry().reset_values();
  telemetry::set_enabled(true);
  std::string json;
  {
    netsim::RetryPolicy retry;
    RecoveryWorld w(retry, /*seed=*/2015);
    netsim::LinkFaults f;
    f.loss = 0.05;  // the scripted 5% loss
    w.sim.fault_plan().set_default(f);

    // A send can land while a re-handshake is still pending (the NACK or a
    // handshake message was itself lost); the app-level error is part of
    // the scripted run and equally deterministic.
    const auto try_send = [&w](int i) {
      try {
        w.send(*w.a, w.b->id(), "msg-" + std::to_string(i));
      } catch (const std::logic_error&) {
      }
      w.sim.run();
    };
    w.a->connect_to(w.b->id());
    w.sim.run();
    for (int i = 0; i < 20; ++i) try_send(i);
    // One forced crash + sealed-state recovery mid-run.
    w.b->checkpoint();
    w.b->inject_fault();
    if (!w.b->recover()) throw std::runtime_error("recover failed");
    for (int i = 20; i < 40; ++i) try_send(i);
    json = telemetry::registry().metrics_json();
  }
  telemetry::set_enabled(false);
  return json;
}

TEST(Recovery, ScriptedChaosRunIsByteIdentical) {
  const std::string run1 = run_scripted_chaos();
  const std::string run2 = run_scripted_chaos();
  EXPECT_EQ(run1, run2);
#if TENET_TELEMETRY_ENABLED
  // The run actually exercised the fault machinery (counters are real).
  // With telemetry compiled out the instruments don't exist; the replay
  // equality above is the whole claim.
  EXPECT_NE(run1.find("\"net.fault.loss\""), std::string::npos);
  EXPECT_NE(run1.find("\"sgx.enclave_restarts\""), std::string::npos);
  EXPECT_NE(run1.find("\"app.rehandshakes\""), std::string::npos);
#endif
}

}  // namespace
}  // namespace tenet::core
