// Failure injection: lossy links, partitions and crashes mid-protocol.
// The threat model allows DoS — these tests pin down that DoS-class
// failures degrade availability only, never integrity or confidentiality,
// and that recovery paths work.
#include <gtest/gtest.h>

#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"

namespace tenet::core {
namespace {

class StoreApp final : public SecureApp {
 public:
  using SecureApp::SecureApp;
  void on_secure_message(Ctx&, netsim::NodeId,
                         crypto::BytesView payload) override {
    received.emplace_back(payload.begin(), payload.end());
  }
  crypto::Bytes on_control(Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    if (subfn == 1) {
      crypto::Reader r(arg);
      const netsim::NodeId peer = r.u32();
      ctx.send_secure(peer, r.lv());
    }
    if (subfn == 2) {
      crypto::Bytes out;
      crypto::append_u64(out, received.size());
      return out;
    }
    return {};
  }
  std::vector<crypto::Bytes> received;
};

struct FaultWorld {
  FaultWorld() : project("store", "tenet store app v1\n", nullptr) {
    const sgx::AttestationConfig cfg = project.policy();
    const sgx::Authority* auth = &authority;
    image = project.build();
    image.factory = [auth, cfg] {
      return std::make_unique<StoreApp>(*auth, cfg);
    };
    a = std::make_unique<EnclaveNode>(sim, authority, "fw-a",
                                      project.foundation(), image);
    b = std::make_unique<EnclaveNode>(sim, authority, "fw-b",
                                      project.foundation(), image);
    a->start();
    b->start();
  }

  uint64_t received(EnclaveNode& n) { return crypto::read_u64(n.control(2), 0); }

  void send(EnclaveNode& from, netsim::NodeId to, std::string_view text) {
    crypto::Bytes arg;
    crypto::append_u32(arg, to);
    crypto::append_lv(arg, crypto::to_bytes(text));
    (void)from.control(1, arg);
  }

  netsim::Simulator sim;
  sgx::Authority authority;
  OpenProject project;
  sgx::EnclaveImage image;
  std::unique_ptr<EnclaveNode> a, b;
};

TEST(FaultInjection, PartitionDuringAttestationStallsCleanly) {
  FaultWorld w;
  w.sim.cut_link(w.a->id(), w.b->id());
  w.a->connect_to(w.b->id());
  w.sim.run();
  // No progress, no crash, no partially-attested state.
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 0u);
  EXPECT_EQ(w.b->query(kQueryAttestedPeerCount), 0u);

  // Heal + retry from the host: must complete (disconnect drops the
  // half-open challenger session first).
  w.sim.heal_link(w.a->id(), w.b->id());
  w.a->disconnect_from(w.b->id());
  w.a->connect_to(w.b->id());
  w.sim.run();
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);
}

TEST(FaultInjection, LostAttestationMessageIsRetryable) {
  FaultWorld w;
  // 100% loss for the first exchange: msg1 vanishes.
  w.sim.set_loss_rate(w.a->id(), w.b->id(), 1.0);
  w.a->connect_to(w.b->id());
  w.sim.run();
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 0u);

  w.sim.set_loss_rate(w.a->id(), w.b->id(), 0.0);
  w.a->disconnect_from(w.b->id());
  w.a->connect_to(w.b->id());
  w.sim.run();
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);
}

TEST(FaultInjection, LossNeverCorruptsDeliveredMessages) {
  FaultWorld w;
  w.a->connect_to(w.b->id());
  w.sim.run();
  ASSERT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);

  // 30% loss: some records vanish, but every delivered one authenticates
  // and replay protection tolerates the gaps (forward-only sequence).
  w.sim.set_loss_rate(w.a->id(), w.b->id(), 0.3);
  constexpr int kSends = 200;
  for (int i = 0; i < kSends; ++i) {
    w.send(*w.a, w.b->id(), "msg-" + std::to_string(i));
  }
  w.sim.run();
  const uint64_t got = w.received(*w.b);
  EXPECT_GT(got, static_cast<uint64_t>(kSends) / 2);
  EXPECT_LT(got, static_cast<uint64_t>(kSends));
  // Nothing was rejected: loss is absence, not corruption.
  EXPECT_EQ(w.b->query(kQueryRejectedRecords), 0u);
}

TEST(FaultInjection, CrashDuringHandshakeThenRecovery) {
  FaultWorld w;
  // B crashes right after A sends its challenge (msg1 in flight).
  w.a->connect_to(w.b->id());
  w.b->relaunch();  // wipes the half-open target state
  w.sim.run();
  // The challenge landed on the NEW instance, which happily answers it —
  // or, if timing dropped it, nothing happened. Either way no stuck state:
  const uint64_t attested = w.a->query(kQueryAttestedPeerCount);
  if (attested == 0) {
    w.a->disconnect_from(w.b->id());
    w.a->connect_to(w.b->id());
    w.sim.run();
  }
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);
  w.send(*w.a, w.b->id(), "post-recovery");
  w.sim.run();
  EXPECT_EQ(w.received(*w.b), 1u);
}

TEST(FaultInjection, AdversaryFloodOfGarbageIsAbsorbed) {
  FaultWorld w;
  w.a->connect_to(w.b->id());
  w.sim.run();

  // The network attacker injects garbage on every port.
  crypto::Drbg rng = crypto::Drbg::from_label(77, "fault.flood");
  for (uint32_t port : {kPortAttestChallenge, kPortAttestResponse,
                        kPortAttestConfirm, kPortSecure, kPortPlain}) {
    for (int i = 0; i < 20; ++i) {
      w.sim.post(netsim::Message{/*src=*/9999, w.b->id(), port,
                                 rng.bytes(1 + rng.uniform(600))});
    }
  }
  w.sim.run();
  // Service unaffected.
  w.send(*w.a, w.b->id(), "still alive");
  w.sim.run();
  EXPECT_EQ(w.received(*w.b), 1u);
  EXPECT_EQ(w.b->query(kQueryAttestedPeerCount), 1u);
}

TEST(FaultInjection, GarbageCannotCompleteAttestation) {
  FaultWorld w;
  // Forge a plausible-length "response" to a real challenge.
  w.a->connect_to(w.b->id());
  crypto::Drbg rng = crypto::Drbg::from_label(78, "fault.forge");
  w.sim.post(netsim::Message{w.b->id(), w.a->id(), kPortAttestResponse,
                             rng.bytes(700)});
  w.sim.run();
  // Either the genuine response won (attested via real protocol) or the
  // garbage killed the session — but garbage never YIELDS an attested
  // peer with a broken channel:
  if (w.a->query(kQueryAttestedPeerCount) == 1) {
    w.send(*w.a, w.b->id(), "check");
    w.sim.run();
    EXPECT_EQ(w.b->query(kQueryRejectedRecords), 0u);
  }
}

}  // namespace
}  // namespace tenet::core
