// Machine-reboot recovery: an enclave loses all state on relaunch; peers
// must detect the dead channel, drop the stale peer state and re-attest
// the fresh instance.
#include <gtest/gtest.h>

#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"

namespace tenet::core {
namespace {

class MailboxApp final : public SecureApp {
 public:
  using SecureApp::SecureApp;
  void on_secure_message(Ctx&, netsim::NodeId,
                         crypto::BytesView payload) override {
    messages.emplace_back(payload.begin(), payload.end());
  }
  crypto::Bytes on_control(Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    if (subfn == 1) {  // send secure
      crypto::Reader r(arg);
      const netsim::NodeId peer = r.u32();
      ctx.send_secure(peer, r.lv());
    }
    if (subfn == 2) {  // received count
      crypto::Bytes out;
      crypto::append_u64(out, messages.size());
      return out;
    }
    return {};
  }
  std::vector<crypto::Bytes> messages;
};

struct RebootWorld {
  RebootWorld()
      : project("mailbox", "tenet mailbox app v1\n", nullptr) {
    const sgx::AttestationConfig cfg = project.policy();
    const sgx::Authority* auth = &authority;
    image = project.build();
    image.factory = [auth, cfg] {
      return std::make_unique<MailboxApp>(*auth, cfg);
    };
    a = std::make_unique<EnclaveNode>(sim, authority, "node-a",
                                      project.foundation(), image);
    b = std::make_unique<EnclaveNode>(sim, authority, "node-b",
                                      project.foundation(), image);
    a->start();
    b->start();
  }

  void send_secure(EnclaveNode& from, netsim::NodeId to,
                   std::string_view text) {
    crypto::Bytes arg;
    crypto::append_u32(arg, to);
    crypto::append_lv(arg, crypto::to_bytes(text));
    (void)from.control(1, arg);
    sim.run();
  }

  uint64_t received(EnclaveNode& node) {
    return crypto::read_u64(node.control(2), 0);
  }

  netsim::Simulator sim;
  sgx::Authority authority;
  OpenProject project;
  sgx::EnclaveImage image;
  std::unique_ptr<EnclaveNode> a, b;
};

TEST(Reboot, RelaunchLosesInEnclaveState) {
  RebootWorld w;
  w.a->connect_to(w.b->id());
  w.sim.run();
  w.send_secure(*w.a, w.b->id(), "before reboot");
  EXPECT_EQ(w.received(*w.b), 1u);

  w.b->relaunch();
  // All in-enclave state is gone: message log empty, no attested peers.
  EXPECT_EQ(w.received(*w.b), 0u);
  EXPECT_EQ(w.b->query(kQueryAttestedPeerCount), 0u);
}

TEST(Reboot, StaleChannelRecordsAreRejectedAfterPeerReboot) {
  RebootWorld w;
  w.a->connect_to(w.b->id());
  w.sim.run();
  w.b->relaunch();

  // A still believes the channel is alive; its record must be rejected by
  // the fresh instance (which has no channel state), not misdecrypted.
  w.send_secure(*w.a, w.b->id(), "into the void");
  EXPECT_EQ(w.received(*w.b), 0u);
  EXPECT_EQ(w.b->query(kQueryRejectedRecords), 1u);
}

TEST(Reboot, DisconnectAndReattestRestoresService) {
  RebootWorld w;
  w.a->connect_to(w.b->id());
  w.sim.run();
  ASSERT_EQ(w.a->query(kQueryAttestationsInitiated), 1u);

  w.b->relaunch();
  // The host notices the peer failure and resets the relationship.
  w.a->disconnect_from(w.b->id());
  w.a->connect_to(w.b->id());
  w.sim.run();
  EXPECT_EQ(w.a->query(kQueryAttestedPeerCount), 1u);
  EXPECT_EQ(w.a->query(kQueryAttestationsInitiated), 2u);  // fresh attestation

  w.send_secure(*w.a, w.b->id(), "back online");
  EXPECT_EQ(w.received(*w.b), 1u);
}

TEST(Reboot, RelaunchedEnclaveKeepsIdentity) {
  // Same image, same platform: measurement and seal keys are stable, so
  // attestation policy does not change across reboots.
  RebootWorld w;
  const auto m1 = w.b->enclave().measurement();
  w.b->relaunch();
  EXPECT_EQ(w.b->enclave().measurement(), m1);
}

TEST(Reboot, DisconnectUnknownPeerIsHarmless) {
  RebootWorld w;
  EXPECT_NO_THROW(w.a->disconnect_from(12345));
}

}  // namespace
}  // namespace tenet::core
