#include "core/open_project.h"

#include <gtest/gtest.h>

#include "sgx/adversary.h"
#include "sgx/apps.h"
#include "sgx/platform.h"

namespace tenet::core {
namespace {

OpenProject make_project() {
  return OpenProject("tor", "tor onion router v0.2.6\ncommunity audited\n",
                     [] { return std::make_unique<sgx::apps::EchoApp>(); });
}

TEST(OpenProject, DeterministicBuild) {
  const OpenProject p1 = make_project();
  const OpenProject p2 = make_project();
  EXPECT_EQ(p1.measurement(), p2.measurement());
  EXPECT_EQ(p1.build().measure(), p1.measurement());
}

TEST(OpenProject, ReleaseCertificateVerifies) {
  const OpenProject p = make_project();
  EXPECT_TRUE(sgx::Vendor::verify(p.release()));
  EXPECT_EQ(p.release().mr_enclave, p.measurement());
  EXPECT_EQ(p.release().mr_signer(), p.foundation().signer_id());
}

TEST(OpenProject, PolicyAdmitsFaithfulBuildOnly) {
  const OpenProject p = make_project();
  const sgx::AttestationConfig cfg = p.policy();

  sgx::Report faithful;
  faithful.mr_enclave = p.measurement();
  faithful.mr_signer = p.foundation().signer_id();
  faithful.security_version = p.security_version();
  EXPECT_TRUE(cfg.expect.admits(faithful));

  sgx::Report patched = faithful;
  patched.mr_enclave = sgx::adversary::patch_image(p.build(), "evil").measure();
  EXPECT_FALSE(cfg.expect.admits(patched));
}

TEST(OpenProject, AnyPlatformCanLaunchAndQuoteTheRelease) {
  // §4: anyone with the published source + certificate can run and verify.
  const OpenProject p = make_project();
  sgx::Authority authority;
  sgx::Platform volunteer(authority, "volunteer-box");
  sgx::Enclave& e = volunteer.launch(p.release(), p.build());
  EXPECT_EQ(e.measurement(), p.measurement());
  // Behaviour is the faithful app.
  EXPECT_EQ(crypto::to_string(e.ecall(sgx::apps::kEchoReverse,
                                      crypto::to_bytes("tor"))),
            "rot");
}

TEST(OpenProject, RevisionBumpsSecurityVersionAndMeasurement) {
  OpenProject p = make_project();
  const sgx::Measurement old_m = p.measurement();
  const sgx::AttestationConfig old_policy = p.policy();

  p.publish_revision("tor onion router v0.2.7\nfixes CVE-2015-XXXX\n");
  EXPECT_EQ(p.security_version(), 2u);
  EXPECT_NE(p.measurement(), old_m);

  // New policy requires the new SVN: old builds no longer admitted.
  const sgx::AttestationConfig new_policy = p.policy();
  sgx::Report old_build;
  old_build.mr_enclave = old_m;
  old_build.mr_signer = p.foundation().signer_id();
  old_build.security_version = 1;
  EXPECT_FALSE(new_policy.expect.admits(old_build));
  (void)old_policy;
}

TEST(OpenProject, PolicyFlagsPropagate) {
  const OpenProject p = make_project();
  const auto cfg = p.policy(/*mutual=*/true, /*use_dh=*/false);
  EXPECT_TRUE(cfg.mutual);
  EXPECT_FALSE(cfg.use_dh);
  ASSERT_EQ(cfg.expect.mr_enclave_any_of.size(), 1u);
  EXPECT_EQ(cfg.expect.mr_enclave_any_of[0], p.measurement());
  EXPECT_EQ(*cfg.expect.mr_signer, p.foundation().signer_id());
}

}  // namespace
}  // namespace tenet::core
