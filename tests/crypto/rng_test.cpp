#include "crypto/rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace tenet::crypto {
namespace {

TEST(Drbg, DeterministicPerSeed) {
  Drbg a = Drbg::from_label(1);
  Drbg b = Drbg::from_label(1);
  EXPECT_EQ(a.bytes(128), b.bytes(128));
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a = Drbg::from_label(1);
  Drbg b = Drbg::from_label(2);
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

TEST(Drbg, DifferentLabelsDiffer) {
  Drbg a = Drbg::from_label(1, "alpha");
  Drbg b = Drbg::from_label(1, "beta");
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

TEST(Drbg, StreamIsStateful) {
  Drbg a = Drbg::from_label(3);
  const Bytes first = a.bytes(32);
  const Bytes second = a.bytes(32);
  EXPECT_NE(first, second);
}

TEST(Drbg, FillCrossesBlockBoundaries) {
  // Pull sizes that straddle the 64-byte ChaCha block repeatedly; the
  // concatenation must equal one big pull from an identical generator.
  Drbg piecewise = Drbg::from_label(4);
  Drbg oneshot = Drbg::from_label(4);
  Bytes collected;
  for (size_t n : {1u, 63u, 64u, 65u, 7u, 128u}) append(collected, piecewise.bytes(n));
  EXPECT_EQ(collected, oneshot.bytes(collected.size()));
}

TEST(Drbg, UniformBoundsRespected) {
  Drbg rng = Drbg::from_label(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_EQ(rng.uniform(1), 0u);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Drbg, UniformIsRoughlyUniform) {
  Drbg rng = Drbg::from_label(6);
  std::map<uint64_t, int> histogram;
  constexpr int kDraws = 8000;
  constexpr uint64_t kBuckets = 8;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.uniform(kBuckets)];
  for (uint64_t b = 0; b < kBuckets; ++b) {
    // Expected 1000 per bucket; allow generous +-20%.
    EXPECT_GT(histogram[b], 800) << "bucket " << b;
    EXPECT_LT(histogram[b], 1200) << "bucket " << b;
  }
}

TEST(Drbg, UniformRealInUnitInterval) {
  Drbg rng = Drbg::from_label(7);
  double sum = 0;
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.uniform_real();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 4000, 0.5, 0.03);
}

TEST(Drbg, ForkProducesIndependentStreams) {
  Drbg parent = Drbg::from_label(8);
  Drbg child1 = parent.fork("node-1");
  Drbg child2 = parent.fork("node-1");  // same label, later parent state
  EXPECT_NE(child1.bytes(32), child2.bytes(32));

  // Forks are reproducible given identical parent state and label.
  Drbg parent_a = Drbg::from_label(9);
  Drbg parent_b = Drbg::from_label(9);
  EXPECT_EQ(parent_a.fork("n").bytes(32), parent_b.fork("n").bytes(32));
}

TEST(Drbg, NoShortCycleInFirst64KB) {
  Drbg rng = Drbg::from_label(10);
  std::set<Bytes> seen;
  for (int i = 0; i < 1024; ++i) {
    EXPECT_TRUE(seen.insert(rng.bytes(64)).second) << "cycle at block " << i;
  }
}

}  // namespace
}  // namespace tenet::crypto
