#include "crypto/aead.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace tenet::crypto {
namespace {

Bytes test_key(uint8_t tag = 0) {
  Bytes k(Aead::kKeySize, 0);
  for (size_t i = 0; i < k.size(); ++i) k[i] = static_cast<uint8_t>(i ^ tag);
  return k;
}

TEST(Aead, SealOpenRoundTrip) {
  const Aead aead(test_key());
  const Bytes pt = to_bytes("policy submission from AS 7018");
  const Bytes record = aead.seal(1, 0, pt);
  const auto opened = aead.open(record);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

class AeadLengths : public ::testing::TestWithParam<size_t> {};

TEST_P(AeadLengths, RoundTripsEveryLength) {
  const Aead aead(test_key());
  Drbg rng = Drbg::from_label(41, "aead.len");
  const Bytes pt = rng.bytes(GetParam());
  const Bytes record = aead.seal(9, 3, pt);
  EXPECT_EQ(record.size(), pt.size() + Aead::kOverhead);
  const auto opened = aead.open(record);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AeadLengths,
                         ::testing::Values(0, 1, 15, 16, 17, 512, 1500, 4096));

TEST(Aead, RejectsWrongKey) {
  const Aead good(test_key());
  const Aead bad(test_key(0xff));
  const Bytes record = good.seal(1, 0, to_bytes("secret"));
  EXPECT_FALSE(bad.open(record).has_value());
}

TEST(Aead, RejectsBitFlipAnywhere) {
  const Aead aead(test_key());
  const Bytes record = aead.seal(1, 0, to_bytes("integrity matters"));
  for (size_t i = 0; i < record.size(); ++i) {
    Bytes tampered = record;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(aead.open(tampered).has_value()) << "byte " << i;
  }
}

TEST(Aead, RejectsTruncation) {
  const Aead aead(test_key());
  const Bytes record = aead.seal(1, 0, to_bytes("some payload"));
  for (size_t keep = 0; keep < record.size(); ++keep) {
    EXPECT_FALSE(aead.open(BytesView(record.data(), keep)).has_value());
  }
}

TEST(Aead, AadIsAuthenticated) {
  const Aead aead(test_key());
  const Bytes record = aead.seal(1, 0, to_bytes("body"), to_bytes("header-A"));
  EXPECT_TRUE(aead.open(record, to_bytes("header-A")).has_value());
  EXPECT_FALSE(aead.open(record, to_bytes("header-B")).has_value());
  EXPECT_FALSE(aead.open(record).has_value());
}

TEST(Aead, DistinctSequenceNumbersDistinctCiphertexts) {
  const Aead aead(test_key());
  const Bytes pt(64, 0x00);
  const Bytes r0 = aead.seal(1, 0, pt);
  const Bytes r1 = aead.seal(1, 1, pt);
  // Strip headers and compare ciphertext bodies.
  EXPECT_NE(Bytes(r0.begin() + 16, r0.end() - 16),
            Bytes(r1.begin() + 16, r1.end() - 16));
}

TEST(Aead, RecordSeqExtraction) {
  const Aead aead(test_key());
  const Bytes record = aead.seal(5, 42, to_bytes("x"));
  EXPECT_EQ(Aead::record_seq(record), 42u);
}

TEST(Aead, RejectsBadKeySize) {
  EXPECT_THROW(Aead(Bytes(16, 0)), std::invalid_argument);
  EXPECT_THROW(Aead(Bytes(33, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace tenet::crypto
