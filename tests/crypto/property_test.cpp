// Cross-primitive property tests: white-box identities that tie the
// implementations together (CTR is ECB of counter blocks; Montgomery
// arithmetic agrees with schoolbook; modexp laws hold at scale).
#include <gtest/gtest.h>

#include <set>

#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/dh.h"
#include "crypto/rng.h"
#include "test_seed.h"

namespace tenet::crypto {
namespace {

TEST(Property, CtrKeystreamIsEcbOfCounterBlocks) {
  AesKey128 key{};
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i * 3);
  const Aes128 aes(key);

  constexpr uint64_t kNonce = 0x1122334455667788ull;
  constexpr uint64_t kCounter = 42;
  const Bytes zeros(48, 0);  // encrypting zeros exposes the keystream
  const Bytes keystream = aes.ctr_crypt(kNonce, kCounter, zeros);

  for (uint64_t block = 0; block < 3; ++block) {
    AesBlock counter_block{};
    for (int i = 0; i < 8; ++i) {
      counter_block[static_cast<size_t>(i)] =
          static_cast<uint8_t>(kNonce >> (56 - 8 * i));
      counter_block[static_cast<size_t>(8 + i)] =
          static_cast<uint8_t>((kCounter + block) >> (56 - 8 * i));
    }
    aes.encrypt_block(counter_block);
    for (size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(keystream[block * 16 + i], counter_block[i])
          << "block " << block << " byte " << i;
    }
  }
}

TEST(Property, EcbIsAPermutation) {
  // Distinct plaintext blocks map to distinct ciphertext blocks, and
  // decrypt inverts encrypt for random blocks.
  AesKey128 key{};
  Drbg rng = Drbg::from_label(test::seed(50), "prop.aes");
  rng.fill(key);
  const Aes128 aes(key);
  std::set<Bytes> outputs;
  for (int i = 0; i < 200; ++i) {
    AesBlock block{};
    rng.fill(block);
    const AesBlock original = block;
    aes.encrypt_block(block);
    EXPECT_TRUE(outputs.insert(Bytes(block.begin(), block.end())).second);
    aes.decrypt_block(block);
    EXPECT_EQ(block, original);
  }
}

TEST(Property, BignumAgreesWithUint128) {
  // Random 64-bit operands: BigInt results must equal native arithmetic.
  Drbg rng = Drbg::from_label(test::seed(51), "prop.bignum");
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = rng.next_u64() >> (rng.uniform(32));
    const uint64_t b = rng.next_u64() >> (rng.uniform(32));
    const BigInt ba(a), bb(b);

    const unsigned __int128 sum = static_cast<unsigned __int128>(a) + b;
    Bytes sum_bytes(16);
    for (int k = 0; k < 16; ++k) {
      sum_bytes[static_cast<size_t>(k)] =
          static_cast<uint8_t>(sum >> (120 - 8 * k));
    }
    EXPECT_EQ(ba.add(bb), BigInt::from_bytes_be(sum_bytes));

    const unsigned __int128 prod = static_cast<unsigned __int128>(a) * b;
    Bytes prod_bytes(16);
    for (int k = 0; k < 16; ++k) {
      prod_bytes[static_cast<size_t>(k)] =
          static_cast<uint8_t>(prod >> (120 - 8 * k));
    }
    EXPECT_EQ(ba.mul(bb), BigInt::from_bytes_be(prod_bytes));

    if (b != 0) {
      const auto [q, r] = ba.div_rem(bb);
      EXPECT_EQ(q, BigInt(a / b));
      EXPECT_EQ(r, BigInt(a % b));
    }
    if (a >= b) {
      EXPECT_EQ(ba.sub(bb), BigInt(a - b));
    }
  }
}

TEST(Property, ModExpFermatOverDhGroup) {
  // a^(p-1) == 1 mod p for the paper's 1024-bit prime (Fermat), and
  // g^q == 1 for the generator's subgroup order (g = 2 is a QR? g^q = ±1;
  // for safe primes 2^q = ±1 mod p — accept either).
  const DhGroup& g = DhGroup::oakley_group2();
  Drbg rng = Drbg::from_label(test::seed(52), "prop.fermat");
  const BigInt one(1);
  const BigInt p_minus_1 = g.p().sub(one);
  for (int i = 0; i < 3; ++i) {
    const BigInt a = BigInt::random_range(rng, BigInt(2), g.p());
    EXPECT_EQ(g.mont_p().exp(a, p_minus_1), one);
  }
  const BigInt gq = g.mont_p().exp(g.g(), g.q());
  EXPECT_TRUE(gq == one || gq == p_minus_1);
}

TEST(Property, SharedSecretEqualsDirectModExp) {
  // B^x mod p computed through DhKeyPair equals a direct double modexp
  // g^(xy) via the other path (associativity of exponentiation).
  const DhGroup& g = DhGroup::oakley_group1();
  Drbg rng = Drbg::from_label(test::seed(53), "prop.dh");
  const DhKeyPair alice(g, rng);
  const DhKeyPair bob(g, rng);
  const Bytes s1 = alice.shared_secret(bob.public_value());
  const Bytes s2 = bob.shared_secret(alice.public_value());
  EXPECT_EQ(s1, s2);
  // And the secret is never a trivial value.
  const BigInt secret = BigInt::from_bytes_be(s1);
  EXPECT_GT(secret.cmp(BigInt(1)), 0);
  EXPECT_LT(secret.cmp(g.p().sub(BigInt(1))), 0);
}

TEST(Property, MontgomeryMatchesSchoolbookAtDhScale) {
  // 1024-bit operands: ctx.mul agrees with mul+mod on the real modulus.
  const DhGroup& g = DhGroup::oakley_group2();
  Drbg rng = Drbg::from_label(test::seed(54), "prop.mont1024");
  for (int i = 0; i < 5; ++i) {
    const BigInt a = BigInt::from_bytes_be(rng.bytes(128)).mod(g.p());
    const BigInt b = BigInt::from_bytes_be(rng.bytes(128)).mod(g.p());
    const BigInt expected = a.mul(b).mod(g.p());
    const BigInt got = g.mont_p().from_mont(
        g.mont_p().mul(g.mont_p().to_mont(a), g.mont_p().to_mont(b)));
    EXPECT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace tenet::crypto
