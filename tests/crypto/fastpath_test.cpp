// Equivalence and work-meter tests for the fast-path crypto kernels.
//
// The optimized paths (4-bit windowed Montgomery exponentiation, the
// radix-52 IFMA backend where the CPU has one, the fixed-base generator
// table, and T-table AES) must be bit-identical to the straightforward
// reference algorithms and must charge the work meter for exactly the
// operations the window structure implies. Each equivalence suite runs
// >= 1000 seeded-DRBG inputs so a digit-indexing or carry bug cannot hide.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/dh.h"
#include "crypto/rng.h"
#include "crypto/work.h"
#include "test_seed.h"

namespace tenet::crypto {
namespace {

// ---------------------------------------------------------------------------
// Windowed exponentiation vs. binary square-and-multiply
// ---------------------------------------------------------------------------

// Reference: left-to-right binary ladder over the public Montgomery API.
// This is the algorithm Montgomery::exp replaced; it exercises the scalar
// mul/sqr kernels only, so on IFMA machines it also cross-checks the
// radix-52 backend against the scalar one.
BigInt binary_exp(const Montgomery& m, const BigInt& base, const BigInt& e) {
  BigInt acc = m.to_mont(BigInt(1));
  const BigInt b = m.to_mont(base);
  for (size_t i = e.bit_length(); i-- > 0;) {
    acc = m.sqr(acc);
    if (e.bit(i)) acc = m.mul(acc, b);
  }
  return m.from_mont(acc);
}

BigInt random_odd_modulus(Drbg& rng, size_t bytes) {
  Bytes raw = rng.bytes(bytes);
  raw.front() |= 0x80;  // full advertised bit length
  raw.back() |= 0x01;   // odd
  return BigInt::from_bytes_be(raw);
}

TEST(FastPath, WindowedExpMatchesBinaryExpSmallModuli) {
  Drbg rng = Drbg::from_label(test::seed(61), "fastpath.exp.small");
  for (int iter = 0; iter < 1000; ++iter) {
    // 64..256-bit odd moduli: these stay on the scalar CIOS path.
    const size_t bytes = 8 + (rng.bytes(1)[0] % 25);
    const BigInt n = random_odd_modulus(rng, bytes);
    const Montgomery m(n);
    const BigInt base = BigInt::from_bytes_be(rng.bytes(bytes + 2)).mod(n);
    const BigInt e = BigInt::from_bytes_be(rng.bytes(bytes));
    EXPECT_EQ(m.exp(base, e), binary_exp(m, base, e)) << "iter " << iter;
  }
}

TEST(FastPath, WindowedExpMatchesBinaryExpLargeModuli) {
  // 768/1024/1536/2048-bit moduli: on AVX512-IFMA machines Montgomery::exp
  // runs on the radix-52 vector backend, so this compares that backend
  // against the scalar kernels end to end.
  Drbg rng = Drbg::from_label(test::seed(62), "fastpath.exp.large");
  for (const size_t bytes : {96, 128, 192, 256}) {
    for (int iter = 0; iter < 8; ++iter) {
      const BigInt n = random_odd_modulus(rng, bytes);
      const Montgomery m(n);
      const BigInt base = BigInt::from_bytes_be(rng.bytes(bytes)).mod(n);
      const BigInt e = BigInt::from_bytes_be(rng.bytes(bytes));
      EXPECT_EQ(m.exp(base, e), binary_exp(m, base, e))
          << bytes * 8 << "-bit iter " << iter;
    }
  }
}

TEST(FastPath, WindowedExpEdgeCases) {
  const BigInt n = BigInt::from_hex("0f123456789abcdef0123456789abcdef1");
  const Montgomery m(n);
  EXPECT_EQ(m.exp(BigInt(5), BigInt(0)), BigInt(1));
  EXPECT_EQ(m.exp(BigInt(5), BigInt(1)), BigInt(5));
  EXPECT_EQ(m.exp(BigInt(0), BigInt(7)), BigInt(0));
  EXPECT_EQ(m.exp(BigInt(1), BigInt::from_hex("ffffffffffffffff")), BigInt(1));
  // Exponent with zero digits in the middle (windows that skip the multiply).
  const BigInt e = BigInt::from_hex("f000000000000001");
  EXPECT_EQ(m.exp(BigInt(3), e), binary_exp(m, BigInt(3), e));
}

// ---------------------------------------------------------------------------
// Fixed-base table vs. generic modular exponentiation
// ---------------------------------------------------------------------------

TEST(FastPath, FixedBaseTableMatchesModExpRandomModuli) {
  Drbg rng = Drbg::from_label(test::seed(63), "fastpath.fixedbase.small");
  for (int iter = 0; iter < 1000; ++iter) {
    const BigInt n = random_odd_modulus(rng, 16);  // 128-bit
    const Montgomery m(n);
    const BigInt base = BigInt::from_bytes_be(rng.bytes(18)).mod(n);
    const FixedBaseTable table(m, base, 128);
    const BigInt e = BigInt::from_bytes_be(rng.bytes(16));
    EXPECT_EQ(table.power(e), BigInt::mod_exp(base, e, n)) << "iter " << iter;
  }
}

TEST(FastPath, DhGroupPowerMatchesModExp) {
  // The attestation handshake path: g^x through the group's cached table
  // must equal the generic ladder for the real 768/1024-bit groups.
  Drbg rng = Drbg::from_label(test::seed(64), "fastpath.fixedbase.group");
  for (const DhGroup* g :
       {&DhGroup::oakley_group1(), &DhGroup::oakley_group2()}) {
    for (int iter = 0; iter < 12; ++iter) {
      const BigInt x = BigInt::random_range(rng, BigInt(1), g->q());
      EXPECT_EQ(g->power(x), BigInt::mod_exp(g->g(), x, g->p()))
          << g->name() << " iter " << iter;
    }
  }
}

TEST(FastPath, FixedBaseTableOversizedExponentFallsBack) {
  const BigInt n = BigInt::from_hex("0f123456789abcdef0123456789abcdef1");
  const Montgomery m(n);
  const FixedBaseTable table(m, BigInt(7), 64);
  const BigInt e = BigInt::from_hex("01ffffffffffffffffff");  // > 64 bits
  EXPECT_EQ(table.power(e), m.exp(BigInt(7), e));
}

// ---------------------------------------------------------------------------
// T-table AES vs. an independent byte-wise reference
// ---------------------------------------------------------------------------

// Self-contained FIPS-197 reference implementation (S-box derived from the
// GF(2^8) inverse rather than a table literal, so it shares nothing with
// the production datapath).
struct RefAes {
  std::array<uint8_t, 256> sbox{};
  std::array<std::array<uint8_t, 16>, 11> rk{};

  static uint8_t gmul(uint8_t a, uint8_t b) {
    uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
      if (b & 1) p ^= a;
      const uint8_t hi = a & 0x80;
      a = static_cast<uint8_t>(a << 1);
      if (hi) a ^= 0x1b;
      b >>= 1;
    }
    return p;
  }

  // S-box: multiplicative inverse in GF(2^8) followed by the affine map,
  // computed once and shared across instances.
  static const std::array<uint8_t, 256>& make_sbox() {
    static const std::array<uint8_t, 256> t = [] {
      std::array<uint8_t, 256> out{};
      for (int x = 0; x < 256; ++x) {
        uint8_t inv = 0;
        for (int y = 1; y < 256; ++y) {
          if (gmul(static_cast<uint8_t>(x), static_cast<uint8_t>(y)) == 1) {
            inv = static_cast<uint8_t>(y);
            break;
          }
        }
        uint8_t s = 0;
        for (int bit = 0; bit < 8; ++bit) {
          const int b = ((inv >> bit) & 1) ^ ((inv >> ((bit + 4) % 8)) & 1) ^
                        ((inv >> ((bit + 5) % 8)) & 1) ^
                        ((inv >> ((bit + 6) % 8)) & 1) ^
                        ((inv >> ((bit + 7) % 8)) & 1) ^ ((0x63 >> bit) & 1);
          s |= static_cast<uint8_t>(b << bit);
        }
        out[static_cast<size_t>(x)] = s;
      }
      return out;
    }();
    return t;
  }

  explicit RefAes(const AesKey128& key) {
    sbox = make_sbox();
    uint8_t rcon = 1;
    rk[0] = key;
    for (int r = 1; r <= 10; ++r) {
      const auto& prev = rk[static_cast<size_t>(r - 1)];
      auto& out = rk[static_cast<size_t>(r)];
      out[0] = static_cast<uint8_t>(prev[0] ^ sbox[prev[13]] ^ rcon);
      out[1] = static_cast<uint8_t>(prev[1] ^ sbox[prev[14]]);
      out[2] = static_cast<uint8_t>(prev[2] ^ sbox[prev[15]]);
      out[3] = static_cast<uint8_t>(prev[3] ^ sbox[prev[12]]);
      for (int i = 4; i < 16; ++i) {
        out[static_cast<size_t>(i)] =
            static_cast<uint8_t>(prev[static_cast<size_t>(i)] ^
                                 out[static_cast<size_t>(i - 4)]);
      }
      rcon = gmul(rcon, 2);
    }
  }

  void encrypt(AesBlock& b) const {
    auto ark = [&](int r) {
      for (int i = 0; i < 16; ++i)
        b[static_cast<size_t>(i)] ^= rk[static_cast<size_t>(r)][static_cast<size_t>(i)];
    };
    auto round = [&](bool mix) {
      for (auto& v : b) v = sbox[v];
      AesBlock t = b;
      for (int r = 1; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
          b[static_cast<size_t>(r + 4 * c)] =
              t[static_cast<size_t>(r + 4 * ((c + r) % 4))];
      if (!mix) return;
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = &b[static_cast<size_t>(4 * c)];
        const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
        col[1] = static_cast<uint8_t>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
        col[2] = static_cast<uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
        col[3] = static_cast<uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
      }
    };
    ark(0);
    for (int r = 1; r <= 9; ++r) {
      round(true);
      ark(r);
    }
    round(false);
    ark(10);
  }
};

AesKey128 key_from(BytesView b) {
  AesKey128 k{};
  std::copy(b.begin(), b.begin() + 16, k.begin());
  return k;
}

TEST(FastPath, TTableAesMatchesFips197Vector) {
  const AesKey128 key = key_from(
      BigInt::from_hex("000102030405060708090a0b0c0d0e0f").to_bytes_be(16));
  AesBlock block{};
  const Bytes pt =
      BigInt::from_hex("00112233445566778899aabbccddeeff").to_bytes_be(16);
  std::copy(pt.begin(), pt.end(), block.begin());
  Aes128(key).encrypt_block(block);
  EXPECT_EQ(BigInt::from_bytes_be(block).to_hex(),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(FastPath, TTableAesMatchesReferenceRandomized) {
  Drbg rng = Drbg::from_label(test::seed(65), "fastpath.aes.random");
  for (int iter = 0; iter < 1000; ++iter) {
    const AesKey128 key = key_from(rng.bytes(16));
    const Bytes pt = rng.bytes(16);
    AesBlock fast{}, ref{};
    std::copy(pt.begin(), pt.end(), fast.begin());
    ref = fast;
    const Aes128 aes(key);
    aes.encrypt_block(fast);
    RefAes(key).encrypt(ref);
    EXPECT_EQ(fast, ref) << "iter " << iter;
    // Decrypt (still the byte-wise reference path) must invert the T-table
    // encryption exactly.
    AesBlock back = fast;
    aes.decrypt_block(back);
    EXPECT_EQ(Bytes(back.begin(), back.end()), pt) << "iter " << iter;
  }
}

TEST(FastPath, CtrMatchesNistSp80038aVector) {
  // NIST SP 800-38A F.5.1 (AES-128-CTR): the standard's initial counter
  // block f0f1...feff maps onto our (nonce, counter) split as the first and
  // second big-endian 8-byte halves.
  const AesKey128 key = key_from(
      BigInt::from_hex("2b7e151628aed2a6abf7158809cf4f3c").to_bytes_be(16));
  const Bytes pt = BigInt::from_hex(
                       "6bc1bee22e409f96e93d7e117393172a"
                       "ae2d8a571e03ac9c9eb76fac45af8e51"
                       "30c81c46a35ce411e5fbc1191a0a52ef"
                       "f69f2445df4f9b17ad2b417be66c3710")
                       .to_bytes_be(64);
  const Bytes ct =
      Aes128(key).ctr_crypt(0xf0f1f2f3f4f5f6f7ull, 0xf8f9fafbfcfdfeffull, pt);
  EXPECT_EQ(BigInt::from_bytes_be(ct).to_hex(),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(FastPath, CtrXorIsInPlaceCtrCrypt) {
  Drbg rng = Drbg::from_label(test::seed(66), "fastpath.aes.ctr");
  for (int iter = 0; iter < 200; ++iter) {
    const Aes128 aes(key_from(rng.bytes(16)));
    const size_t len = 1 + rng.bytes(1)[0];  // 1..256, exercises tails
    const Bytes data = rng.bytes(len);
    const uint64_t nonce = BigInt::from_bytes_be(rng.bytes(8)).low_u64();
    const uint64_t ctr = BigInt::from_bytes_be(rng.bytes(8)).low_u64();
    Bytes in_place = data;
    aes.ctr_xor(nonce, ctr, in_place.data(), in_place.size());
    EXPECT_EQ(in_place, aes.ctr_crypt(nonce, ctr, data)) << "iter " << iter;
    // XOR keystream twice = identity.
    aes.ctr_xor(nonce, ctr, in_place.data(), in_place.size());
    EXPECT_EQ(in_place, data) << "iter " << iter;
  }
}

// ---------------------------------------------------------------------------
// Work-meter cross-checks
// ---------------------------------------------------------------------------

uint64_t digit(const BigInt& e, size_t w) {
  return (e.bit(4 * w) ? 1u : 0u) | (e.bit(4 * w + 1) ? 2u : 0u) |
         (e.bit(4 * w + 2) ? 4u : 0u) | (e.bit(4 * w + 3) ? 8u : 0u);
}

// Predicts Montgomery::exp's limb_muladds from the window structure of e:
// one domain-entry multiply, 14 table-build multiplies, 4 squarings per
// window below the top, one multiply per non-zero digit below the top, and
// one domain-exit multiply. Both the scalar and IFMA backends charge these
// canonical CIOS costs, so the prediction is machine-independent.
uint64_t predict_exp_cost(size_t k, const BigInt& e) {
  const uint64_t c_mul = 2 * static_cast<uint64_t>(k) * k + 2 * k;
  const uint64_t c_sqr =
      static_cast<uint64_t>(k) * (k + 1) / 2 + static_cast<uint64_t>(k) * k + k;
  const size_t nwin = (e.bit_length() + 3) / 4;
  uint64_t nonzero_below_top = 0;
  for (size_t w = 0; w + 1 < nwin; ++w) {
    if (digit(e, w) != 0) ++nonzero_below_top;
  }
  return c_mul * (16 + nonzero_below_top) + 4 * c_sqr * (nwin - 1);
}

TEST(FastPath, ExpChargesExactlyTheWindowedOperationCount) {
  Drbg rng = Drbg::from_label(test::seed(67), "fastpath.meter.exp");
  // 1024-bit group modulus (IFMA backend where available) and a 128-bit
  // modulus (always scalar): identical formula must hold on both.
  const BigInt small_n = random_odd_modulus(rng, 16);
  const std::vector<const BigInt*> moduli = {&DhGroup::oakley_group2().p(),
                                             &small_n};
  for (const BigInt* n : moduli) {
    const Montgomery m(*n);
    for (int iter = 0; iter < 20; ++iter) {
      const BigInt base = BigInt::from_bytes_be(rng.bytes(16)).mod(*n);
      const BigInt e = BigInt::from_bytes_be(
          rng.bytes(1 + rng.bytes(1)[0] % (n->bit_length() / 8)));
      if (e.is_zero()) continue;
      WorkCounters wc;
      work::Scope scope(&wc);
      (void)m.exp(base, e);
      EXPECT_EQ(wc.limb_muladds, predict_exp_cost(m.limbs(), e))
          << n->bit_length() << "-bit modulus, iter " << iter;
    }
  }
}

TEST(FastPath, FixedBasePowerChargesOneMultiplyPerNonzeroDigit) {
  Drbg rng = Drbg::from_label(test::seed(68), "fastpath.meter.fixedbase");
  const DhGroup& g = DhGroup::oakley_group2();
  const uint64_t c_mul =
      2 * static_cast<uint64_t>(16) * 16 + 2 * 16;  // k = 16 limbs
  for (int iter = 0; iter < 20; ++iter) {
    const BigInt x = BigInt::random_range(rng, BigInt(1), g.q());
    uint64_t nonzero = 0;
    for (size_t w = 0; w < (x.bit_length() + 3) / 4; ++w) {
      if (digit(x, w) != 0) ++nonzero;
    }
    WorkCounters wc;
    work::Scope scope(&wc);
    (void)g.power(x);
    // One multiply per non-zero digit plus the domain exit; no squarings.
    EXPECT_EQ(wc.limb_muladds, c_mul * (nonzero + 1)) << "iter " << iter;
  }
}

TEST(FastPath, CtrChargesOneBlockPer16Bytes) {
  Drbg rng = Drbg::from_label(test::seed(69), "fastpath.meter.ctr");
  const Aes128 aes(key_from(rng.bytes(16)));
  for (const size_t len : {1u, 15u, 16u, 17u, 160u, 1500u}) {
    const Bytes data = rng.bytes(len);
    WorkCounters wc;
    work::Scope scope(&wc);
    (void)aes.ctr_crypt(7, 9, data);
    EXPECT_EQ(wc.aes_blocks, (len + 15) / 16) << "len " << len;
  }
}

}  // namespace
}  // namespace tenet::crypto
