#include "crypto/bignum.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace tenet::crypto {
namespace {

TEST(BigInt, ZeroProperties) {
  const BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_odd());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_TRUE(z.to_bytes_be().empty());
  EXPECT_EQ(z, BigInt(0));
}

TEST(BigInt, SmallArithmetic) {
  const BigInt a(1000), b(234);
  EXPECT_EQ(a.add(b), BigInt(1234));
  EXPECT_EQ(a.sub(b), BigInt(766));
  EXPECT_EQ(a.mul(b), BigInt(234000));
  EXPECT_THROW(b.sub(a), std::underflow_error);
}

TEST(BigInt, CarriesAcrossLimbs) {
  const BigInt max64 = BigInt::from_hex("ffffffffffffffff");
  const BigInt one(1);
  EXPECT_EQ(max64.add(one).to_hex(), "10000000000000000");
  EXPECT_EQ(max64.add(one).sub(one), max64);
  EXPECT_EQ(max64.mul(max64).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigInt, HexRoundTrip) {
  const char* h = "123456789abcdef0fedcba9876543210deadbeef";
  EXPECT_EQ(BigInt::from_hex(h).to_hex(), h);
}

TEST(BigInt, BytesRoundTripWithPadding) {
  const BigInt v = BigInt::from_hex("abcd");
  const Bytes wide = v.to_bytes_be(8);
  EXPECT_EQ(hex_encode(wide), "000000000000abcd");
  EXPECT_EQ(BigInt::from_bytes_be(wide), v);
  EXPECT_THROW(v.to_bytes_be(1), std::invalid_argument);
}

TEST(BigInt, BitAccessors) {
  const BigInt v = BigInt::from_hex("8000000000000001");  // bits 0 and 63
  EXPECT_EQ(v.bit_length(), 64u);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(1));
  EXPECT_FALSE(v.bit(64));
}

TEST(BigInt, Shifts) {
  const BigInt v(0xff);
  EXPECT_EQ(v.shl(4), BigInt(0xff0));
  EXPECT_EQ(v.shl(64).shr(64), v);
  EXPECT_EQ(v.shl(100).shr(100), v);
  EXPECT_EQ(v.shr(8), BigInt(0));
  EXPECT_EQ(v.shl(0), v);
}

TEST(BigInt, DivRemBasics) {
  const BigInt a(1000), b(7);
  const auto [q, r] = a.div_rem(b);
  EXPECT_EQ(q, BigInt(142));
  EXPECT_EQ(r, BigInt(6));
  EXPECT_THROW(a.div_rem(BigInt(0)), std::domain_error);
}

TEST(BigInt, DivRemReconstructionProperty) {
  Drbg rng = Drbg::from_label(11, "bignum.divrem");
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::from_bytes_be(rng.bytes(1 + rng.uniform(40)));
    BigInt b = BigInt::from_bytes_be(rng.bytes(1 + rng.uniform(20)));
    if (b.is_zero()) b = BigInt(3);
    const auto [q, r] = a.div_rem(b);
    EXPECT_EQ(q.mul(b).add(r), a);
    EXPECT_LT(r.cmp(b), 0);
  }
}

TEST(BigInt, MulCommutativeAssociativeProperty) {
  Drbg rng = Drbg::from_label(12, "bignum.mul");
  for (int i = 0; i < 25; ++i) {
    const BigInt a = BigInt::from_bytes_be(rng.bytes(16));
    const BigInt b = BigInt::from_bytes_be(rng.bytes(24));
    const BigInt c = BigInt::from_bytes_be(rng.bytes(8));
    EXPECT_EQ(a.mul(b), b.mul(a));
    EXPECT_EQ(a.mul(b).mul(c), a.mul(b.mul(c)));
    EXPECT_EQ(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));  // distributivity
  }
}

TEST(Montgomery, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery(BigInt(100)), std::invalid_argument);
  EXPECT_THROW(Montgomery(BigInt(1)), std::invalid_argument);
}

TEST(Montgomery, RoundTripDomainConversion) {
  const BigInt m = BigInt::from_hex("f123456789abcdef0123456789abcdc7");
  const Montgomery ctx(m);
  Drbg rng = Drbg::from_label(13, "mont.roundtrip");
  for (int i = 0; i < 20; ++i) {
    const BigInt x = BigInt::from_bytes_be(rng.bytes(16)).mod(m);
    EXPECT_EQ(ctx.from_mont(ctx.to_mont(x)), x);
  }
}

TEST(Montgomery, MulMatchesSchoolbookMod) {
  const BigInt m = BigInt::from_hex("e4f1c96f2d3b58a7190283746574839b");
  const Montgomery ctx(m);
  Drbg rng = Drbg::from_label(14, "mont.mul");
  for (int i = 0; i < 30; ++i) {
    const BigInt a = BigInt::from_bytes_be(rng.bytes(16)).mod(m);
    const BigInt b = BigInt::from_bytes_be(rng.bytes(16)).mod(m);
    const BigInt expected = a.mul(b).mod(m);
    const BigInt got = ctx.from_mont(ctx.mul(ctx.to_mont(a), ctx.to_mont(b)));
    EXPECT_EQ(got, expected);
  }
}

TEST(Montgomery, ExpSmallKnownAnswers) {
  const Montgomery ctx(BigInt(1000000007));
  EXPECT_EQ(ctx.exp(BigInt(2), BigInt(10)), BigInt(1024));
  EXPECT_EQ(ctx.exp(BigInt(2), BigInt(0)), BigInt(1));
  EXPECT_EQ(ctx.exp(BigInt(0), BigInt(5)), BigInt(0));
  // Fermat: a^(p-1) = 1 mod p for prime p.
  EXPECT_EQ(ctx.exp(BigInt(123456), BigInt(1000000006)), BigInt(1));
}

TEST(Montgomery, ExpLawsProperty) {
  const BigInt m = BigInt::from_hex(
      "c90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74020bbea63b139b23");
  const Montgomery ctx(m);
  Drbg rng = Drbg::from_label(15, "mont.exp");
  for (int i = 0; i < 10; ++i) {
    const BigInt base = BigInt::from_bytes_be(rng.bytes(24)).mod(m);
    const BigInt e1 = BigInt::from_bytes_be(rng.bytes(4));
    const BigInt e2 = BigInt::from_bytes_be(rng.bytes(4));
    // base^(e1+e2) == base^e1 * base^e2 (mod m)
    const BigInt lhs = ctx.exp(base, e1.add(e2));
    const BigInt rhs = ctx.exp(base, e1).mul(ctx.exp(base, e2)).mod(m);
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(BigInt, ModExpMatchesNaive) {
  // Cross-check mod_exp against repeated multiplication for small cases.
  const BigInt m(99991);  // prime
  for (uint64_t base : {2ull, 17ull, 9999ull}) {
    for (uint64_t e : {0ull, 1ull, 2ull, 31ull, 100ull}) {
      uint64_t naive = 1;
      for (uint64_t i = 0; i < e; ++i) naive = naive * base % 99991;
      EXPECT_EQ(BigInt::mod_exp(BigInt(base), BigInt(e), m), BigInt(naive))
          << base << "^" << e;
    }
  }
}

TEST(BigInt, RandomRangeBounds) {
  Drbg rng = Drbg::from_label(16, "bignum.range");
  const BigInt lo(100), hi(200);
  for (int i = 0; i < 200; ++i) {
    const BigInt v = BigInt::random_range(rng, lo, hi);
    EXPECT_GE(v.cmp(lo), 0);
    EXPECT_LT(v.cmp(hi), 0);
  }
  EXPECT_THROW(BigInt::random_range(rng, hi, lo), std::invalid_argument);
}

TEST(BigInt, MillerRabinKnownPrimesAndComposites) {
  Drbg rng = Drbg::from_label(17, "bignum.mr");
  for (uint64_t p : {2ull, 3ull, 5ull, 61ull, 99991ull, 1000000007ull}) {
    EXPECT_TRUE(BigInt::probably_prime(BigInt(p), 16, rng)) << p;
  }
  for (uint64_t c : {1ull, 4ull, 100ull, 99989ull * 3, 1000000007ull * 2}) {
    EXPECT_FALSE(BigInt::probably_prime(BigInt(c), 16, rng)) << c;
  }
  // Carmichael number 561 = 3*11*17 must be rejected.
  EXPECT_FALSE(BigInt::probably_prime(BigInt(561), 16, rng));
  // A 128-bit composite with no small factors: product of two 64-bit primes.
  const BigInt p1 = BigInt::from_hex("ffffffffffffffc5");  // 2^64 - 59, prime
  const BigInt p2 = BigInt::from_hex("ffffffffffffff61");
  EXPECT_FALSE(BigInt::probably_prime(p1.mul(p2), 16, rng));
}

}  // namespace
}  // namespace tenet::crypto
