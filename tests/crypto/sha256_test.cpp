#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "crypto/work.h"

namespace tenet::crypto {
namespace {

// FIPS 180-4 / NIST CAVP known-answer vectors.
struct ShaVector {
  const char* message;
  const char* digest_hex;
};

class Sha256Kat : public ::testing::TestWithParam<ShaVector> {};

TEST_P(Sha256Kat, MatchesKnownAnswer) {
  const auto& v = GetParam();
  const Digest d = Sha256::hash(to_bytes(v.message));
  EXPECT_EQ(digest_hex(d), v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    NistVectors, Sha256Kat,
    ::testing::Values(
        ShaVector{"",
                  "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        ShaVector{"abc",
                  "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        ShaVector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                  "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        ShaVector{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                  "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                  "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
        ShaVector{"The quick brown fox jumps over the lazy dog",
                  "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"}));

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShotAtEverySplit) {
  const Bytes msg = to_bytes("streaming interface must match one-shot hashing");
  const Digest whole = Sha256::hash(msg);
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(BytesView(msg.data(), split));
    h.update(BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), whole) << "split=" << split;
  }
}

TEST(Sha256, HashPartsEqualsConcatenation) {
  const Bytes a = to_bytes("alpha");
  const Bytes b = to_bytes("beta");
  Bytes ab = a;
  append(ab, b);
  EXPECT_EQ(Sha256::hash_parts({BytesView(a), BytesView(b)}), Sha256::hash(ab));
}

TEST(Sha256, ResetRestoresInitialState) {
  Sha256 h;
  h.update(to_bytes("garbage"));
  h.reset();
  h.update(to_bytes("abc"));
  EXPECT_EQ(digest_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, ChargesOneBlockPerCompression) {
  WorkCounters wc;
  work::Scope scope(&wc);
  (void)Sha256::hash(Bytes(64 * 10, 0x42));  // 10 data blocks + 1 padding block
  EXPECT_EQ(wc.sha256_blocks, 11u);
}

TEST(Sha256, DistinctMessagesDistinctDigests) {
  // Smoke-level collision sanity over a small corpus.
  std::vector<Digest> seen;
  for (int i = 0; i < 256; ++i) {
    Bytes msg{static_cast<uint8_t>(i)};
    const Digest d = Sha256::hash(msg);
    for (const auto& prev : seen) EXPECT_NE(d, prev);
    seen.push_back(d);
  }
}

}  // namespace
}  // namespace tenet::crypto
