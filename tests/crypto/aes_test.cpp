#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "crypto/work.h"

namespace tenet::crypto {
namespace {

AesKey128 key_from_hex(std::string_view hex) {
  const Bytes b = hex_decode(hex);
  AesKey128 k{};
  std::copy(b.begin(), b.end(), k.begin());
  return k;
}

AesBlock block_from_hex(std::string_view hex) {
  const Bytes b = hex_decode(hex);
  AesBlock blk{};
  std::copy(b.begin(), b.end(), blk.begin());
  return blk;
}

// FIPS-197 Appendix C.1 and NIST SP 800-38A F.1.1 vectors.
struct AesVector {
  const char* key;
  const char* plaintext;
  const char* ciphertext;
};

class AesKat : public ::testing::TestWithParam<AesVector> {};

TEST_P(AesKat, EncryptMatches) {
  const auto& v = GetParam();
  const Aes128 aes(key_from_hex(v.key));
  AesBlock b = block_from_hex(v.plaintext);
  aes.encrypt_block(b);
  EXPECT_EQ(hex_encode(BytesView(b.data(), b.size())), v.ciphertext);
}

TEST_P(AesKat, DecryptInverts) {
  const auto& v = GetParam();
  const Aes128 aes(key_from_hex(v.key));
  AesBlock b = block_from_hex(v.ciphertext);
  aes.decrypt_block(b);
  EXPECT_EQ(hex_encode(BytesView(b.data(), b.size())), v.plaintext);
}

INSTANTIATE_TEST_SUITE_P(
    NistVectors, AesKat,
    ::testing::Values(
        // FIPS-197 C.1
        AesVector{"000102030405060708090a0b0c0d0e0f",
                  "00112233445566778899aabbccddeeff",
                  "69c4e0d86a7b0430d8cdb78070b4c55a"},
        // SP 800-38A ECB-AES128 block 1
        AesVector{"2b7e151628aed2a6abf7158809cf4f3c",
                  "6bc1bee22e409f96e93d7e117393172a",
                  "3ad77bb40d7a3660a89ecaf32466ef97"},
        // SP 800-38A ECB-AES128 block 2
        AesVector{"2b7e151628aed2a6abf7158809cf4f3c",
                  "ae2d8a571e03ac9c9eb76fac45af8e51",
                  "f5d3d58503b9699de785895a96fdbaaf"},
        // SP 800-38A ECB-AES128 block 3
        AesVector{"2b7e151628aed2a6abf7158809cf4f3c",
                  "30c81c46a35ce411e5fbc1191a0a52ef",
                  "43b1cd7f598ece23881b00e3ed030688"}));

TEST(Aes, EcbRoundTripMultiBlock) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes pt(64, 0x3c);
  EXPECT_EQ(aes.ecb_decrypt(aes.ecb_encrypt(pt)), pt);
}

TEST(Aes, EcbRejectsPartialBlocks) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_THROW(aes.ecb_encrypt(Bytes(15, 0)), std::invalid_argument);
  EXPECT_THROW(aes.ecb_decrypt(Bytes(17, 0)), std::invalid_argument);
}

class AesPaddedRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(AesPaddedRoundTrip, AnyLength) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  Bytes pt(GetParam());
  for (size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<uint8_t>(i * 7);
  const Bytes ct = aes.ecb_encrypt_padded(pt);
  EXPECT_EQ(ct.size() % 16, 0u);
  EXPECT_GT(ct.size(), pt.size());
  EXPECT_EQ(aes.ecb_decrypt_padded(ct), pt);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AesPaddedRoundTrip,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 100, 1500));

TEST(Aes, PaddedDecryptRejectsCorruptPadding) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  Bytes ct = aes.ecb_encrypt_padded(to_bytes("hello"));
  ct.back() ^= 0xff;  // corrupt last ciphertext byte -> garbage padding
  EXPECT_THROW(aes.ecb_decrypt_padded(ct), std::invalid_argument);
}

TEST(Aes, CtrRoundTripAndSymmetry) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes pt(1500);
  for (size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<uint8_t>(i);
  const Bytes ct = aes.ctr_crypt(/*nonce=*/77, /*counter=*/0, pt);
  EXPECT_NE(ct, pt);
  EXPECT_EQ(aes.ctr_crypt(77, 0, ct), pt);  // same op decrypts
}

TEST(Aes, CtrDifferentNonceDifferentKeystream) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes pt(64, 0);
  EXPECT_NE(aes.ctr_crypt(1, 0, pt), aes.ctr_crypt(2, 0, pt));
  EXPECT_NE(aes.ctr_crypt(1, 0, pt), aes.ctr_crypt(1, 4, pt));
}

TEST(Aes, WorkMeterCountsBlocksAndSchedules) {
  WorkCounters wc;
  work::Scope scope(&wc);
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_EQ(wc.aes_key_schedules, 1u);
  (void)aes.ecb_encrypt(Bytes(160, 0));
  EXPECT_EQ(wc.aes_blocks, 10u);
}

}  // namespace
}  // namespace tenet::crypto
