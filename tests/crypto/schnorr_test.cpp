#include "crypto/schnorr.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace tenet::crypto {
namespace {

const DhGroup& group() { return DhGroup::oakley_group1(); }  // fast tests

TEST(Schnorr, SignVerifyRoundTrip) {
  Drbg rng = Drbg::from_label(31, "schnorr.roundtrip");
  const SchnorrKeyPair kp(group(), rng);
  const Bytes msg = to_bytes("QUOTE: enclave measurement deadbeef");
  const SchnorrSignature sig = kp.sign(msg, rng);
  EXPECT_TRUE(kp.public_key().verify(msg, sig));
}

TEST(Schnorr, RejectsTamperedMessage) {
  Drbg rng = Drbg::from_label(32, "schnorr.tamper");
  const SchnorrKeyPair kp(group(), rng);
  const Bytes msg = to_bytes("original");
  const SchnorrSignature sig = kp.sign(msg, rng);
  EXPECT_FALSE(kp.public_key().verify(to_bytes("originaX"), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  Drbg rng = Drbg::from_label(33, "schnorr.wrongkey");
  const SchnorrKeyPair kp1(group(), rng);
  const SchnorrKeyPair kp2(group(), rng);
  const Bytes msg = to_bytes("message");
  const SchnorrSignature sig = kp1.sign(msg, rng);
  EXPECT_FALSE(kp2.public_key().verify(msg, sig));
}

TEST(Schnorr, RejectsTamperedSignature) {
  Drbg rng = Drbg::from_label(34, "schnorr.sigtamper");
  const SchnorrKeyPair kp(group(), rng);
  const Bytes msg = to_bytes("message");
  SchnorrSignature sig = kp.sign(msg, rng);
  sig.s = sig.s.add(BigInt(1)).mod(group().q());
  EXPECT_FALSE(kp.public_key().verify(msg, sig));
}

TEST(Schnorr, DeterministicSigningIsStableAndValid) {
  Drbg rng = Drbg::from_label(35, "schnorr.det");
  const SchnorrKeyPair kp(group(), rng);
  const Bytes msg = to_bytes("deterministic");
  const SchnorrSignature s1 = kp.sign_deterministic(msg);
  const SchnorrSignature s2 = kp.sign_deterministic(msg);
  EXPECT_EQ(s1.e, s2.e);
  EXPECT_EQ(s1.s, s2.s);
  EXPECT_TRUE(kp.public_key().verify(msg, s1));
}

TEST(Schnorr, DerivedKeysAreDeterministicPerSeed) {
  const auto kp1 = SchnorrKeyPair::derive(group(), to_bytes("platform-0"));
  const auto kp2 = SchnorrKeyPair::derive(group(), to_bytes("platform-0"));
  const auto kp3 = SchnorrKeyPair::derive(group(), to_bytes("platform-1"));
  EXPECT_EQ(kp1.public_key().y(), kp2.public_key().y());
  EXPECT_NE(kp1.public_key().y(), kp3.public_key().y());
}

TEST(Schnorr, SerializationRoundTrips) {
  Drbg rng = Drbg::from_label(36, "schnorr.wire");
  const SchnorrKeyPair kp(group(), rng);
  const Bytes msg = to_bytes("wire");
  const SchnorrSignature sig = kp.sign(msg, rng);

  const Bytes sig_wire = sig.serialize(group());
  const SchnorrSignature sig2 = SchnorrSignature::deserialize(group(), sig_wire);
  EXPECT_TRUE(kp.public_key().verify(msg, sig2));

  const Bytes pk_wire = kp.public_key().serialize();
  const SchnorrPublicKey pk2 = SchnorrPublicKey::deserialize(group(), pk_wire);
  EXPECT_TRUE(pk2.verify(msg, sig));
}

TEST(Schnorr, DeserializeRejectsOutOfRange) {
  Bytes wire;
  const size_t w = (group().q().bit_length() + 7) / 8;
  append_lv(wire, group().q().to_bytes_be(w));  // e == q: out of range
  append_lv(wire, BigInt(1).to_bytes_be(w));
  EXPECT_THROW(SchnorrSignature::deserialize(group(), wire),
               std::invalid_argument);
}

TEST(GroupSigner, MemberSignaturesVerifyUnderGroupKey) {
  Drbg rng = Drbg::from_label(37, "epid");
  const GroupSigner epid(group(), rng);
  const Bytes msg = to_bytes("quote body");
  const SchnorrSignature sig = epid.sign_as_member(to_bytes("platform-A"), msg);
  EXPECT_TRUE(epid.verify_member(to_bytes("platform-A"), msg, sig));
  // Binding to platform identity: same message, different claimed platform
  // must not verify.
  EXPECT_FALSE(epid.verify_member(to_bytes("platform-B"), msg, sig));
}

TEST(SchnorrPublicKey, RejectsInvalidY) {
  EXPECT_THROW(SchnorrPublicKey(group(), BigInt(1)), std::invalid_argument);
  EXPECT_THROW(SchnorrPublicKey(group(), group().p()), std::invalid_argument);
}

}  // namespace
}  // namespace tenet::crypto
