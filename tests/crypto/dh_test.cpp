#include "crypto/dh.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "crypto/work.h"

namespace tenet::crypto {
namespace {

class DhGroupParam : public ::testing::TestWithParam<const DhGroup*> {};

TEST_P(DhGroupParam, ModulusIsPrime) {
  Drbg rng = Drbg::from_label(21, "dh.prime");
  EXPECT_TRUE(BigInt::probably_prime(GetParam()->p(), 8, rng))
      << GetParam()->name();
}

TEST_P(DhGroupParam, IsSafePrime) {
  // p = 2q + 1 with q prime (all MODP groups are safe primes).
  Drbg rng = Drbg::from_label(22, "dh.safeprime");
  const DhGroup& g = *GetParam();
  EXPECT_EQ(g.q().shl(1).add(BigInt(1)), g.p());
  EXPECT_TRUE(BigInt::probably_prime(g.q(), 8, rng)) << g.name();
}

TEST_P(DhGroupParam, AdvertisedBitLength) {
  const DhGroup& g = *GetParam();
  const size_t expected =
      g.name().find("768") != std::string::npos    ? 768
      : g.name().find("1024") != std::string::npos ? 1024
      : g.name().find("1536") != std::string::npos ? 1536
                                                   : 2048;
  EXPECT_EQ(g.bits(), expected);
}

TEST_P(DhGroupParam, KeyExchangeAgrees) {
  const DhGroup& g = *GetParam();
  Drbg rng_a = Drbg::from_label(23, "dh.alice");
  Drbg rng_b = Drbg::from_label(24, "dh.bob");
  const DhKeyPair alice(g, rng_a);
  const DhKeyPair bob(g, rng_b);
  const Bytes s1 = alice.shared_secret(bob.public_value());
  const Bytes s2 = bob.shared_secret(alice.public_value());
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), (g.bits() + 7) / 8);
}

TEST_P(DhGroupParam, WireEncodingRoundTrips) {
  const DhGroup& g = *GetParam();
  Drbg rng_a = Drbg::from_label(25, "dh.wire.a");
  Drbg rng_b = Drbg::from_label(26, "dh.wire.b");
  const DhKeyPair alice(g, rng_a);
  const DhKeyPair bob(g, rng_b);
  // Exchange fixed-width public values as raw bytes, like the attestation
  // messages do.
  EXPECT_EQ(alice.shared_secret(BytesView(bob.public_bytes())),
            bob.shared_secret(BytesView(alice.public_bytes())));
}

INSTANTIATE_TEST_SUITE_P(
    AllGroups, DhGroupParam,
    ::testing::Values(&DhGroup::oakley_group1(), &DhGroup::oakley_group2(),
                      &DhGroup::modp_group5(), &DhGroup::modp_group14()),
    [](const auto& info) {
      std::string n = info.param->name();
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST(Dh, RejectsDegeneratePeerValues) {
  const DhGroup& g = DhGroup::oakley_group2();
  Drbg rng = Drbg::from_label(27, "dh.degenerate");
  const DhKeyPair kp(g, rng);
  EXPECT_THROW((void)kp.shared_secret(BigInt(0)), std::invalid_argument);
  EXPECT_THROW((void)kp.shared_secret(BigInt(1)), std::invalid_argument);
  EXPECT_THROW((void)kp.shared_secret(g.p().sub(BigInt(1))),
               std::invalid_argument);
  EXPECT_THROW((void)kp.shared_secret(g.p()), std::invalid_argument);
}

TEST(Dh, DistinctKeyPairsDistinctSecrets) {
  const DhGroup& g = DhGroup::oakley_group2();
  Drbg rng = Drbg::from_label(28, "dh.distinct");
  const DhKeyPair a(g, rng), b(g, rng), c(g, rng);
  EXPECT_NE(a.public_value(), b.public_value());
  EXPECT_NE(a.shared_secret(c.public_value()), b.shared_secret(c.public_value()));
}

TEST(Dh, ExchangeCostScalesWithModulusBits) {
  // The work meter must show superlinear limb-op growth with modulus size —
  // this is the mechanism behind the paper's "DH dominates attestation
  // cycles" result and the A2 ablation.
  //
  // Absolute counts are lower than a naive square-and-multiply estimate:
  // 4-bit windowed exponentiation replaces ~bits/2 data-dependent multiplies
  // with ~bits/4 window multiplies, the squaring path charges ~3/4 of a
  // generic multiply, and the fixed-base generator table removes the
  // squarings from g^x entirely (only table-entry multiplies are charged).
  // The scaling shape — superlinear growth in modulus bits — is what the
  // paper's tables depend on, so that is what we assert.
  auto cost_of = [](const DhGroup& g) {
    Drbg rng = Drbg::from_label(29, g.name());
    WorkCounters wc;
    work::Scope scope(&wc);
    const DhKeyPair a(g, rng);
    const DhKeyPair b(g, rng);
    (void)a.shared_secret(b.public_value());
    return wc.limb_muladds;
  };
  const uint64_t c768 = cost_of(DhGroup::oakley_group1());
  const uint64_t c1024 = cost_of(DhGroup::oakley_group2());
  const uint64_t c2048 = cost_of(DhGroup::modp_group14());
  EXPECT_LT(c768, c1024);
  EXPECT_LT(c1024, c2048);
  EXPECT_GT(c2048, 4 * c768);  // ~cubic in bits; 4x is a loose lower bound
}

}  // namespace
}  // namespace tenet::crypto
