#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace tenet::crypto {
namespace {

// RFC 4231 test cases for HMAC-SHA256.
struct HmacVector {
  const char* key_hex;
  const char* data;
  const char* mac_hex;
};

class HmacKat : public ::testing::TestWithParam<HmacVector> {};

TEST_P(HmacKat, MatchesRfc4231) {
  const auto& v = GetParam();
  const Bytes key = std::string_view(v.key_hex) == "aa131"
                        ? Bytes(131, 0xaa)
                        : hex_decode(v.key_hex);
  const Digest mac = hmac_sha256(key, to_bytes(v.data));
  EXPECT_EQ(digest_hex(mac), v.mac_hex);
}

INSTANTIATE_TEST_SUITE_P(
    Rfc4231, HmacKat,
    ::testing::Values(
        HmacVector{"0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b", "Hi There",
                   "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"},
        HmacVector{"4a656665",  // "Jefe"
                   "what do ya want for nothing?",
                   "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"},
        HmacVector{"aa131",  // expanded below: 131 bytes of 0xaa (RFC 4231 case 6)
                   "Test Using Larger Than Block-Size Key - Hash Key First",
                   "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"}));

TEST(Hmac, VerifyAcceptsAndRejects) {
  const Bytes key = to_bytes("secret key");
  const Bytes msg = to_bytes("attested message");
  const Digest mac = hmac_sha256(key, msg);
  EXPECT_TRUE(hmac_verify(key, msg, BytesView(mac.data(), mac.size())));

  Digest bad = mac;
  bad[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, msg, BytesView(bad.data(), bad.size())));
  EXPECT_FALSE(hmac_verify(to_bytes("wrong key"), msg,
                           BytesView(mac.data(), mac.size())));
}

TEST(Hmac, PartsEqualsConcatenation) {
  const Bytes key = to_bytes("k");
  const Bytes a = to_bytes("left");
  const Bytes b = to_bytes("right");
  Bytes ab = a;
  append(ab, b);
  EXPECT_EQ(hmac_sha256_parts(key, {BytesView(a), BytesView(b)}),
            hmac_sha256(key, ab));
}

TEST(Hkdf, Rfc5869Case1) {
  // RFC 5869 A.1
  const Bytes ikm = hex_decode("0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b0b");
  const Bytes salt = hex_decode("000102030405060708090a0b0c");
  const Bytes info = hex_decode("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(hex_encode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandLengths) {
  const Digest prk = hkdf_extract(to_bytes("salt"), to_bytes("ikm"));
  for (size_t len : {1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(hkdf_expand(prk, to_bytes("ctx"), len).size(), len);
  }
  // Prefix property: shorter output is a prefix of longer output.
  const Bytes long_out = hkdf_expand(prk, to_bytes("ctx"), 64);
  const Bytes short_out = hkdf_expand(prk, to_bytes("ctx"), 16);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(Hkdf, RejectsOversizedExpand) {
  const Digest prk = hkdf_extract(to_bytes("s"), to_bytes("i"));
  EXPECT_THROW(hkdf_expand(prk, to_bytes("ctx"), 255 * 32 + 1),
               std::invalid_argument);
}

TEST(Hkdf, DistinctInfoDistinctKeys) {
  const Digest prk = hkdf_extract(to_bytes("salt"), to_bytes("ikm"));
  EXPECT_NE(hkdf_expand(prk, to_bytes("client"), 32),
            hkdf_expand(prk, to_bytes("server"), 32));
}

}  // namespace
}  // namespace tenet::crypto
