// Multi-buffer kernel equivalence (DESIGN.md §13): the batched AES-CTR /
// HMAC paths and the cached-midstate HmacKey must be byte-identical to the
// scalar primitives at every size — including ragged batches — and must
// charge identical canonical work, or the PR3/PR5/PR6 replay and
// cost-attribution invariants break silently.
#include "crypto/multibuf.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "crypto/aead.h"
#include "crypto/rng.h"
#include "crypto/work.h"
#include "test_seed.h"

namespace tenet::crypto {
namespace {

/// Forces a backend for one scope and restores the previous on exit.
class BackendScope {
 public:
  explicit BackendScope(mb::Backend b) : prev_(mb::set_backend(b)) {}
  ~BackendScope() { mb::set_backend(prev_); }

 private:
  mb::Backend prev_;
};

Bytes aead_key(uint8_t tag = 0) {
  Bytes k(Aead::kKeySize, 0);
  for (size_t i = 0; i < k.size(); ++i) k[i] = static_cast<uint8_t>(i ^ tag);
  return k;
}

// Sizes covering the satellite's 1B→64KB span with block-boundary ragged
// edges (the AES-NI kernel's 4-wide main loop, 1-wide loop, and sub-block
// tail all get exercised).
const std::vector<size_t> kRecordSizes = {0,  1,   15,  16,   17,   63,  64,
                                          65, 256, 257, 1500, 4096, 65536};

TEST(MultiBuf, CtrBatchMatchesScalarEverySize) {
  const Aes128 key(AesKey128{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                             15, 16});
  Drbg rng = Drbg::from_label(tenet::test::seed(71), "mb.ctr");
  for (const size_t n : kRecordSizes) {
    const Bytes plain = rng.bytes(n);
    const uint64_t nonce = rng.next_u64();
    const uint64_t counter = rng.next_u64() >> 8;

    Bytes batched = plain;
    Bytes scalar = plain;
    const mb::CtrJob job_b{nonce, counter, batched.data(), batched.size()};
    const mb::CtrJob job_s{nonce, counter, scalar.data(), scalar.size()};
    {
      BackendScope scope(mb::Backend::kBatched);
      mb::ctr_xor_batch(key, std::span<const mb::CtrJob>(&job_b, 1));
    }
    {
      BackendScope scope(mb::Backend::kScalar);
      mb::ctr_xor_batch(key, std::span<const mb::CtrJob>(&job_s, 1));
    }
    EXPECT_EQ(batched, scalar) << "size " << n;

    // And both must match the original single-buffer primitive.
    Bytes direct = plain;
    key.ctr_xor(nonce, counter, direct.data(), direct.size());
    EXPECT_EQ(batched, direct) << "size " << n;
  }
}

TEST(MultiBuf, CtrRaggedBatch) {
  const Aes128 key(AesKey128{9, 9, 9, 9, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3});
  Drbg rng = Drbg::from_label(tenet::test::seed(72), "mb.ragged");

  std::vector<Bytes> batched, scalar;
  for (const size_t n : kRecordSizes) {
    const Bytes plain = rng.bytes(n);
    batched.push_back(plain);
    scalar.push_back(plain);
  }
  std::vector<mb::CtrJob> jobs_b, jobs_s;
  for (size_t i = 0; i < batched.size(); ++i) {
    const uint64_t nonce = 0x1000 + i;
    jobs_b.push_back(mb::CtrJob{nonce, i, batched[i].data(), batched[i].size()});
    jobs_s.push_back(mb::CtrJob{nonce, i, scalar[i].data(), scalar[i].size()});
  }
  {
    BackendScope scope(mb::Backend::kBatched);
    mb::ctr_xor_batch(key, jobs_b);
  }
  {
    BackendScope scope(mb::Backend::kScalar);
    mb::ctr_xor_batch(key, jobs_s);
  }
  EXPECT_EQ(batched, scalar);
}

TEST(MultiBuf, CtrBatchChargesCanonicalCost) {
  const Aes128 key(AesKey128{});
  Drbg rng = Drbg::from_label(tenet::test::seed(73), "mb.cost");
  std::vector<Bytes> bufs;
  std::vector<mb::CtrJob> jobs;
  for (const size_t n : {size_t{1}, size_t{16}, size_t{17}, size_t{1500}}) {
    bufs.push_back(rng.bytes(n));
    jobs.push_back(mb::CtrJob{7, 0, bufs.back().data(), bufs.back().size()});
  }

  WorkCounters batched_cost, scalar_cost;
  {
    work::Scope meter(&batched_cost);
    BackendScope scope(mb::Backend::kBatched);
    mb::ctr_xor_batch(key, jobs);
  }
  {
    work::Scope meter(&scalar_cost);
    BackendScope scope(mb::Backend::kScalar);
    mb::ctr_xor_batch(key, jobs);
  }
  EXPECT_EQ(batched_cost.aes_blocks, scalar_cost.aes_blocks);
  EXPECT_EQ(batched_cost.sha256_blocks, scalar_cost.sha256_blocks);
}

TEST(MultiBuf, HmacKeyMatchesUncachedHmac) {
  Drbg rng = Drbg::from_label(tenet::test::seed(74), "mb.hmac");
  // Key lengths straddling the 64-byte pad boundary (>64 keys get hashed).
  for (const size_t key_len : {size_t{0}, size_t{1}, size_t{16}, size_t{32},
                               size_t{63}, size_t{64}, size_t{65},
                               size_t{100}}) {
    const Bytes key = rng.bytes(key_len);
    const HmacKey cached((BytesView(key)));
    for (const size_t n : kRecordSizes) {
      const Bytes data = rng.bytes(n);
      EXPECT_EQ(cached.mac(data), hmac_sha256(key, data))
          << "key " << key_len << " data " << n;
    }
    const Bytes a = rng.bytes(13), b = rng.bytes(200);
    EXPECT_EQ(cached.mac_parts({a, b}), hmac_sha256_parts(key, {a, b}));
  }
}

TEST(MultiBuf, HmacKeyChargesCanonicalCost) {
  const Bytes key = Drbg::from_label(tenet::test::seed(75), "mb.hc").bytes(32);
  const HmacKey cached((BytesView(key)));
  for (const size_t n : kRecordSizes) {
    const Bytes data =
        Drbg::from_label(tenet::test::seed(76) + n, "mb.hc.d").bytes(n);
    WorkCounters cached_cost, uncached_cost;
    {
      work::Scope meter(&cached_cost);
      (void)cached.mac(data);
    }
    {
      work::Scope meter(&uncached_cost);
      (void)hmac_sha256(key, data);
    }
    EXPECT_EQ(cached_cost.sha256_blocks, uncached_cost.sha256_blocks)
        << "size " << n;
  }
}

TEST(MultiBuf, HmacBatchMatchesParts) {
  Drbg rng = Drbg::from_label(tenet::test::seed(77), "mb.hb");
  const Bytes key = rng.bytes(32);
  const HmacKey cached((BytesView(key)));

  std::vector<Bytes> aads, bodies;
  std::vector<std::array<uint8_t, 16>> tags(kRecordSizes.size());
  std::vector<mb::MacJob> jobs;
  for (size_t i = 0; i < kRecordSizes.size(); ++i) {
    aads.push_back(rng.bytes(i % 3 == 0 ? 0 : 24));
    bodies.push_back(rng.bytes(kRecordSizes[i]));
  }
  for (size_t i = 0; i < kRecordSizes.size(); ++i) {
    jobs.push_back(
        mb::MacJob{aads[i], bodies[i], tags[i].data(), tags[i].size()});
  }
  mb::hmac_batch(cached, jobs);
  for (size_t i = 0; i < kRecordSizes.size(); ++i) {
    const Digest full = hmac_sha256_parts(key, {aads[i], bodies[i]});
    EXPECT_EQ(0, std::memcmp(tags[i].data(), full.data(), tags[i].size()))
        << "job " << i;
  }
}

TEST(MultiBuf, ShaKernelBackendsAgree) {
  if (!sha256_kernel::accelerated()) {
    GTEST_SKIP() << "SHA-NI not available; portable kernel already covered";
  }
  Drbg rng = Drbg::from_label(tenet::test::seed(78), "mb.sha");
  for (const size_t n : kRecordSizes) {
    const Bytes data = rng.bytes(n);
    const Digest fast = Sha256::hash(data);
    const bool prev = sha256_kernel::force_portable(true);
    const Digest portable = Sha256::hash(data);
    sha256_kernel::force_portable(prev);
    EXPECT_EQ(fast, portable) << "size " << n;
  }
}

TEST(MultiBuf, AeadSealBatchByteIdenticalToSequential) {
  const Aead aead(aead_key());
  Drbg rng = Drbg::from_label(tenet::test::seed(79), "mb.aead");

  std::vector<Bytes> plains;
  for (const size_t n : kRecordSizes) plains.push_back(rng.bytes(n));

  // Sequential scalar reference.
  std::vector<Bytes> expected;
  {
    BackendScope scope(mb::Backend::kScalar);
    for (size_t i = 0; i < plains.size(); ++i) {
      expected.push_back(aead.seal(0xAB, i, plains[i]));
    }
  }

  // One batched dispatch into preallocated buffers.
  std::vector<Bytes> actual;
  for (const Bytes& p : plains) actual.emplace_back(Aead::sealed_size(p.size()));
  std::vector<Aead::SealJob> jobs;
  for (size_t i = 0; i < plains.size(); ++i) {
    jobs.push_back(Aead::SealJob{0xAB, i, plains[i], BytesView{},
                                 actual[i].data()});
  }
  {
    BackendScope scope(mb::Backend::kBatched);
    aead.seal_batch(jobs);
  }
  EXPECT_EQ(actual, expected);

  // Every batched record must open through the normal path.
  for (size_t i = 0; i < actual.size(); ++i) {
    const auto opened = aead.open(actual[i]);
    ASSERT_TRUE(opened.has_value()) << "record " << i;
    EXPECT_EQ(*opened, plains[i]);
  }
}

TEST(MultiBuf, AeadSealBatchChargesCanonicalCost) {
  const Aead aead(aead_key(3));
  Drbg rng = Drbg::from_label(tenet::test::seed(80), "mb.ac");
  std::vector<Bytes> plains;
  for (const size_t n : {size_t{1}, size_t{64}, size_t{1500}}) {
    plains.push_back(rng.bytes(n));
  }

  WorkCounters batched_cost, scalar_cost;
  {
    std::vector<Bytes> out;
    for (const Bytes& p : plains) out.emplace_back(Aead::sealed_size(p.size()));
    std::vector<Aead::SealJob> jobs;
    for (size_t i = 0; i < plains.size(); ++i) {
      jobs.push_back(
          Aead::SealJob{1, i, plains[i], BytesView{}, out[i].data()});
    }
    work::Scope meter(&batched_cost);
    BackendScope scope(mb::Backend::kBatched);
    aead.seal_batch(jobs);
  }
  {
    work::Scope meter(&scalar_cost);
    BackendScope scope(mb::Backend::kScalar);
    for (size_t i = 0; i < plains.size(); ++i) (void)aead.seal(1, i, plains[i]);
  }
  EXPECT_EQ(batched_cost.aes_blocks, scalar_cost.aes_blocks);
  EXPECT_EQ(batched_cost.sha256_blocks, scalar_cost.sha256_blocks);
  EXPECT_EQ(batched_cost.bytes_moved, scalar_cost.bytes_moved);
}

TEST(MultiBuf, AeadOpenInPlaceMatchesOpen) {
  const Aead aead(aead_key(5));
  Drbg rng = Drbg::from_label(tenet::test::seed(81), "mb.oip");
  for (const size_t n : kRecordSizes) {
    const Bytes plain = rng.bytes(n);
    Bytes record = aead.seal(2, 7, plain);

    Bytes in_place = record;
    const auto len = aead.open_in_place(std::span<uint8_t>(in_place));
    ASSERT_TRUE(len.has_value()) << "size " << n;
    EXPECT_EQ(*len, plain.size());
    EXPECT_EQ(Bytes(in_place.begin() + Aead::kHeaderSize,
                    in_place.begin() + Aead::kHeaderSize +
                        static_cast<ptrdiff_t>(*len)),
              plain);

    // Tampered record: rejected, buffer untouched.
    Bytes tampered = record;
    tampered[tampered.size() / 2] ^= 1;
    const Bytes before = tampered;
    EXPECT_FALSE(aead.open_in_place(std::span<uint8_t>(tampered)).has_value());
    EXPECT_EQ(tampered, before);
  }
}

}  // namespace
}  // namespace tenet::crypto
