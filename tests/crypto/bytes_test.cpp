#include "crypto/bytes.h"

#include <gtest/gtest.h>

namespace tenet::crypto {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(hex_encode(data), "0001abff7f");
  EXPECT_EQ(hex_decode("0001abff7f"), data);
}

TEST(Hex, AcceptsWhitespaceAndUppercase) {
  EXPECT_EQ(hex_decode("AB cd\nEF"), (Bytes{0xab, 0xcd, 0xef}));
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(hex_decode("0g"), std::invalid_argument);
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);
}

TEST(CtEqual, Behaviour) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Endian, U32RoundTrip) {
  Bytes b;
  append_u32(b, 0xdeadbeef);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(read_u32(b, 0), 0xdeadbeefu);
}

TEST(Endian, U64RoundTrip) {
  Bytes b;
  append_u64(b, 0x0123456789abcdefULL);
  ASSERT_EQ(b.size(), 8u);
  EXPECT_EQ(read_u64(b, 0), 0x0123456789abcdefULL);
}

TEST(Endian, ReadOutOfRangeThrows) {
  const Bytes b = {1, 2, 3};
  EXPECT_THROW(read_u32(b, 0), std::out_of_range);
  EXPECT_THROW(read_u64(b, 0), std::out_of_range);
}

TEST(Reader, ParsesMixedFields) {
  Bytes wire;
  append_u32(wire, 7);
  append_u64(wire, 42);
  append_lv(wire, to_bytes("payload"));
  wire.push_back(0x5a);

  Reader r(wire);
  EXPECT_EQ(r.u32(), 7u);
  EXPECT_EQ(r.u64(), 42u);
  EXPECT_EQ(to_string(r.lv()), "payload");
  EXPECT_EQ(r.u8(), 0x5a);
  EXPECT_TRUE(r.done());
}

TEST(Reader, TruncationThrows) {
  Bytes wire;
  append_u32(wire, 100);  // LV claims 100 bytes but none follow
  Reader r(wire);
  EXPECT_THROW(r.lv(), std::out_of_range);
}

TEST(Reader, RemainingTracksConsumption) {
  Bytes wire(16, 0);
  Reader r(wire);
  EXPECT_EQ(r.remaining(), 16u);
  (void)r.u64();
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.take(8);
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace tenet::crypto
