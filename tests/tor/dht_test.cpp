#include "tor/dht.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace tenet::tor {
namespace {

RelayDescriptor desc(netsim::NodeId node) {
  RelayDescriptor d;
  d.node = node;
  d.nickname = "relay-" + std::to_string(node);
  d.onion_public = crypto::Bytes(16, static_cast<uint8_t>(node));
  d.exit = node % 2 == 0;
  d.claims_sgx = true;
  return d;
}

ChordRing ring_of(size_t n) {
  ChordRing ring;
  for (netsim::NodeId i = 1; i <= n; ++i) ring.join(desc(i));
  return ring;
}

TEST(Chord, EmptyRing) {
  ChordRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.successor(123).has_value());
  EXPECT_FALSE(ring.lookup(123).descriptor.has_value());
}

TEST(Chord, SingleMemberOwnsEverything) {
  ChordRing ring;
  ring.join(desc(7));
  for (ChordRing::Key k : {ChordRing::Key{0}, ChordRing::Key{1},
                           ChordRing::Key{UINT64_MAX / 2}, ChordRing::Key{UINT64_MAX}}) {
    const auto s = ring.successor(k);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->node, 7u);
  }
  ring.check_invariants();
}

TEST(Chord, SuccessorIsFirstClockwiseMember) {
  ChordRing ring = ring_of(8);
  ring.check_invariants();
  // For every member key, successor(key) == that member itself.
  for (const RelayDescriptor& d : ring.members()) {
    const auto s = ring.successor(ChordRing::key_of_node(d.node));
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->node, d.node);
  }
}

TEST(Chord, LookupFindsEveryMemberFromEveryStart) {
  ChordRing ring = ring_of(12);
  for (const RelayDescriptor& target : ring.members()) {
    for (const RelayDescriptor& start : ring.members()) {
      const auto r = ring.lookup(ChordRing::key_of_node(target.node),
                                 ChordRing::key_of_node(start.node));
      ASSERT_TRUE(r.descriptor.has_value());
      EXPECT_EQ(r.descriptor->node, target.node);
    }
  }
}

TEST(Chord, FindRelayDistinguishesMembersFromStrangers) {
  ChordRing ring = ring_of(6);
  EXPECT_TRUE(ring.find_relay(3).descriptor.has_value());
  EXPECT_FALSE(ring.find_relay(999).descriptor.has_value());
}

TEST(Chord, LeaveRemovesResponsibility) {
  ChordRing ring = ring_of(6);
  ASSERT_TRUE(ring.find_relay(4).descriptor.has_value());
  ring.leave(4);
  EXPECT_EQ(ring.size(), 5u);
  EXPECT_FALSE(ring.find_relay(4).descriptor.has_value());
  ring.check_invariants();
  // Remaining members still resolvable.
  EXPECT_TRUE(ring.find_relay(5).descriptor.has_value());
}

TEST(Chord, ChurnKeepsInvariants) {
  ChordRing ring;
  for (netsim::NodeId i = 1; i <= 20; ++i) {
    ring.join(desc(i));
    ring.check_invariants();
  }
  for (netsim::NodeId i = 2; i <= 20; i += 2) {
    ring.leave(i);
    ring.check_invariants();
  }
  EXPECT_EQ(ring.size(), 10u);
  for (netsim::NodeId i = 1; i <= 19; i += 2) {
    EXPECT_TRUE(ring.find_relay(i).descriptor.has_value()) << i;
  }
}

TEST(Chord, LookupHopsAreLogarithmic) {
  // Chord's headline property: O(log n) routing hops.
  for (const size_t n : {16u, 64u, 256u}) {
    ChordRing ring = ring_of(n);
    size_t total_hops = 0;
    size_t lookups = 0;
    size_t max_hops = 0;
    for (netsim::NodeId target = 1; target <= n; target += 3) {
      const auto r = ring.lookup(ChordRing::key_of_node(target),
                                 /*start_hint=*/ChordRing::key_of_node(1));
      ASSERT_TRUE(r.descriptor.has_value());
      total_hops += r.hops;
      max_hops = std::max(max_hops, r.hops);
      ++lookups;
    }
    const double avg = static_cast<double>(total_hops) / lookups;
    const double log2n = std::log2(static_cast<double>(n));
    EXPECT_LE(avg, log2n + 2) << "n=" << n;
    EXPECT_LE(max_hops, 3 * static_cast<size_t>(log2n) + 4) << "n=" << n;
  }
}

TEST(Chord, KeysAreWellDistributed) {
  // Sanity: SHA-based ids should not collide for distinct nodes.
  std::set<ChordRing::Key> keys;
  for (netsim::NodeId i = 1; i <= 1000; ++i) {
    EXPECT_TRUE(keys.insert(ChordRing::key_of_node(i)).second);
  }
}

}  // namespace
}  // namespace tenet::tor
