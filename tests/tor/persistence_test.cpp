// Directory-authority state persistence (§3.2 "keep authority keys and
// list of Tor nodes inside the enclaves") and multi-request circuits.
#include <gtest/gtest.h>

#include "tor/network.h"

namespace tenet::tor {
namespace {

std::vector<size_t> indices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

TorNetworkConfig small(Phase phase) {
  TorNetworkConfig cfg;
  cfg.phase = phase;
  cfg.n_authorities = 3;
  cfg.n_relays = 4;
  return cfg;
}

TEST(DirauthPersistence, SealedStateSurvivesReboot) {
  TorNetwork net(small(Phase::kBaseline));
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  ASSERT_EQ(crypto::read_u64(net.authority(0).control(kCtlAdmittedCount), 0),
            net.relay_count());

  // Seal the admitted set; the blob lives with the untrusted host.
  const crypto::Bytes blob = net.authority(0).control(kCtlSealState);
  ASSERT_FALSE(blob.empty());

  // Reboot the authority machine: all in-enclave state is lost...
  net.authority(0).relaunch();
  EXPECT_EQ(crypto::read_u64(net.authority(0).control(kCtlAdmittedCount), 0),
            0u);

  // ...until the host hands back the sealed blob.
  const crypto::Bytes ok = net.authority(0).control(kCtlRestoreState, blob);
  ASSERT_FALSE(ok.empty());
  EXPECT_EQ(ok[0], 1);
  EXPECT_EQ(crypto::read_u64(net.authority(0).control(kCtlAdmittedCount), 0),
            net.relay_count());
}

TEST(DirauthPersistence, HostCannotForgeOrReadSealedState) {
  TorNetwork net(small(Phase::kBaseline));
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  net.approve_all_pending(0);
  const crypto::Bytes blob = net.authority(0).control(kCtlSealState);

  // The relay list must not be readable from the blob.
  const crypto::Bytes nickname = crypto::to_bytes("relay-0");
  EXPECT_EQ(std::search(blob.begin(), blob.end(), nickname.begin(),
                        nickname.end()),
            blob.end());

  // A tampered blob is rejected after reboot.
  crypto::Bytes forged = blob;
  forged[forged.size() / 2] ^= 1;
  net.authority(0).relaunch();
  const crypto::Bytes ok = net.authority(0).control(kCtlRestoreState, forged);
  ASSERT_FALSE(ok.empty());
  EXPECT_EQ(ok[0], 0);
  EXPECT_EQ(crypto::read_u64(net.authority(0).control(kCtlAdmittedCount), 0),
            0u);
}

TEST(DirauthPersistence, AnotherAuthorityCannotUseTheBlob) {
  // Seal keys are platform+identity bound: authority 1's enclave (same
  // code, different platform) cannot unseal authority 0's state.
  TorNetwork net(small(Phase::kBaseline));
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  net.approve_all_pending(0);
  const crypto::Bytes blob = net.authority(0).control(kCtlSealState);
  const crypto::Bytes ok = net.authority(1).control(kCtlRestoreState, blob);
  ASSERT_FALSE(ok.empty());
  EXPECT_EQ(ok[0], 0);
}

TEST(TorCircuit, ManySequentialRequestsOverOneCircuit) {
  TorNetwork net(small(Phase::kBaseline));
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  for (int i = 0; i < 12; ++i) {
    const std::string payload = "request-" + std::to_string(i);
    const auto reply = net.request(0, payload);
    ASSERT_TRUE(reply.has_value()) << payload;
    EXPECT_EQ(*reply, "echo:" + payload);
  }
  EXPECT_EQ(net.destination().requests_seen().size(), 12u);
}

TEST(TorCircuit, TwoClientsShareTheNetwork) {
  TorNetworkConfig cfg = small(Phase::kBaseline);
  cfg.n_clients = 2;
  TorNetwork net(cfg);
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  ASSERT_TRUE(net.fetch_consensus(1, net.authority(1).id()));

  // Overlapping circuits through the same relays.
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  ASSERT_TRUE(net.build_circuit(1, net.relay(1).id(), net.relay(2).id(),
                                net.relay(3).id()));

  const auto r0 = net.request(0, "from client zero");
  const auto r1 = net.request(1, "from client one");
  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r0, "echo:from client zero");
  EXPECT_EQ(*r1, "echo:from client one");

  // Shared relays carry both circuits.
  const crypto::Bytes count = net.relay(1).control(kCtlCircuitCount);
  EXPECT_EQ(crypto::read_u64(count, 0), 2u);
}

TEST(TorCircuit, RebuildAfterTeardown) {
  TorNetwork net(small(Phase::kBaseline));
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));

  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                  net.relay(2).id()))
        << "round " << round;
    const auto reply = net.request(0, "round");
    ASSERT_TRUE(reply.has_value());
    (void)net.client(0).control(kCtlTeardown);
    net.sim().run();
  }
  const crypto::Bytes count = net.relay(0).control(kCtlCircuitCount);
  EXPECT_EQ(crypto::read_u64(count, 0), 0u);  // all torn down
}

TEST(AutoCircuit, InEnclavePathSelectionWorksEndToEnd) {
  TorNetwork net(small(Phase::kBaseline));
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));

  ASSERT_TRUE(net.build_auto_circuit(0));
  const auto reply = net.request(0, "auto path");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "echo:auto path");
}

TEST(AutoCircuit, PicksThreeDistinctRelays) {
  TorNetwork net(small(Phase::kBaseline));
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  ASSERT_TRUE(net.build_auto_circuit(0));

  // Exactly three relays hold exactly one circuit each.
  size_t carrying = 0;
  for (size_t i = 0; i < net.relay_count(); ++i) {
    const uint64_t n =
        crypto::read_u64(net.relay(i).control(kCtlCircuitCount), 0);
    EXPECT_LE(n, 1u) << "relay " << i << " carries a looped circuit";
    carrying += n;
  }
  EXPECT_EQ(carrying, 3u);
}

TEST(AutoCircuit, FailsCleanlyWithoutEnoughRelays) {
  TorNetworkConfig cfg = small(Phase::kBaseline);
  cfg.n_relays = 2;  // not enough for 3 distinct hops
  TorNetwork net(cfg);
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  EXPECT_FALSE(net.build_auto_circuit(0));
  EXPECT_EQ(net.circuit_state(0), CircuitState::kFailed);
  EXPECT_FALSE(net.circuit_failure(0).empty());
}

TEST(AutoCircuit, FullySgxAutoPathAttestsItsRelays) {
  TorNetworkConfig cfg = small(Phase::kFullySgx);
  TorNetwork net(cfg);
  net.join_ring_all();
  ASSERT_TRUE(net.install_directory_from_ring(0));
  ASSERT_TRUE(net.build_auto_circuit(0));
  EXPECT_EQ(net.client_attestations(0), 3u);
  const auto reply = net.request(0, "auto+attested");
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "echo:auto+attested");
}

TEST(ConsensusEpochs, RevoteReflectsMembershipChanges) {
  // Epoch 1: all relays admitted everywhere. Epoch 2: one authority stops
  // voting for relay-0 (e.g. it went unreachable); majority keeps it.
  // Epoch 3: two authorities drop it; it falls out of the consensus.
  TorNetwork net(small(Phase::kBaseline));
  const auto auths = indices(3);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  ASSERT_EQ(net.consensus_of(1)->relays.size(), net.relay_count());

  // "Drop" relay-0 at authority 0 by rebooting it and restoring a sealed
  // state captured... simpler: reboot authority 0 entirely (it admits
  // nothing) and re-vote: majority of the remaining two still carries all
  // relays into the consensus.
  net.authority(0).relaunch();
  net.run_vote(2, auths);
  const auto c2 = net.consensus_of(1);
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->epoch, 2u);
  EXPECT_EQ(c2->relays.size(), net.relay_count());  // 2 of 3 = majority

  // Reboot a second authority: now only 1 of 3 votes for the relays.
  net.authority(1).relaunch();
  net.run_vote(3, auths);
  const auto c3 = net.consensus_of(2);
  ASSERT_TRUE(c3.has_value());
  EXPECT_TRUE(c3->relays.empty());
}

}  // namespace
}  // namespace tenet::tor
