// Integration tests for all four deployment phases of §3.2, including the
// attack catalogue the paper argues SGX defeats.
#include "tor/network.h"

#include <gtest/gtest.h>

namespace tenet::tor {
namespace {

std::vector<size_t> indices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

TorNetworkConfig small(Phase phase) {
  TorNetworkConfig cfg;
  cfg.phase = phase;
  cfg.n_authorities = 3;
  cfg.n_relays = 4;
  cfg.n_clients = 1;
  return cfg;
}

/// Baseline bring-up: publish + manual approval + vote + fetch.
void bring_up_baseline(TorNetwork& net) {
  const auto auths = indices(net.authority_count());
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
}

TEST(TorBaseline, EndToEndRequestThroughCircuit) {
  TorNetwork net(small(Phase::kBaseline));
  bring_up_baseline(net);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  const auto response = net.request(0, "hello tor");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, "echo:hello tor");
  // The destination saw exactly the client's plaintext.
  ASSERT_EQ(net.destination().requests_seen().size(), 1u);
  EXPECT_EQ(crypto::to_string(net.destination().requests_seen()[0]),
            "hello tor");
}

TEST(TorBaseline, ConsensusIsMajorityOfVotes) {
  TorNetwork net(small(Phase::kBaseline));
  const auto auths = indices(net.authority_count());
  net.publish_descriptors(auths);
  // Only two of three authorities approve the relays: still a majority.
  net.approve_all_pending(0);
  net.approve_all_pending(1);
  net.run_vote(1, auths);
  const auto consensus = net.consensus_of(2);
  ASSERT_TRUE(consensus.has_value());
  EXPECT_EQ(consensus->relays.size(), net.relay_count());

  // A relay approved by only one authority does not enter the consensus.
  TorNetwork net2(small(Phase::kBaseline));
  const auto auths2 = indices(net2.authority_count());
  net2.publish_descriptors(auths2);
  net2.approve_all_pending(0);  // single vote only
  net2.run_vote(1, auths2);
  const auto consensus2 = net2.consensus_of(1);
  ASSERT_TRUE(consensus2.has_value());
  EXPECT_TRUE(consensus2->relays.empty());
}

TEST(TorBaseline, TamperingExitModifiesTraffic) {
  // §3.2: a single compromised exit breaks integrity in today's Tor.
  TorNetwork net(small(Phase::kBaseline));
  core::EnclaveNode& evil = net.add_tampering_exit();
  bring_up_baseline(net);  // manual approval admits the evil exit too
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  ASSERT_TRUE(
      net.build_circuit(0, net.relay(0).id(), net.relay(1).id(), evil.id()));
  const auto response = net.request(0, "transfer $100 to alice");
  ASSERT_TRUE(response.has_value());
  // The client received a syntactically valid but TAMPERED response.
  EXPECT_NE(*response, "echo:transfer $100 to alice");
}

TEST(TorBaseline, SnoopingExitLogsPlaintext) {
  // The "bad apple" profiling attack: the exit's operator reads plaintext.
  TorNetwork net(small(Phase::kBaseline));
  core::EnclaveNode& snoop = net.add_snooping_exit();
  bring_up_baseline(net);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  ASSERT_TRUE(
      net.build_circuit(0, net.relay(0).id(), net.relay(1).id(), snoop.id()));
  (void)net.request(0, "secret query");

  const auto log = net.dump_snoop_log(snoop);
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(crypto::to_string(log[0]), "secret query");
}

TEST(TorBaseline, SubvertedAuthorityPlantsMaliciousRelay) {
  // §3.2: "if directory authorities are subverted, attackers can admit
  // malicious ORs". In the baseline a client asking the subverted
  // authority receives the poisoned document.
  TorNetwork net(small(Phase::kBaseline));
  core::EnclaveNode& evil_auth = net.add_subverted_authority(/*planted=*/777);
  bring_up_baseline(net);
  (void)net.run_vote(2, indices(net.authority_count()));
  ASSERT_TRUE(net.fetch_consensus(0, evil_auth.id()));
  const crypto::Bytes wire = net.client(0).control(kCtlGetConsensus);
  const Consensus seen = Consensus::deserialize(wire);
  EXPECT_NE(seen.find(777), nullptr) << "planted relay missing";
}

TEST(TorSgxDirectories, ClientRejectsSubvertedAuthority) {
  // Phase 1: the client attests the directory before trusting it. The
  // subverted build fails attestation; no consensus is accepted from it.
  TorNetwork net(small(Phase::kSgxDirectories));
  core::EnclaveNode& evil_auth = net.add_subverted_authority(777);
  const auto honest = indices(3);
  net.attest_authority_mesh(honest);
  net.publish_descriptors(honest);
  for (const size_t i : honest) net.approve_all_pending(i);
  net.run_vote(1, honest);

  EXPECT_FALSE(net.fetch_consensus(0, evil_auth.id()));
  // A genuine authority still works and its consensus is clean.
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  const Consensus seen =
      Consensus::deserialize(net.client(0).control(kCtlGetConsensus));
  EXPECT_EQ(seen.find(777), nullptr);
}

TEST(TorSgxDirectories, SubvertedAuthorityCannotJoinVoting) {
  // The subverted authority's votes are excluded: honest authorities only
  // accept votes from attested co-authorities over secure channels.
  TorNetwork net(small(Phase::kSgxDirectories));
  (void)net.add_subverted_authority(777);
  const auto all = indices(4);   // includes the subverted one (index 3)
  const auto honest = indices(3);
  net.attest_authority_mesh(all);  // subverted fails to join the mesh
  net.publish_descriptors(honest);
  for (const size_t i : honest) net.approve_all_pending(i);
  // Honest authorities expect votes only from each other.
  net.run_vote(1, honest);

  for (const size_t i : honest) {
    const auto consensus = net.consensus_of(i);
    ASSERT_TRUE(consensus.has_value()) << "authority " << i;
    EXPECT_EQ(consensus->find(777), nullptr);
    EXPECT_EQ(consensus->relays.size(), net.relay_count());
  }
}

TEST(TorSgxDirectories, ForgedPlaintextVoteIgnored) {
  TorNetwork net(small(Phase::kSgxDirectories));
  const auto auths = indices(3);
  net.attest_authority_mesh(auths);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);

  // Attacker injects a plaintext vote for a bogus relay before the vote.
  RelayDescriptor bogus;
  bogus.node = 999;
  bogus.nickname = "bogus";
  bogus.onion_public.assign(128, 1);
  net.sim().post(netsim::Message{/*src=*/4242, net.authority(0).id(),
                                 core::kPortPlain,
                                 encode_vote(1, {bogus})});
  net.sim().run();
  net.run_vote(1, auths);
  const auto consensus = net.consensus_of(0);
  ASSERT_TRUE(consensus.has_value());
  EXPECT_EQ(consensus->find(999), nullptr);
}

TEST(TorSgxDirectories, Table3ClientAttestationsEqualAuthorityCount) {
  TorNetwork net(small(Phase::kSgxDirectories));
  const auto auths = indices(3);
  net.attest_authority_mesh(auths);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);

  for (const size_t i : auths) {
    ASSERT_TRUE(net.fetch_consensus(0, net.authority(i).id()));
  }
  // Table 3: "Tor network (Client): number of authority nodes".
  EXPECT_EQ(net.client_attestations(0), net.authority_count());

  // Re-fetching does not re-attest.
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  EXPECT_EQ(net.client_attestations(0), net.authority_count());
}

TEST(TorSgxRelays, AutoAdmissionWithoutManualApproval) {
  // Phase 2: SGX relays are admitted automatically after attestation —
  // no kCtlApproveRelay calls anywhere.
  TorNetwork net(small(Phase::kSgxRelays));
  const auto auths = indices(3);
  net.attest_authority_mesh(auths);
  net.publish_descriptors(auths);
  net.run_vote(1, auths);
  const auto consensus = net.consensus_of(0);
  ASSERT_TRUE(consensus.has_value());
  EXPECT_EQ(consensus->relays.size(), net.relay_count());

  // Table 3: "Tor network (Authority)" attestation count is proportional
  // to the relay population (plus the fixed authority-mesh attestations).
  EXPECT_EQ(net.authority_attestations(0),
            net.relay_count() + (net.authority_count() - 1));
}

TEST(TorSgxRelays, PatchedRelayFailsAdmission) {
  // "Malicious Tor nodes fail to pass an enclave integrity check."
  TorNetwork net(small(Phase::kSgxRelays));
  core::EnclaveNode& evil = net.add_tampering_exit();
  const auto auths = indices(3);
  net.attest_authority_mesh(auths);
  net.publish_descriptors(auths);
  net.run_vote(1, auths);
  const auto consensus = net.consensus_of(0);
  ASSERT_TRUE(consensus.has_value());
  EXPECT_EQ(consensus->find(evil.id()), nullptr);
  EXPECT_EQ(consensus->relays.size(), net.config().n_relays);  // honest only

  // End-to-end through honest relays still works.
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  const auto response = net.request(0, "ping");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, "echo:ping");
}

TEST(TorFullySgx, DirectorylessOperationViaDht) {
  // Phase 3: no directory authorities at all; membership via Chord.
  TorNetwork net(small(Phase::kFullySgx));
  EXPECT_EQ(net.authority_count(), 0u);
  net.join_ring_all();
  EXPECT_EQ(net.ring().size(), net.relay_count());
  net.ring().check_invariants();

  ASSERT_TRUE(net.install_directory_from_ring(0));
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  const auto response = net.request(0, "dht hello");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, "echo:dht hello");
  // Client attested all three relays (Table 3: "number of reachable exit
  // nodes" scales with the relays the client actually uses).
  EXPECT_EQ(net.client_attestations(0), 3u);
}

TEST(TorFullySgx, EvilRelayExcludedAtCircuitBuild) {
  // The DHT is open (anyone can list themselves) but clients attest
  // relays before use: the bad apple never carries traffic.
  TorNetwork net(small(Phase::kFullySgx));
  core::EnclaveNode& evil = net.add_tampering_exit();
  net.join_ring_all();  // evil relay publishes itself into the ring too
  ASSERT_TRUE(net.install_directory_from_ring(0));

  EXPECT_FALSE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                 evil.id()));
  EXPECT_NE(net.circuit_state(0), CircuitState::kReady);

  // Rebuilding through honest relays succeeds.
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  const auto response = net.request(0, "clean");
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, "echo:clean");
}

TEST(TorWire, AllCellsAreUniformSize) {
  // Traffic-analysis property: every cell on the wire is exactly 512B
  // (plus the 1-byte transport tag).
  TorNetwork net(small(Phase::kBaseline));
  bring_up_baseline(net);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));

  std::vector<size_t> cell_sizes;
  net.sim().set_wiretap([&](const netsim::Message& m) {
    if (!m.payload.empty() &&
        static_cast<TorMsg>(m.payload[0]) == TorMsg::kCell) {
      cell_sizes.push_back(m.payload.size());
    }
  });
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  (void)net.request(0, "sized");
  ASSERT_FALSE(cell_sizes.empty());
  for (const size_t s : cell_sizes) EXPECT_EQ(s, kCellSize + 1);
}

TEST(TorWire, PlaintextNeverVisibleBeforeExit) {
  TorNetwork net(small(Phase::kBaseline));
  bring_up_baseline(net);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));

  const std::string secret = "very-secret-payload-0xDEAD";
  const crypto::Bytes needle = crypto::to_bytes(secret);
  size_t sightings = 0;
  size_t exit_link_sightings = 0;
  const netsim::NodeId exit_node = net.relay(2).id();
  const netsim::NodeId dest = net.destination().id();
  net.sim().set_wiretap([&](const netsim::Message& m) {
    const bool found =
        std::search(m.payload.begin(), m.payload.end(), needle.begin(),
                    needle.end()) != m.payload.end();
    if (!found) return;
    ++sightings;
    if ((m.src == exit_node && m.dst == dest) ||
        (m.src == dest && m.dst == exit_node)) {
      ++exit_link_sightings;
    }
  });
  const auto response = net.request(0, secret);
  ASSERT_TRUE(response.has_value());
  // Plaintext appears ONLY on the exit <-> destination link.
  EXPECT_GT(sightings, 0u);
  EXPECT_EQ(sightings, exit_link_sightings);
}

TEST(TorCircuit, TeardownPropagates) {
  TorNetwork net(small(Phase::kBaseline));
  bring_up_baseline(net);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  for (int i = 0; i < 3; ++i) {
    const crypto::Bytes count =
        net.relay(static_cast<size_t>(i)).control(kCtlCircuitCount);
    EXPECT_EQ(crypto::read_u64(count, 0), 1u) << "relay " << i;
  }
  (void)net.client(0).control(kCtlTeardown);
  net.sim().run();
  for (int i = 0; i < 3; ++i) {
    const crypto::Bytes count =
        net.relay(static_cast<size_t>(i)).control(kCtlCircuitCount);
    EXPECT_EQ(crypto::read_u64(count, 0), 0u) << "relay " << i;
  }
}

TEST(TorCircuit, NonExitRefusesStreamData) {
  // A relay configured as non-exit must not forward stream data.
  TorNetworkConfig cfg = small(Phase::kBaseline);
  TorNetwork net(cfg);
  bring_up_baseline(net);
  ASSERT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  // Build a circuit where the "exit" is relay 3 — all our relays allow
  // exit, so instead send data down a 3-hop circuit and verify only the
  // exit position forwards (the mid relays never contact the server).
  ASSERT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  (void)net.request(0, "x");
  EXPECT_EQ(net.destination().requests_seen().size(), 1u);
}

}  // namespace
}  // namespace tenet::tor
