#include "tor/cell.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace tenet::tor {
namespace {

HopKeys keys_for(uint64_t label) {
  crypto::Drbg rng = crypto::Drbg::from_label(label, "tor.cell.test");
  return HopKeys::derive(rng.bytes(128));
}

TEST(Cell, WireFormIsAlways512Bytes) {
  Cell c;
  c.circuit = 7;
  c.command = CellCommand::kCreate;
  c.payload = crypto::to_bytes("small");
  EXPECT_EQ(c.serialize().size(), kCellSize);

  c.payload = crypto::Bytes(kCellPayload, 0xaa);
  EXPECT_EQ(c.serialize().size(), kCellSize);

  c.payload = crypto::Bytes(kCellPayload + 1, 0);
  EXPECT_THROW(c.serialize(), std::invalid_argument);
}

TEST(Cell, RoundTrips) {
  Cell c;
  c.circuit = 123456;
  c.command = CellCommand::kRelayBackward;
  c.payload = crypto::to_bytes("payload data");
  const Cell d = Cell::deserialize(c.serialize());
  EXPECT_EQ(d.circuit, c.circuit);
  EXPECT_EQ(d.command, c.command);
  EXPECT_EQ(d.payload, c.payload);
}

TEST(Cell, DeserializeRejectsBadSizes) {
  EXPECT_THROW(Cell::deserialize(crypto::Bytes(511, 0)), std::invalid_argument);
  EXPECT_THROW(Cell::deserialize(crypto::Bytes(513, 0)), std::invalid_argument);
}

TEST(HopKeys, DeterministicAndDirectional) {
  crypto::Drbg rng = crypto::Drbg::from_label(1, "tor.hop");
  const crypto::Bytes secret = rng.bytes(128);
  const HopKeys a = HopKeys::derive(secret);
  const HopKeys b = HopKeys::derive(secret);
  EXPECT_EQ(a.forward_key, b.forward_key);
  EXPECT_EQ(a.backward_key, b.backward_key);
  EXPECT_NE(a.forward_key, a.backward_key);
  EXPECT_EQ(a.digest_key.size(), 32u);
}

TEST(RelayPayload, SealOpenRoundTrip) {
  const HopKeys keys = keys_for(2);
  RelayPayload p;
  p.stream = 42;
  p.data = crypto::to_bytes("GET /index.html");
  const auto opened = RelayPayload::open(keys, p.seal(keys));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->stream, 42u);
  EXPECT_EQ(opened->data, p.data);
}

TEST(RelayPayload, WrongKeysNotRecognized) {
  RelayPayload p;
  p.stream = 1;
  p.data = crypto::to_bytes("x");
  EXPECT_FALSE(RelayPayload::open(keys_for(4), p.seal(keys_for(3))).has_value());
}

TEST(RelayPayload, TamperDetected) {
  const HopKeys keys = keys_for(5);
  RelayPayload p;
  p.stream = 1;
  p.data = crypto::to_bytes("do not touch");
  crypto::Bytes sealed = p.seal(keys);
  sealed[sealed.size() - 1] ^= 1;
  EXPECT_FALSE(RelayPayload::open(keys, sealed).has_value());
}

TEST(OnionCrypt, ThreeHopForwardPeeling) {
  // Client wraps; each relay peels one layer; only the exit recognizes.
  OnionCrypt client;
  const HopKeys guard = keys_for(10), mid = keys_for(11), exit = keys_for(12);
  client.add_hop(guard);
  client.add_hop(mid);
  client.add_hop(exit);

  RelayPayload p;
  p.stream = 9;
  p.data = crypto::to_bytes("stream data");
  const crypto::Bytes wrapped = client.wrap_forward(p.seal(exit));

  const crypto::Bytes at_mid = OnionCrypt::peel_forward(guard, wrapped, 0);
  EXPECT_FALSE(RelayPayload::open(guard, at_mid).has_value());
  const crypto::Bytes at_exit = OnionCrypt::peel_forward(mid, at_mid, 0);
  EXPECT_FALSE(RelayPayload::open(mid, at_exit).has_value());
  const crypto::Bytes plain = OnionCrypt::peel_forward(exit, at_exit, 0);
  const auto opened = RelayPayload::open(exit, plain);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->data, p.data);
}

TEST(OnionCrypt, BackwardLayeringUnwraps) {
  OnionCrypt client;
  const HopKeys guard = keys_for(20), mid = keys_for(21), exit = keys_for(22);
  client.add_hop(guard);
  client.add_hop(mid);
  client.add_hop(exit);

  RelayPayload p;
  p.stream = 3;
  p.data = crypto::to_bytes("response");
  crypto::Bytes cell = p.seal(exit);
  cell = OnionCrypt::add_backward(exit, cell, 0);
  cell = OnionCrypt::add_backward(mid, cell, 0);
  cell = OnionCrypt::add_backward(guard, cell, 0);

  const crypto::Bytes plain = client.unwrap_backward(cell);
  const auto opened = RelayPayload::open(exit, plain);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->data, p.data);
}

TEST(OnionCrypt, SequenceCountersAdvanceInLockstep) {
  OnionCrypt client;
  const HopKeys guard = keys_for(30), exit = keys_for(31);
  client.add_hop(guard);
  client.add_hop(exit);

  // Several cells in a row: relay-side counters advance identically.
  for (uint64_t seq = 0; seq < 5; ++seq) {
    RelayPayload p;
    p.stream = static_cast<uint32_t>(seq);
    p.data = crypto::to_bytes("cell " + std::to_string(seq));
    const crypto::Bytes wrapped = client.wrap_forward(p.seal(exit));
    const crypto::Bytes at_exit = OnionCrypt::peel_forward(guard, wrapped, seq);
    const auto opened =
        RelayPayload::open(exit, OnionCrypt::peel_forward(exit, at_exit, seq));
    ASSERT_TRUE(opened.has_value()) << "seq " << seq;
    EXPECT_EQ(opened->stream, seq);
  }
}

TEST(OnionCrypt, MiddleHopSeesOnlyCiphertext) {
  OnionCrypt client;
  const HopKeys guard = keys_for(40), mid = keys_for(41), exit = keys_for(42);
  client.add_hop(guard);
  client.add_hop(mid);
  client.add_hop(exit);
  const crypto::Bytes secret = crypto::to_bytes("the user visited example.com");
  RelayPayload p;
  p.stream = 1;
  p.data = secret;
  const crypto::Bytes wrapped = client.wrap_forward(p.seal(exit));
  const crypto::Bytes at_mid = OnionCrypt::peel_forward(guard, wrapped, 0);
  // The plaintext never appears in what the middle relay handles.
  EXPECT_EQ(std::search(wrapped.begin(), wrapped.end(), secret.begin(),
                        secret.end()),
            wrapped.end());
  EXPECT_EQ(std::search(at_mid.begin(), at_mid.end(), secret.begin(),
                        secret.end()),
            at_mid.end());
}

}  // namespace
}  // namespace tenet::tor
