// Application-level fault drills: each of the paper's three case studies
// survives an enclave crash mid-scenario. Tor directory authorities come
// back with their admitted-relay set (sealed checkpoint); the routing
// controller regains the policy set as ASes re-attest and re-submit; a
// DPI middlebox restarts blind and fails open or closed by policy until
// the endpoints re-provision its keys.
#include <gtest/gtest.h>

#include "mbox/scenario.h"
#include "routing/scenario.h"
#include "tor/network.h"

namespace tenet {
namespace {

std::vector<size_t> indices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

// ---------------------------------------------------------------------------
// Tor: a crashed directory authority recovers its admitted-relay set
// ---------------------------------------------------------------------------

TEST(TorRecovery, AuthorityRecoversAdmittedRelaysFromSealedState) {
  tor::TorNetworkConfig cfg;
  cfg.phase = tor::Phase::kSgxDirectories;
  cfg.n_authorities = 3;
  cfg.n_relays = 4;
  cfg.n_clients = 1;
  cfg.robust = true;
  tor::TorNetwork net(cfg);

  const auto auths = indices(net.authority_count());
  net.attest_authority_mesh(auths);
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  ASSERT_TRUE(net.consensus_of(0).has_value());
  ASSERT_EQ(crypto::read_u64(net.authority(0).control(tor::kCtlAdmittedCount), 0),
            net.relay_count());

  ASSERT_TRUE(net.crash_and_recover_authority(0));
  // The admitted set survived WITHOUT re-publishing any descriptor.
  EXPECT_EQ(crypto::read_u64(net.authority(0).control(tor::kCtlAdmittedCount), 0),
            net.relay_count());

  // The restarted enclave lost its channels; re-running the mesh lets it
  // re-attest, and its co-authorities re-handshake the fresh instance.
  net.attest_authority_mesh(auths);
  EXPECT_GE(net.authority(1).query(core::kQueryRehandshakes), 1u);

  // Epoch 2 works end to end on the recovered admitted set.
  net.run_vote(2, auths);
  const auto consensus = net.consensus_of(0);
  ASSERT_TRUE(consensus.has_value());
  EXPECT_EQ(consensus->relays.size(), net.relay_count());
  EXPECT_EQ(consensus->epoch, 2u);
}

// ---------------------------------------------------------------------------
// Routing: controller crash; ASes re-attest and re-submit automatically
// ---------------------------------------------------------------------------

TEST(RoutingRecovery, ControllerCrashHealsThroughReattestation) {
  routing::ScenarioConfig cfg;
  cfg.n_ases = 4;
  cfg.robust = true;
  routing::RoutingDeployment dep(cfg);
  dep.run_attestation_phase();
  dep.run_routing_phase();

  ASSERT_TRUE(dep.crash_and_recover_controller());

  // Round two: every AS's first record is sealed under the dead channel's
  // key; the fresh controller NACKs, the ASes re-handshake, re-submit via
  // on_peer_attested, and the controller recomputes and redistributes.
  dep.run_routing_phase();  // throws if any AS ends up without routes

  core::EnclaveNode* controller = dep.controller_node();
  ASSERT_NE(controller, nullptr);
  EXPECT_GE(controller->query(core::kQueryRejectedRecords), cfg.n_ases);
  uint64_t total_rehandshakes = 0;
  for (const auto& [asn, policy] : dep.policies()) {
    core::EnclaveNode* as = dep.as_node(asn);
    ASSERT_NE(as, nullptr);
    EXPECT_TRUE(dep.as_has_routes(asn));
    total_rehandshakes += as->query(core::kQueryRehandshakes);
  }
  EXPECT_GE(total_rehandshakes, cfg.n_ases);
}

// ---------------------------------------------------------------------------
// Middlebox: restart loses keys by design; policy decides open vs closed
// ---------------------------------------------------------------------------

mbox::MboxScenarioConfig mbox_cfg(bool fail_closed) {
  mbox::MboxScenarioConfig cfg;
  cfg.n_middleboxes = 1;
  cfg.robust = true;
  cfg.policy.fail_closed = fail_closed;
  return cfg;
}

TEST(MboxRecovery, FailOpenForwardsOpaqueUntilReprovisioned) {
  mbox::MboxDeployment dep(mbox_cfg(/*fail_closed=*/false));
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);
  dep.provision_from_server(sid);
  dep.send(sid, "clean before crash");
  ASSERT_GE(dep.inspected(0), 1u);
  ASSERT_TRUE(dep.session_active(0, sid));

  ASSERT_TRUE(dep.crash_and_recover_mbox(0));
  // Routing state came back from the checkpoint; the keys deliberately
  // died with the enclave.
  EXPECT_FALSE(dep.session_active(0, sid));

  // Fail-open: traffic flows as opaque ciphertext (endpoint TLS intact),
  // just uninspected.
  dep.send(sid, "uninspected but delivered");
  EXPECT_GE(dep.opaque_forwarded(0), 1u);
  EXPECT_EQ(dep.blocked(0), 0u);
  const auto got = dep.server_received(sid);
  EXPECT_NE(std::find(got.begin(), got.end(),
                      std::string("uninspected but delivered")),
            got.end());

  // Re-provisioning: the first attempt is sealed for the dead instance and
  // NACKed, which re-handshakes the channel; the second lands.
  dep.provision_from_client(sid);
  dep.provision_from_client(sid);
  dep.provision_from_server(sid);
  dep.provision_from_server(sid);
  EXPECT_GE(dep.client_node().query(core::kQueryRehandshakes), 1u);
  EXPECT_TRUE(dep.session_active(0, sid));

  const uint64_t inspected_before = dep.inspected(0);
  dep.send(sid, "ATTACK after recovery");
  EXPECT_GT(dep.inspected(0), inspected_before);
  EXPECT_GE(dep.alerts(0), 1u);
}

TEST(MboxRecovery, FailClosedDropsUntilReprovisioned) {
  mbox::MboxDeployment dep(mbox_cfg(/*fail_closed=*/true));
  const uint32_t sid = dep.open_session();
  ASSERT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);
  dep.provision_from_server(sid);
  dep.send(sid, "clean before crash");
  const auto before = dep.server_received(sid);

  ASSERT_TRUE(dep.crash_and_recover_mbox(0));
  dep.send(sid, "must not pass");
  EXPECT_GE(dep.blocked(0), 1u);
  EXPECT_EQ(dep.opaque_forwarded(0), 0u);
  // Nothing new reached the server while the box was blind.
  EXPECT_EQ(dep.server_received(sid), before);

  // Service resumes once the endpoints re-provision.
  dep.provision_from_client(sid);
  dep.provision_from_client(sid);
  dep.provision_from_server(sid);
  dep.provision_from_server(sid);
  ASSERT_TRUE(dep.session_active(0, sid));
  dep.send(sid, "flows again");
  const auto got = dep.server_received(sid);
  EXPECT_NE(std::find(got.begin(), got.end(), std::string("flows again")),
            got.end());
}

}  // namespace
}  // namespace tenet
