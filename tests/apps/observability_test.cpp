// Fleet observability end-to-end (DESIGN.md §16), exercised over a real
// sharded chaos drill: kill one shard of a replicated routing control
// plane mid-run, let the survivors fail over, then heal it.
//
//   * Exact tiling: control-plane span selfs plus the untraced remainder
//     reproduce the tracer's grand totals AND the independent per-node
//     cost models, to the instruction — across the enclave kill/restart.
//   * Attribution: replication / state_transfer / failover spans appear,
//     each tagged with the emitting shard id.
//   * Event log: the drill emits the expected fleet events (shard down,
//     failover adoption, snapshot install, shard up), the ring stays
//     consistent, and a same-seed replay is byte-identical JSONL.
//   * Health model: the victim shard reads failed while down — with the
//     outage attributed — and is serving again after the heal.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "routing/scenario.h"
#include "telemetry/events.h"
#include "telemetry/health.h"
#include "telemetry/scrape.h"
#include "telemetry/trace.h"

#if TENET_TELEMETRY_ENABLED

namespace tenet {
namespace {

using telemetry::EventType;
using telemetry::Tracer;

class TracingOn {
 public:
  TracingOn() {
    telemetry::set_enabled(true);
    telemetry::tracer().reset();
    telemetry::event_log().clear();
  }
  ~TracingOn() {
    telemetry::set_enabled(false);
    telemetry::tracer().reset();
    telemetry::event_log().clear();
  }
};

/// Everything captured from one traced chaos drill, copied out before the
/// deployment (and the tracer's virtual clock) goes away.
struct DrillRun {
  std::vector<Tracer::Event> spans;
  telemetry::TraceCost total;
  telemetry::TraceCost untraced;
  sgx::CostModel::Snapshot nodes;  // summed over every platform
  std::string events_jsonl;
  uint64_t shard_down = 0;
  uint64_t shard_up = 0;
  uint64_t failovers = 0;
  uint64_t snapshots = 0;
  uint64_t hops_recorded = 0;  // Σ per-shard hop-latency histogram counts
  bool log_consistent = false;
  telemetry::FleetHealth mid;  // evaluated while the victim was down
  telemetry::FleetHealth end;  // evaluated after the heal settled
  uint32_t victim = 0;
};

DrillRun run_chaos_drill() {
  TracingOn guard;
  DrillRun r;
  telemetry::Scraper scraper;
  routing::ScenarioConfig cfg;
  cfg.n_ases = 12;
  cfg.seed = 5;
  cfg.shards = 3;
  cfg.robust = true;  // ASes re-attest + re-submit after failover on their own
  routing::RoutingDeployment dep(cfg);
  dep.sim().attach_scraper(&scraper, /*period=*/0.01);
  dep.run_attestation_phase();
  dep.run_routing_phase();

  // Kill a non-owner shard that actually fronts at least one AS, so the
  // drill moves real clients and real admitted state.
  size_t victim = 0;
  for (size_t s = 1; s < dep.shard_count() && victim == 0; ++s) {
    for (const auto& [asn, policy] : dep.policies()) {
      if (dep.shard_of_as(asn) == s) {
        victim = s;
        break;
      }
    }
  }
  EXPECT_NE(victim, 0u) << "no extra shard fronts an AS at this seed";
  r.victim = static_cast<uint32_t>(victim);

  EXPECT_TRUE(dep.kill_shard(victim));
  dep.sim().run();
  const telemetry::HealthModel model;
  r.mid = model.evaluate(scraper, telemetry::event_log());

  EXPECT_TRUE(dep.heal_shard(victim));
  dep.sim().run();
  r.end = model.evaluate(scraper, telemetry::event_log());

  for (size_t s = 0; s < dep.shard_count(); ++s) {
    r.nodes.add(dep.shard_node(s)->cost_snapshot());
  }
  for (const auto& [asn, policy] : dep.policies()) {
    r.nodes.add(dep.as_node(asn)->cost_snapshot());
  }

  for (size_t s = 0; s < dep.shard_count(); ++s) {
    r.hops_recorded += telemetry::registry()
                           .histogram("shard.s" + std::to_string(s) +
                                      ".hop_latency_us")
                           .count();
  }

  const telemetry::EventLog& log = telemetry::event_log();
  r.events_jsonl = log.jsonl();
  r.shard_down = log.count(EventType::kShardDown);
  r.shard_up = log.count(EventType::kShardUp);
  r.failovers = log.count(EventType::kFailoverAdopted);
  r.snapshots = log.count(EventType::kSnapshotInstalled);
  r.log_consistent = log.consistent();

  r.spans = telemetry::tracer().events();
  r.total = telemetry::tracer().cost_total();
  r.untraced = telemetry::tracer().cost_untraced();
  return r;
}

/// One shared drill per test binary: the drill is the expensive part, the
/// assertions are cheap. The first (cached) run also serves as the warmup
/// that populates process-global crypto caches before the byte-identity
/// replay below.
const DrillRun& drill() {
  static const DrillRun r = run_chaos_drill();
  return r;
}

const telemetry::ShardHealth* shard_of(const telemetry::FleetHealth& fleet,
                                       uint32_t id) {
  for (const auto& s : fleet.shards) {
    if (s.shard == id) return &s;
  }
  return nullptr;
}

// --- Exact tiling across the kill/heal cycle ---------------------------

TEST(Observability, SpanSelfsPlusUntracedTileChaosDrillExactly) {
  const DrillRun& r = drill();
  // Tracer-internal identity: span selfs + untraced == grand total.
  telemetry::TraceCost sum = r.untraced;
  for (const auto& e : r.spans) sum.add(e.self);
  EXPECT_EQ(sum, r.total);
  ASSERT_TRUE(r.total.any());

  // Cross-check against the independent per-node cost models. The victim
  // shard's enclave died and was relaunched mid-run; Platform keeps the
  // retired enclave's meter, so the identity must survive the restart.
  EXPECT_EQ(r.total.sgx_user, r.nodes.sgx_user);
  EXPECT_EQ(r.total.sgx_priv, r.nodes.sgx_priv);
  EXPECT_EQ(r.total.transitions, r.nodes.transitions);
  EXPECT_EQ(r.total.normal + r.total.crypto + r.total.paging, r.nodes.normal);
}

TEST(Observability, ControlPlaneSpansAreShardTagged) {
  const DrillRun& r = drill();
  uint64_t replication = 0;
  uint64_t state_transfer = 0;
  uint64_t failover = 0;
  for (const auto& e : r.spans) {
    const std::string cat = e.cat == nullptr ? "" : e.cat;
    if (cat != "replication" && cat != "state_transfer" && cat != "failover") {
      continue;
    }
    // Every control-plane span carries the emitting shard's id.
    EXPECT_NE(e.shard, Tracer::kNoShard) << cat << "/" << e.name;
    EXPECT_LT(e.shard, 3u) << cat << "/" << e.name;
    if (cat == "replication") ++replication;
    if (cat == "state_transfer") ++state_transfer;
    if (cat == "failover") ++failover;
  }
  // The drill replicates admissions, serves a rejoin snapshot and adopts
  // the dead shard's batch — all three phases must be present.
  EXPECT_GT(replication, 0u);
  EXPECT_GT(state_transfer, 0u);
  EXPECT_GT(failover, 0u);
}

// --- Structured event log ----------------------------------------------

TEST(Observability, DrillEmitsFleetEventsAndRingStaysConsistent) {
  const DrillRun& r = drill();
  EXPECT_TRUE(r.log_consistent);
  EXPECT_GT(r.shard_down, 0u);   // survivors saw the victim die
  EXPECT_GT(r.shard_up, 0u);     // ...and saw it come back
  EXPECT_GT(r.failovers, 0u);    // admitted batch adopted across shards
  EXPECT_GT(r.snapshots, 0u);    // rejoin merged a snapshot
  EXPECT_FALSE(r.events_jsonl.empty());
}

TEST(Observability, SameSeedReplayYieldsByteIdenticalEventLog) {
  const DrillRun& warm = drill();  // warmup (crypto caches) + baseline
  const DrillRun replay = run_chaos_drill();
  EXPECT_EQ(warm.events_jsonl, replay.events_jsonl);
}

// --- Health model over the drill ---------------------------------------

TEST(Observability, VictimShardReadsFailedWhileDownAndServesAfterHeal) {
  const DrillRun& r = drill();

  // Mid-drill: the victim is down with no later up — failed, outage
  // attributed — and the fleet inherits the worst shard state.
  const telemetry::ShardHealth* mid = shard_of(r.mid, r.victim);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->state, telemetry::HealthState::kFailed);
  EXPECT_GT(mid->down_since_us, 0u);
  EXPECT_EQ(r.mid.state, telemetry::HealthState::kFailed);

  // After the heal: back up (never failed), with the failover adoption,
  // the rejoin snapshot and the heal duration attributed to it.
  const telemetry::ShardHealth* end = shard_of(r.end, r.victim);
  ASSERT_NE(end, nullptr);
  EXPECT_NE(end->state, telemetry::HealthState::kFailed);
  EXPECT_EQ(end->down_since_us, 0u);
  EXPECT_GT(end->last_heal_us, 0u);
  EXPECT_GT(end->snapshots_installed, 0u);
  EXPECT_EQ(r.end.epc_pressure_events, r.mid.epc_pressure_events);
}

TEST(Observability, HopLatencyHistogramsAreRecordedPerShard) {
  const DrillRun& r = drill();
  // Replication hops landed in the per-shard hop-latency histograms (each
  // ring leg re-stamps its send time, so every hop is one sample).
  EXPECT_GT(r.hops_recorded, 0u);
}

}  // namespace
}  // namespace tenet

#endif  // TENET_TELEMETRY_ENABLED
