// Scripted-scenario replays with switchless transitions on vs. off.
//
// DESIGN.md §10's determinism argument, checked end-to-end: the same
// scripted run (same seed, same inputs) must produce byte-identical
// application output in both modes — the rings may only change the cost
// accounting. Each scenario also checks that switchless actually engages
// (hits recorded, fewer transitions), so the equality is not vacuous.
#include <gtest/gtest.h>

#include "mbox/scenario.h"
#include "tor/network.h"

namespace tenet {
namespace {

// --- Middlebox chain (§3.3) --------------------------------------------

struct MboxRunResult {
  std::vector<std::string> at_server;
  std::vector<std::string> at_client;
  uint64_t alerts = 0;
  uint64_t inspected = 0;
  uint64_t transitions = 0;
  uint64_t switchless_hits = 0;
  bool recovered_switchless = true;
};

MboxRunResult run_mbox_scenario(bool switchless) {
  mbox::MboxScenarioConfig cfg;
  cfg.n_middleboxes = 2;
  cfg.patterns = {"ATTACK"};
  cfg.policy.require_both_endpoints = true;
  cfg.robust = true;  // exercise the crash/recover path too
  cfg.switchless = switchless;
  mbox::MboxDeployment dep(cfg);

  const uint32_t sid = dep.open_session();
  EXPECT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);
  dep.provision_from_server(sid);
  dep.send(sid, "first benign request");
  dep.send(sid, "an ATTACK mid-stream");
  // Crash middlebox 0 mid-session: relaunch must re-apply the switchless
  // configuration (EnclaveNode::relaunch) and replay identically.
  EXPECT_TRUE(dep.crash_and_recover_mbox(0));
  // First re-provision attempt is sealed for the dead instance and NACKed
  // (re-handshakes the channel); the second lands — same as recovery_test.
  dep.provision_from_client(sid);
  dep.provision_from_client(sid);
  dep.provision_from_server(sid);
  dep.provision_from_server(sid);
  dep.send(sid, "post-recovery ATTACK too");

  MboxRunResult r;
  r.at_server = dep.server_received(sid);
  r.at_client = dep.client_received(sid);
  r.alerts = dep.alerts(1);  // box 1 saw the whole session
  r.inspected = dep.inspected(1);
  r.recovered_switchless =
      dep.mbox_node(0).switchless_enabled() == switchless;
  for (core::EnclaveNode* node :
       {&dep.client_node(), &dep.server_node(), &dep.mbox_node(0),
        &dep.mbox_node(1)}) {
    const auto snap = node->cost_snapshot();
    r.transitions += snap.transitions;
    r.switchless_hits += snap.switchless_hits;
  }
  return r;
}

TEST(SwitchlessReplay, MboxScenarioIsByteIdentical) {
  const MboxRunResult sync = run_mbox_scenario(false);
  const MboxRunResult swl = run_mbox_scenario(true);

  // Application layer: byte-identical in both directions, identical DPI
  // verdicts — across handshake, provisioning, inspection, a crash and
  // a recovery.
  EXPECT_EQ(sync.at_server, swl.at_server);
  EXPECT_EQ(sync.at_client, swl.at_client);
  EXPECT_EQ(sync.alerts, swl.alerts);
  EXPECT_EQ(sync.inspected, swl.inspected);
  ASSERT_FALSE(swl.at_server.empty());

  // Cost layer: switchless really engaged and removed transitions.
  EXPECT_EQ(sync.switchless_hits, 0u);
  EXPECT_GT(swl.switchless_hits, 0u);
  EXPECT_LT(swl.transitions, sync.transitions);
  // The restarted middlebox came back with its configured mode.
  EXPECT_TRUE(sync.recovered_switchless);
  EXPECT_TRUE(swl.recovered_switchless);
}

// --- Tor overlay (§3.2) ------------------------------------------------

struct TorRunResult {
  std::string response;
  std::vector<crypto::Bytes> destination_saw;
  uint64_t transitions = 0;
  uint64_t switchless_hits = 0;
};

TorRunResult run_tor_scenario(bool switchless) {
  tor::TorNetworkConfig cfg;
  cfg.phase = tor::Phase::kBaseline;
  cfg.n_authorities = 3;
  cfg.n_relays = 3;
  cfg.n_clients = 1;
  cfg.switchless = switchless;
  tor::TorNetwork net(cfg);

  std::vector<size_t> auths{0, 1, 2};
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  EXPECT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  EXPECT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));

  TorRunResult r;
  const auto response = net.request(0, "switchless replay probe");
  EXPECT_TRUE(response.has_value());
  if (response) r.response = *response;
  r.destination_saw = net.destination().requests_seen();
  for (size_t i = 0; i < net.authority_count(); ++i) {
    const auto snap = net.authority(i).cost_snapshot();
    r.transitions += snap.transitions;
    r.switchless_hits += snap.switchless_hits;
  }
  for (size_t i = 0; i < net.relay_count(); ++i) {
    const auto snap = net.relay(i).cost_snapshot();
    r.transitions += snap.transitions;
    r.switchless_hits += snap.switchless_hits;
  }
  {
    const auto snap = net.client(0).cost_snapshot();
    r.transitions += snap.transitions;
    r.switchless_hits += snap.switchless_hits;
  }
  return r;
}

TEST(SwitchlessReplay, TorScenarioIsByteIdentical) {
  const TorRunResult sync = run_tor_scenario(false);
  const TorRunResult swl = run_tor_scenario(true);

  EXPECT_EQ(sync.response, swl.response);
  EXPECT_EQ(sync.destination_saw, swl.destination_saw);
  EXPECT_EQ(sync.response, "echo:switchless replay probe");

  EXPECT_EQ(sync.switchless_hits, 0u);
  EXPECT_GT(swl.switchless_hits, 0u);
  EXPECT_LT(swl.transitions, sync.transitions);
}

}  // namespace
}  // namespace tenet
