// Causal-tracing propagation invariants (DESIGN.md §11), end-to-end:
//
//   * Determinism: a fixed seed produces a byte-identical Chrome-trace
//     export on every replay — ids, timestamps and cost deltas included.
//   * Transition-transparency: switchless on vs. off yields the same
//     span DAG shape once transition-layer (sgx/epc) spans are
//     contracted; only who-ran-when and the deferred flags differ.
//   * Retransmissions stay in their request: a retransmitted attestation
//     challenge carries the original trace id plus the retx flag.
//   * Exact attribution: span self-costs plus the untraced remainder
//     reproduce the cost-model totals of every node, to the instruction.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"
#include "mbox/scenario.h"
#include "telemetry/scrape.h"
#include "telemetry/trace.h"
#include "tor/network.h"

#if TENET_TELEMETRY_ENABLED

namespace tenet {
namespace {

using telemetry::TraceContext;
using telemetry::Tracer;

/// Everything captured from one traced scenario run, copied out before
/// the simulator (and its tracer clock) goes away.
struct TraceRun {
  std::string json;
  std::vector<Tracer::Event> events;
  telemetry::TraceCost total;
  telemetry::TraceCost untraced;
  sgx::CostModel::Snapshot nodes;  // summed over every platform
};

class TracingOn {
 public:
  TracingOn() {
    telemetry::set_enabled(true);
    telemetry::tracer().reset();
  }
  ~TracingOn() {
    telemetry::set_enabled(false);
    telemetry::tracer().reset();
  }
};

void capture(TraceRun& r) {
  r.json = telemetry::tracer().chrome_json();
  r.events = telemetry::tracer().events();
  r.total = telemetry::tracer().cost_total();
  r.untraced = telemetry::tracer().cost_untraced();
}

TraceRun run_mbox(bool switchless) {
  TracingOn guard;
  TraceRun r;
  mbox::MboxScenarioConfig cfg;
  cfg.n_middleboxes = 2;
  cfg.patterns = {"ATTACK"};
  cfg.switchless = switchless;
  mbox::MboxDeployment dep(cfg);
  const uint32_t sid = dep.open_session();
  EXPECT_TRUE(dep.established(sid));
  dep.provision_from_client(sid);
  dep.provision_from_server(sid);
  dep.send(sid, "hello middleboxes");
  dep.send(sid, "an ATTACK mid-stream");
  for (core::EnclaveNode* node :
       {&dep.client_node(), &dep.server_node(), &dep.mbox_node(0),
        &dep.mbox_node(1)}) {
    r.nodes.add(node->cost_snapshot());
  }
  capture(r);
  return r;
}

TraceRun run_tor() {
  TracingOn guard;
  TraceRun r;
  tor::TorNetworkConfig cfg;
  cfg.phase = tor::Phase::kBaseline;
  cfg.n_authorities = 3;
  cfg.n_relays = 3;
  cfg.n_clients = 1;
  tor::TorNetwork net(cfg);
  std::vector<size_t> auths{0, 1, 2};
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  EXPECT_TRUE(net.fetch_consensus(0, net.authority(0).id()));
  EXPECT_TRUE(net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                                net.relay(2).id()));
  const auto response = net.request(0, "trace probe");
  EXPECT_TRUE(response.has_value());
  capture(r);
  return r;
}

/// Per-trace root-to-leaf label paths with transition-layer (sgx/epc)
/// spans contracted out — the switchless-invariant DAG shape. Returns
/// one sorted path bundle per trace, sorted, so the comparison is
/// independent of trace/span id numbering.
std::vector<std::string> dag_shape(const std::vector<Tracer::Event>& events) {
  std::map<uint64_t, std::vector<const Tracer::Event*>> traces;
  for (const auto& e : events) {
    if (e.span_id != 0 && e.trace_id != 0) traces[e.trace_id].push_back(&e);
  }
  std::vector<std::string> shapes;
  for (auto& [tid, spans] : traces) {
    std::map<uint64_t, const Tracer::Event*> by_id;
    std::map<uint64_t, std::vector<const Tracer::Event*>> children;
    for (const auto* e : spans) by_id[e->span_id] = e;
    std::vector<const Tracer::Event*> roots;
    for (const auto* e : spans) {
      if (by_id.count(e->parent_span_id) != 0) {
        children[e->parent_span_id].push_back(e);
      } else {
        roots.push_back(e);
      }
    }
    std::vector<std::string> paths;
    // Iterative DFS, path carried alongside.
    std::vector<std::pair<const Tracer::Event*, std::string>> stack;
    for (const auto* root : roots) stack.emplace_back(root, "");
    while (!stack.empty()) {
      auto [e, prefix] = stack.back();
      stack.pop_back();
      const std::string cat = e->cat;
      std::string path = prefix;
      if (cat != "sgx" && cat != "epc") {  // contract transition spans
        if (!path.empty()) path += ';';
        path += cat + ":" + e->name;
      }
      const auto kids = children.find(e->span_id);
      if (kids == children.end()) {
        if (!path.empty()) paths.push_back(path);
        continue;
      }
      for (const auto* kid : kids->second) stack.emplace_back(kid, path);
    }
    std::sort(paths.begin(), paths.end());
    std::string bundle;
    for (const auto& p : paths) {
      bundle += p;
      bundle += '\n';
    }
    shapes.push_back(std::move(bundle));
  }
  std::sort(shapes.begin(), shapes.end());
  return shapes;
}

// --- Determinism -------------------------------------------------------

// The first run in a process pays one-time crypto precomputation (cached
// group contexts, fixed-base DH tables) whose work lands in that run's
// span costs; a warmup run makes the compared runs cache-identical, the
// same steady state every fresh process converges to.

TEST(TraceReplay, MboxExportIsByteIdenticalAcrossRuns) {
  (void)run_mbox(false);  // warmup: build process-global crypto caches
  const TraceRun a = run_mbox(false);
  const TraceRun b = run_mbox(false);
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a.json, b.json);
}

TEST(TraceReplay, TorExportIsByteIdenticalAcrossRuns) {
  (void)run_tor();  // warmup: build process-global crypto caches
  const TraceRun a = run_tor();
  const TraceRun b = run_tor();
  ASSERT_FALSE(a.events.empty());
  EXPECT_EQ(a.json, b.json);
}

// --- Switchless transparency ------------------------------------------

TEST(TraceReplay, SwitchlessOnOffSameDagShape) {
  const TraceRun sync = run_mbox(false);
  const TraceRun swl = run_mbox(true);
  const auto sync_shape = dag_shape(sync.events);
  const auto swl_shape = dag_shape(swl.events);
  ASSERT_FALSE(sync_shape.empty());
  EXPECT_EQ(sync_shape, swl_shape);
  // Deferral is visible only as a flag: spans causally downstream of a
  // ring-deferred ocall carry kFlagDeferred in the switchless run and
  // never in the synchronous one.
  const auto deferred = [](const TraceRun& r) {
    size_t n = 0;
    for (const auto& e : r.events) {
      if ((e.flags & TraceContext::kFlagDeferred) != 0) ++n;
    }
    return n;
  };
  EXPECT_EQ(deferred(sync), 0u);
  EXPECT_GT(deferred(swl), 0u);
}

// --- Retransmission ----------------------------------------------------

/// Minimal recoverable app so connect_to exercises the attestation retry
/// path (mirrors tests/core/recovery_test.cpp's world).
class PingApp final : public core::SecureApp {
 public:
  using SecureApp::SecureApp;
  void on_secure_message(core::Ctx&, netsim::NodeId,
                         crypto::BytesView) override {}
};

TEST(TraceReplay, RetransmissionKeepsOriginalTraceWithRetxFlag) {
  TracingOn guard;
  netsim::Simulator sim(/*seed=*/1);
  sgx::Authority authority;
  core::OpenProject project("traceping", "tenet traceping v1\n", nullptr);
  const sgx::AttestationConfig acfg = project.policy();
  sgx::EnclaveImage image = project.build();
  const sgx::Authority* auth = &authority;
  image.factory = [auth, acfg] {
    auto app = std::make_unique<PingApp>(*auth, acfg);
    app->enable_recovery(netsim::RetryPolicy{});
    return app;
  };
  core::EnclaveNode a(sim, authority, "tp-a", project.foundation(), image);
  core::EnclaveNode b(sim, authority, "tp-b", project.foundation(), image);
  a.start();
  b.start();

  struct Tap {
    uint64_t trace_id;
    uint8_t flags;
  };
  std::vector<Tap> challenges;
  sim.set_wiretap([&](const netsim::Message& m) {
    if (m.port == core::kPortAttestChallenge) {
      challenges.push_back(Tap{m.trace.trace_id, m.trace.flags});
    }
  });

  // First challenge dies on a cut link; the backoff retransmission goes
  // through after the heal.
  sim.cut_link(a.id(), b.id());
  a.connect_to(b.id());
  sim.heal_link(a.id(), b.id());
  sim.run();

  ASSERT_GE(challenges.size(), 2u);
  // Every challenge frame of this connect belongs to one trace, minted
  // at the request origin.
  EXPECT_NE(challenges[0].trace_id, 0u);
  for (const Tap& t : challenges) {
    EXPECT_EQ(t.trace_id, challenges[0].trace_id);
  }
  // The original is unflagged; the retransmissions are marked.
  EXPECT_EQ(challenges[0].flags & TraceContext::kFlagRetx, 0);
  size_t retx = 0;
  for (size_t i = 1; i < challenges.size(); ++i) {
    if ((challenges[i].flags & TraceContext::kFlagRetx) != 0) ++retx;
  }
  EXPECT_GE(retx, 1u);
}

// --- Exact cost attribution -------------------------------------------

TEST(TraceCosts, SpanSelfsPlusUntracedMatchCostModelTotals) {
  const TraceRun r = run_mbox(true);
  // Tracer-internal identity: span selfs + untraced == grand total.
  telemetry::TraceCost sum = r.untraced;
  for (const auto& e : r.events) sum.add(e.self);
  EXPECT_EQ(sum, r.total);
  ASSERT_TRUE(r.total.any());

  // Cross-check against the independent per-node cost models: every SGX
  // instruction, transition and normal-instruction charge mirrored into
  // the trace landed exactly once. The models fold crypto work and page
  // zeroing into normal_instructions(); the tracer keeps them as separate
  // attribution columns.
  EXPECT_EQ(r.total.sgx_user, r.nodes.sgx_user);
  EXPECT_EQ(r.total.sgx_priv, r.nodes.sgx_priv);
  EXPECT_EQ(r.total.transitions, r.nodes.transitions);
  EXPECT_EQ(r.total.normal + r.total.crypto + r.total.paging,
            r.nodes.normal);
}

TEST(TraceCosts, EveryTraceHasOneConnectedDag) {
  const TraceRun r = run_mbox(false);
  std::map<uint64_t, std::vector<const Tracer::Event*>> traces;
  for (const auto& e : r.events) {
    if (e.span_id != 0 && e.trace_id != 0) traces[e.trace_id].push_back(&e);
  }
  ASSERT_FALSE(traces.empty());
  for (const auto& [tid, spans] : traces) {
    std::map<uint64_t, const Tracer::Event*> by_id;
    for (const auto* e : spans) by_id[e->span_id] = e;
    size_t roots = 0;
    for (const auto* e : spans) {
      if (by_id.count(e->parent_span_id) == 0) ++roots;
    }
    EXPECT_EQ(roots, 1u) << "trace " << tid << " with " << spans.size()
                         << " spans";
  }
}

// --- Scraper on the virtual clock --------------------------------------

TEST(Scrape, SimulatorScrapesAtVirtualPeriodBoundaries) {
  TracingOn guard;
  telemetry::Scraper scraper;
  netsim::Simulator sim(/*seed=*/3);
  sim.attach_scraper(&scraper, /*period=*/0.001);
  int fired = 0;
  sim.schedule_timer(0.0052, netsim::kInvalidNode, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // Boundaries 0..5 ms inclusive were crossed by the single event.
  EXPECT_EQ(scraper.total_scrapes(), 6u);
  const std::string jsonl = scraper.jsonl();
  EXPECT_NE(jsonl.find("\"ts_us\":0,"), std::string::npos);
  EXPECT_NE(jsonl.find("\"ts_us\":5000,"), std::string::npos);
  // A quiescent simulator takes no further samples; detaching is safe.
  sim.attach_scraper(nullptr);
  EXPECT_THROW(sim.attach_scraper(&scraper, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tenet

#endif  // TENET_TELEMETRY_ENABLED
