#pragma once
// Seed control for the randomized-equivalence tests.
//
// Every randomized suite derives its DRBG streams from fixed literal seeds,
// so a given tree always runs the same inputs (CI is deterministic). Setting
// TENET_TEST_SEED=N shifts every registered seed by N, re-rolling all the
// random sweeps in one go without touching the sources:
//
//   TENET_TEST_SEED=7 ctest -L slow
//
// N=0 (or unset) reproduces the committed seeds exactly.
#include <cstdint>
#include <cstdlib>
#include <initializer_list>
#include <vector>

namespace tenet::test {

/// The env-provided seed offset (0 when TENET_TEST_SEED is unset or junk).
inline uint64_t seed_offset() {
  static const uint64_t offset = [] {
    const char* env = std::getenv("TENET_TEST_SEED");
    if (!env || !*env) return uint64_t{0};
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    return (end && *end == '\0') ? static_cast<uint64_t>(v) : uint64_t{0};
  }();
  return offset;
}

/// A single test seed: the committed default shifted by TENET_TEST_SEED.
inline uint64_t seed(uint64_t fallback) { return fallback + seed_offset(); }

/// Shifted copy of a seed list, for INSTANTIATE_TEST_SUITE_P(ValuesIn(...)).
inline std::vector<uint64_t> seeds(std::initializer_list<uint64_t> defaults) {
  std::vector<uint64_t> out;
  out.reserve(defaults.size());
  for (uint64_t s : defaults) out.push_back(seed(s));
  return out;
}

}  // namespace tenet::test
