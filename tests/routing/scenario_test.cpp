// Integration tests: the full Figure 2 deployment over the simulator.
#include "routing/scenario.h"

#include <gtest/gtest.h>

#include "sgx/adversary.h"
#include "test_seed.h"

namespace tenet::routing {
namespace {

ScenarioConfig small_sgx() {
  ScenarioConfig cfg;
  cfg.n_ases = 8;
  cfg.seed = 42;
  cfg.use_sgx = true;
  return cfg;
}

TEST(RoutingScenario, SgxEndToEndProducesCorrectRoutes) {
  const ScenarioResult result = run_routing_scenario(small_sgx());

  // Every AS received its table, and it matches a direct computation.
  const ComputationResult expected = BgpComputation::compute(result.policies);
  for (const auto& [asn, table] : result.received_tables) {
    const auto it = expected.tables.find(asn);
    ASSERT_NE(it, expected.tables.end());
    ASSERT_EQ(table.size(), it->second.size()) << "AS " << asn;
    for (const auto& [prefix, route] : table) {
      EXPECT_EQ(route.as_path, it->second.at(prefix).as_path)
          << "AS " << asn << " prefix " << prefix;
    }
  }
  // And the distributed result satisfies the stability invariants.
  std::map<AsNumber, RoutingTable> tables = result.received_tables;
  EXPECT_NO_THROW(ReferenceBgp::check_stable(result.policies, tables));
}

TEST(RoutingScenario, AttestationCountMatchesTable3Formula) {
  // Table 3: inter-domain routing needs (number of AS controllers)
  // remote attestations.
  for (size_t n : {4u, 8u, 12u}) {
    ScenarioConfig cfg = small_sgx();
    cfg.n_ases = n;
    const ScenarioResult result = run_routing_scenario(cfg);
    EXPECT_EQ(result.attestations, n) << "n=" << n;
  }
}

TEST(RoutingScenario, NativeBaselineProducesSameRoutes) {
  ScenarioConfig sgx_cfg = small_sgx();
  ScenarioConfig native_cfg = sgx_cfg;
  native_cfg.use_sgx = false;

  const ScenarioResult with_sgx = run_routing_scenario(sgx_cfg);
  const ScenarioResult native = run_routing_scenario(native_cfg);

  ASSERT_EQ(with_sgx.received_tables.size(), native.received_tables.size());
  for (const auto& [asn, table] : with_sgx.received_tables) {
    const auto& ntable = native.received_tables.at(asn);
    ASSERT_EQ(table.size(), ntable.size());
    for (const auto& [prefix, route] : table) {
      EXPECT_EQ(route.as_path, ntable.at(prefix).as_path);
    }
  }
  EXPECT_EQ(native.attestations, 0u);
}

TEST(RoutingScenario, SgxCostsMoreButModestly) {
  // Table 4's shape: the SGX deployment consumes more normal instructions
  // than native (82% more for the controller in the paper) — more, but
  // within a small factor, not orders of magnitude.
  ScenarioConfig sgx_cfg = small_sgx();
  ScenarioConfig native_cfg = sgx_cfg;
  native_cfg.use_sgx = false;

  const ScenarioResult with_sgx = run_routing_scenario(sgx_cfg);
  const ScenarioResult native = run_routing_scenario(native_cfg);

  EXPECT_GT(with_sgx.controller_steady.normal, native.controller_steady.normal);
  EXPECT_LT(with_sgx.controller_steady.normal,
            6 * native.controller_steady.normal);
  EXPECT_GT(with_sgx.controller_steady.sgx_user, 0u);
  EXPECT_EQ(native.controller_steady.sgx_user, 0u);

  const auto sgx_as = with_sgx.as_steady_avg();
  const auto nat_as = native.as_steady_avg();
  EXPECT_GT(sgx_as.normal, nat_as.normal);
}

TEST(RoutingScenario, PolicyBytesNeverOnWireWithSgx) {
  // The privacy property §3.1 is about: with SGX, policies cross the
  // network only inside authenticated ciphertext. Natively they are
  // plaintext. We wiretap everything and grep for a policy serialization.
  for (const bool use_sgx : {true, false}) {
    ScenarioConfig cfg = small_sgx();
    cfg.use_sgx = use_sgx;
    RoutingDeployment dep(cfg);

    std::vector<crypto::Bytes> wire;
    dep.sim().set_wiretap([&wire](const netsim::Message& m) {
      wire.push_back(m.payload);
    });
    dep.run_attestation_phase();
    dep.run_routing_phase();

    size_t policy_sightings = 0;
    for (const auto& [asn, policy] : dep.policies()) {
      const crypto::Bytes needle = policy.serialize();
      for (const crypto::Bytes& payload : wire) {
        if (std::search(payload.begin(), payload.end(), needle.begin(),
                        needle.end()) != payload.end()) {
          ++policy_sightings;
        }
      }
    }
    if (use_sgx) {
      EXPECT_EQ(policy_sightings, 0u) << "policy leaked to the wire";
    } else {
      EXPECT_GT(policy_sightings, 0u) << "baseline should be plaintext";
    }
  }
}

TEST(RoutingScenario, VerificationWorkflow) {
  ScenarioConfig cfg = small_sgx();
  RoutingDeployment dep(cfg);
  dep.run_attestation_phase();
  dep.run_routing_phase();

  // Find a pair (a, b) where b's chosen route for prefix a goes via a
  // (the "promise kept" case) by computing ground truth.
  const ComputationResult truth = BgpComputation::compute(dep.policies());
  AsNumber a = 0, b = 0;
  for (const auto& [asn, table] : truth.tables) {
    for (const auto& [prefix, route] : table) {
      if (route.path_length() == 1) {
        a = route.next_hop();
        b = asn;
        break;
      }
    }
    if (a != 0) break;
  }
  ASSERT_NE(a, 0u);

  const Predicate promise = Predicate::most_preferred_via(b, a, a);

  // Not yet agreed: only A registered.
  dep.register_predicate(a, 1, promise);
  EXPECT_EQ(dep.request_verification(a, 1), VerifyStatus::kNotAgreed);

  // Both registered: verification runs and the promise holds.
  dep.register_predicate(b, 1, promise);
  EXPECT_EQ(dep.request_verification(a, 1), VerifyStatus::kHolds);
  EXPECT_EQ(dep.request_verification(b, 1), VerifyStatus::kHolds);

  // A predicate that is false evaluates to kViolated (promise broken).
  const Predicate broken = Predicate::lnot(promise);
  dep.register_predicate(a, 2, broken);
  dep.register_predicate(b, 2, broken);
  EXPECT_EQ(dep.request_verification(a, 2), VerifyStatus::kViolated);

  // A third AS (not a party) cannot probe the agreement.
  AsNumber c = 0;
  for (const auto& [asn, p] : dep.policies()) {
    if (asn != a && asn != b) {
      c = asn;
      break;
    }
  }
  ASSERT_NE(c, 0u);
  EXPECT_EQ(dep.request_verification(c, 1), VerifyStatus::kNotAParty);
}

TEST(RoutingScenario, MismatchedRegistrationsNeverAgree) {
  ScenarioConfig cfg = small_sgx();
  cfg.n_ases = 4;
  RoutingDeployment dep(cfg);
  dep.run_attestation_phase();
  dep.run_routing_phase();

  const auto& policies = dep.policies();
  auto it = policies.begin();
  const AsNumber a = (it++)->first;
  const AsNumber b = it->first;

  dep.register_predicate(a, 5, Predicate::most_preferred_via(b, a, a));
  dep.register_predicate(b, 5, Predicate::most_preferred_via(b, a, b));
  EXPECT_EQ(dep.request_verification(a, 5), VerifyStatus::kNotAgreed);
}

TEST(RoutingScenario, PatchedControllerRejectedByAses) {
  // The core privacy guarantee: AS-local controllers refuse to upload
  // policies to anything but the community-verified controller build.
  ScenarioConfig cfg = small_sgx();
  cfg.n_ases = 3;
  RoutingDeployment dep(cfg);

  // A rogue "controller" node running a patched build joins the network.
  core::OpenProject rogue_project(
      "rogue-controller", "patched controller that logs policies\n", nullptr);
  const sgx::Authority* auth = nullptr;  // filled via the deployment below
  (void)auth;
  // Connect an AS to the rogue controller: attestation must fail, so the
  // AS never becomes attested and kCtlSubmitPolicy would throw.
  core::EnclaveNode* as0 = nullptr;
  for (const auto& [asn, p] : dep.policies()) {
    as0 = dep.as_node(asn);
    break;
  }
  ASSERT_NE(as0, nullptr);

  // Point the AS at a node that is not the genuine controller: we reuse
  // another AS node as the "rogue" endpoint (its measurement differs from
  // the controller project's, so the challenger rejects the quote).
  core::EnclaveNode* other = nullptr;
  for (const auto& [asn, p] : dep.policies()) {
    if (dep.as_node(asn) != as0) {
      other = dep.as_node(asn);
      break;
    }
  }
  ASSERT_NE(other, nullptr);

  crypto::Bytes arg;
  crypto::append_u32(arg, other->id());
  (void)as0->control(kCtlConnectController, arg);
  dep.sim().run();
  EXPECT_EQ(as0->query(core::kQueryAttestedPeerCount), 0u);
}

TEST(RoutingScenario, ScalesAcrossSizes) {
  // Figure 3 mechanics: controller cycles grow with AS count, SGX stays
  // a bounded factor above native at every size.
  ScenarioConfig cfg;
  cfg.seed = 7;
  double prev_sgx_cycles = 0;
  for (size_t n : {5u, 10u, 15u}) {
    cfg.n_ases = n;
    cfg.use_sgx = true;
    const ScenarioResult s = run_routing_scenario(cfg);
    cfg.use_sgx = false;
    const ScenarioResult nat = run_routing_scenario(cfg);

    sgx::CostModel model;
    const double sgx_cycles = model.cycles_of(s.controller_steady);
    const double native_cycles = model.cycles_of(nat.controller_steady);
    EXPECT_GT(sgx_cycles, native_cycles) << "n=" << n;
    EXPECT_GT(sgx_cycles, prev_sgx_cycles) << "n=" << n;
    prev_sgx_cycles = sgx_cycles;
  }
}

class ScenarioSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScenarioSeedSweep, SgxAndNativeAgreeOnEverySeed) {
  // Property over random topologies: the enclave deployment and the
  // native baseline always produce identical, stable routing tables.
  ScenarioConfig cfg;
  cfg.n_ases = 6;
  cfg.seed = GetParam();

  cfg.use_sgx = true;
  const ScenarioResult s = run_routing_scenario(cfg);
  cfg.use_sgx = false;
  const ScenarioResult n = run_routing_scenario(cfg);

  ASSERT_EQ(s.received_tables.size(), n.received_tables.size());
  for (const auto& [asn, table] : s.received_tables) {
    const auto& ntable = n.received_tables.at(asn);
    ASSERT_EQ(table.size(), ntable.size()) << "AS " << asn;
    for (const auto& [prefix, route] : table) {
      EXPECT_EQ(route.as_path, ntable.at(prefix).as_path)
          << "seed " << GetParam() << " AS " << asn << " prefix " << prefix;
    }
  }
  EXPECT_NO_THROW(ReferenceBgp::check_stable(s.policies, s.received_tables));
  EXPECT_EQ(s.attestations, cfg.n_ases);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ScenarioSeedSweep,
    ::testing::ValuesIn(test::seeds({11, 22, 33, 44, 55, 66})));

}  // namespace
}  // namespace tenet::routing
