#include "routing/topology.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace tenet::routing {
namespace {

TEST(Relationship, InverseIsInvolution) {
  for (Relationship r : {Relationship::kCustomer, Relationship::kPeer,
                         Relationship::kProvider}) {
    EXPECT_EQ(inverse(inverse(r)), r);
  }
  EXPECT_EQ(inverse(Relationship::kCustomer), Relationship::kProvider);
  EXPECT_EQ(inverse(Relationship::kPeer), Relationship::kPeer);
}

TEST(AsGraph, LinksAreSymmetricWithInverseLabels) {
  AsGraph g;
  g.add_customer_provider(/*customer=*/100, /*provider=*/200);
  EXPECT_TRUE(g.has_link(100, 200));
  EXPECT_TRUE(g.has_link(200, 100));
  // From 100's view, 200 is its provider; from 200's view, 100 is customer.
  EXPECT_EQ(*g.relationship(100, 200), Relationship::kProvider);
  EXPECT_EQ(*g.relationship(200, 100), Relationship::kCustomer);

  g.add_peering(100, 300);
  EXPECT_EQ(*g.relationship(100, 300), Relationship::kPeer);
  EXPECT_EQ(*g.relationship(300, 100), Relationship::kPeer);
}

TEST(AsGraph, SelfLinkRejected) {
  AsGraph g;
  EXPECT_THROW(g.add_peering(1, 1), std::invalid_argument);
}

TEST(AsGraph, MissingEntitiesReported) {
  AsGraph g;
  g.add_as(1);
  EXPECT_TRUE(g.has_as(1));
  EXPECT_FALSE(g.has_as(2));
  EXPECT_FALSE(g.has_link(1, 2));
  EXPECT_FALSE(g.relationship(1, 2).has_value());
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(AsGraph, CountsAndConnectivity) {
  AsGraph g;
  g.add_customer_provider(1, 2);
  g.add_customer_provider(3, 2);
  EXPECT_EQ(g.as_count(), 3u);
  EXPECT_EQ(g.link_count(), 2u);
  EXPECT_TRUE(g.connected());
  g.add_as(99);  // isolated
  EXPECT_FALSE(g.connected());
}

class RandomTopology : public ::testing::TestWithParam<size_t> {};

TEST_P(RandomTopology, IsWellFormed) {
  crypto::Drbg rng = crypto::Drbg::from_label(GetParam(), "topo.test");
  const AsGraph g = AsGraph::random(rng, GetParam());
  EXPECT_EQ(g.as_count(), GetParam());
  EXPECT_TRUE(g.connected());
  // AS numbers are 1..n and every AS has at least one link.
  for (const AsNumber asn : g.ases()) {
    EXPECT_GE(asn, 1u);
    EXPECT_LE(asn, GetParam());
    EXPECT_FALSE(g.neighbors(asn).empty()) << "AS " << asn << " isolated";
  }
}

TEST_P(RandomTopology, NoProviderCyclesAmongTiers) {
  // Customer->provider edges must be acyclic (tiered generation).
  crypto::Drbg rng = crypto::Drbg::from_label(GetParam(), "topo.cycles");
  const AsGraph g = AsGraph::random(rng, GetParam());
  // Kahn's algorithm over the provider DAG.
  std::map<AsNumber, int> out_degree;  // edges to providers
  for (const AsNumber asn : g.ases()) {
    out_degree[asn] = 0;
    for (const auto& [n, rel] : g.neighbors(asn)) {
      if (rel == Relationship::kProvider) ++out_degree[asn];
    }
  }
  // Repeatedly remove nodes with no providers; all must be removable.
  std::set<AsNumber> remaining;
  for (const auto& [asn, d] : out_degree) remaining.insert(asn);
  bool progress = true;
  while (progress && !remaining.empty()) {
    progress = false;
    for (auto it = remaining.begin(); it != remaining.end();) {
      int providers_left = 0;
      for (const auto& [n, rel] : g.neighbors(*it)) {
        if (rel == Relationship::kProvider && remaining.contains(n)) {
          ++providers_left;
        }
      }
      if (providers_left == 0) {
        it = remaining.erase(it);
        progress = true;
      } else {
        ++it;
      }
    }
  }
  EXPECT_TRUE(remaining.empty()) << "provider cycle detected";
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTopology,
                         ::testing::Values(2, 3, 5, 10, 30, 60));

TEST(RandomTopology, DeterministicPerSeed) {
  crypto::Drbg r1 = crypto::Drbg::from_label(7, "topo.det");
  crypto::Drbg r2 = crypto::Drbg::from_label(7, "topo.det");
  const AsGraph a = AsGraph::random(r1, 20);
  const AsGraph b = AsGraph::random(r2, 20);
  EXPECT_EQ(a.link_count(), b.link_count());
  for (const AsNumber asn : a.ases()) {
    EXPECT_EQ(a.neighbors(asn), b.neighbors(asn));
  }
}

TEST(RoutingPolicy, SerializationRoundTrips) {
  RoutingPolicy p;
  p.asn = 7018;
  p.neighbor_rel[1] = Relationship::kCustomer;
  p.neighbor_rel[2] = Relationship::kPeer;
  p.neighbor_rel[3] = Relationship::kProvider;
  p.local_pref[1] = 42;
  p.prefixes = {7018, 9999};

  const RoutingPolicy q = RoutingPolicy::deserialize(p.serialize());
  EXPECT_EQ(q.asn, 7018u);
  EXPECT_EQ(q.neighbor_rel, p.neighbor_rel);
  EXPECT_EQ(q.local_pref, p.local_pref);
  EXPECT_EQ(q.prefixes, p.prefixes);
}

TEST(RoutingPolicy, DeserializeRejectsBadRelationship) {
  RoutingPolicy p;
  p.asn = 1;
  p.neighbor_rel[2] = Relationship::kPeer;
  crypto::Bytes wire = p.serialize();
  wire[8 + 4] = 77;  // corrupt the relationship byte of neighbor 2
  EXPECT_THROW(RoutingPolicy::deserialize(wire), std::invalid_argument);
}

TEST(RoutingPolicy, FromGraphCoversEveryAs) {
  crypto::Drbg rng = crypto::Drbg::from_label(9, "topo.policy");
  const AsGraph g = AsGraph::random(rng, 12);
  const auto policies = RoutingPolicy::from_graph(g, rng);
  EXPECT_EQ(policies.size(), 12u);
  for (const auto& [asn, p] : policies) {
    EXPECT_EQ(p.asn, asn);
    EXPECT_EQ(p.neighbor_rel.size(), g.neighbors(asn).size());
    ASSERT_EQ(p.prefixes.size(), 1u);
    EXPECT_EQ(p.prefixes[0], asn);
    for (const auto& [n, rel] : p.neighbor_rel) {
      EXPECT_EQ(rel, *g.relationship(asn, n));
      EXPECT_LT(p.local_pref.at(n), 50u);
    }
  }
}

}  // namespace
}  // namespace tenet::routing
