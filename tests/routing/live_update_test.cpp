// Live policy updates: an AS reconfigures its local preference at runtime,
// resubmits over the attested channel, and the controller recomputes and
// redistributes fresh routes — the "fast convergence" property SDN-based
// inter-domain routing promises (§3.1's motivation).
#include <gtest/gtest.h>

#include "routing/scenario.h"

namespace tenet::routing {
namespace {

/// Diamond topology: AS1 buys from providers 2 and 3, both buy from 4.
/// AS1's route to prefix 4 is decided purely by its local preference.
ScenarioConfig diamond_config() {
  ScenarioConfig cfg;
  cfg.n_ases = 4;  // placeholder; we build the deployment manually below
  cfg.seed = 99;
  return cfg;
}

class LiveUpdateDeployment {
 public:
  LiveUpdateDeployment() : dep_(make_config()) {
    dep_.run_attestation_phase();
    dep_.run_routing_phase();
  }

  static ScenarioConfig make_config() {
    ScenarioConfig cfg;
    cfg.n_ases = 10;
    cfg.seed = 424242;
    cfg.use_sgx = true;
    return cfg;
  }

  RoutingDeployment dep_;
};

TEST(LiveUpdate, LocalPrefChangePropagatesThroughController) {
  LiveUpdateDeployment world;
  RoutingDeployment& dep = world.dep_;

  // Find an AS with two neighbors offering routes in the same class to
  // some prefix (so local-pref alone can flip the decision).
  const ComputationResult before = BgpComputation::compute(dep.policies());
  AsNumber who = 0;
  Prefix prefix = 0;
  AsNumber new_favorite = 0;
  for (const auto& [asn, per_prefix] : before.candidates) {
    for (const auto& [p, cands] : per_prefix) {
      const Route* chosen = before.route_of(asn, p);
      if (chosen == nullptr) continue;
      for (const Route& c : cands) {
        if (c.next_hop() != chosen->next_hop() &&
            c.learned_from == chosen->learned_from &&
            c.path_length() == chosen->path_length()) {
          who = asn;
          prefix = p;
          new_favorite = c.next_hop();
          break;
        }
      }
      if (who != 0) break;
    }
    if (who != 0) break;
  }
  ASSERT_NE(who, 0u) << "topology has no tie-breakable decision";

  const RoutingTable original = dep.table_of(who);
  ASSERT_TRUE(original.contains(prefix));
  ASSERT_NE(original.at(prefix).next_hop(), new_favorite);

  // Reconfigure: prefer `new_favorite` strongly, resubmit.
  core::EnclaveNode* node = dep.as_node(who);
  ASSERT_NE(node, nullptr);
  crypto::Bytes arg;
  crypto::append_u32(arg, new_favorite);
  crypto::append_u32(arg, 99);
  (void)node->control(kCtlUpdateLocalPref, arg);
  (void)node->control(kCtlSubmitPolicy, {});
  dep.sim().run();

  const RoutingTable updated = dep.table_of(who);
  ASSERT_TRUE(updated.contains(prefix));
  EXPECT_EQ(updated.at(prefix).next_hop(), new_favorite)
      << "controller did not apply the updated preference";

  // No additional attestations were needed for the update.
  EXPECT_EQ(dep.total_attestations(), LiveUpdateDeployment::make_config().n_ases);
}

TEST(LiveUpdate, OtherAsesReceiveRecomputedRoutes) {
  LiveUpdateDeployment world;
  RoutingDeployment& dep = world.dep_;

  // Any resubmission triggers a full recompute; every AS's table must
  // still satisfy the stability invariants afterwards.
  const AsNumber first = dep.policies().begin()->first;
  core::EnclaveNode* node = dep.as_node(first);
  ASSERT_NE(node, nullptr);
  (void)node->control(kCtlSubmitPolicy, {});
  dep.sim().run();

  std::map<AsNumber, RoutingTable> tables;
  for (const auto& [asn, p] : dep.policies()) tables[asn] = dep.table_of(asn);
  EXPECT_NO_THROW(ReferenceBgp::check_stable(dep.policies(), tables));
}

TEST(LiveUpdate, UpdateForUnknownNeighborIgnored) {
  LiveUpdateDeployment world;
  RoutingDeployment& dep = world.dep_;
  const AsNumber first = dep.policies().begin()->first;
  core::EnclaveNode* node = dep.as_node(first);
  ASSERT_NE(node, nullptr);

  const RoutingTable before = dep.table_of(first);
  crypto::Bytes arg;
  crypto::append_u32(arg, 0xdeadbeef);  // not a neighbor
  crypto::append_u32(arg, 99);
  (void)node->control(kCtlUpdateLocalPref, arg);
  (void)node->control(kCtlSubmitPolicy, {});
  dep.sim().run();
  const RoutingTable after = dep.table_of(first);
  ASSERT_EQ(before.size(), after.size());
  for (const auto& [prefix, route] : before) {
    EXPECT_EQ(route.as_path, after.at(prefix).as_path);
  }
}

}  // namespace
}  // namespace tenet::routing
