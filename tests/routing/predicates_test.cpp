#include "routing/predicates.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"

namespace tenet::routing {
namespace {

/// Fixture topology: 1 and 3 are customers of 2; 3 also buys from 4.
///      2       4
///     / \     /
///    1   3---+
std::map<AsNumber, RoutingPolicy> fixture_policies() {
  AsGraph g;
  g.add_customer_provider(1, 2);
  g.add_customer_provider(3, 2);
  g.add_customer_provider(3, 4);
  g.add_peering(2, 4);
  crypto::Drbg rng = crypto::Drbg::from_label(1, "pred.test");
  auto policies = RoutingPolicy::from_graph(g, rng);
  for (auto& [asn, p] : policies) p.local_pref.clear();
  return policies;
}

TEST(Predicate, MostPreferredVia) {
  const auto policies = fixture_policies();
  const ComputationResult r = BgpComputation::compute(policies);
  // AS2 reaches prefix 1 directly via its customer 1.
  EXPECT_TRUE(Predicate::most_preferred_via(2, 1, 1).evaluate(r));
  // AS3's route to prefix 1 goes via 2 (customer of 2... 3 buys from 2).
  EXPECT_TRUE(Predicate::most_preferred_via(3, 2, 1).evaluate(r));
  EXPECT_FALSE(Predicate::most_preferred_via(3, 4, 1).evaluate(r));
}

TEST(Predicate, ReceivedFromChecksCandidates) {
  const auto policies = fixture_policies();
  const ComputationResult r = BgpComputation::compute(policies);
  // AS3 hears prefix 1 from both providers 2 and 4 (4 via peer 2...
  // 4 learns 1 from peer 2 — peer routes export to customers, so 4
  // announces to its customer 3).
  EXPECT_TRUE(Predicate::received_from(3, 2, 1).evaluate(r));
  EXPECT_TRUE(Predicate::received_from(3, 4, 1).evaluate(r));
  // AS1 never hears its own prefix.
  EXPECT_FALSE(Predicate::received_from(1, 2, 1).evaluate(r));
}

TEST(Predicate, PathLengthAndTraverses) {
  const auto policies = fixture_policies();
  const ComputationResult r = BgpComputation::compute(policies);
  EXPECT_TRUE(Predicate::path_length_at_most(3, 1, 2).evaluate(r));
  EXPECT_FALSE(Predicate::path_length_at_most(3, 1, 1).evaluate(r));
  EXPECT_TRUE(Predicate::route_traverses(3, 1, 2).evaluate(r));
  EXPECT_FALSE(Predicate::route_traverses(3, 1, 4).evaluate(r));
}

TEST(Predicate, UsesCustomerRoute) {
  const auto policies = fixture_policies();
  const ComputationResult r = BgpComputation::compute(policies);
  // AS2's route to prefix 1 is customer-learned; AS3's is provider-learned.
  EXPECT_TRUE(Predicate::uses_customer_route(2, 1).evaluate(r));
  EXPECT_FALSE(Predicate::uses_customer_route(3, 1).evaluate(r));
}

TEST(Predicate, BooleanCombinators) {
  const auto policies = fixture_policies();
  const ComputationResult r = BgpComputation::compute(policies);
  const Predicate t = Predicate::most_preferred_via(2, 1, 1);
  const Predicate f = Predicate::most_preferred_via(3, 4, 1);
  EXPECT_TRUE(Predicate::lor(t, f).evaluate(r));
  EXPECT_FALSE(Predicate::land(t, f).evaluate(r));
  EXPECT_TRUE(Predicate::lnot(f).evaluate(r));
  EXPECT_TRUE(Predicate::land(t, Predicate::lnot(f)).evaluate(r));
}

TEST(Predicate, PartiesCollectsAllNamedAses) {
  const Predicate p = Predicate::land(
      Predicate::most_preferred_via(3, 2, 1),
      Predicate::lnot(Predicate::received_from(3, 4, 1)));
  const auto parties = p.parties();
  EXPECT_EQ(parties, (std::vector<AsNumber>{2, 3, 4}));
}

TEST(Predicate, SerializationRoundTripsNestedTrees) {
  const Predicate p = Predicate::lor(
      Predicate::land(Predicate::path_length_at_most(5, 9, 3),
                      Predicate::uses_customer_route(5, 9)),
      Predicate::lnot(Predicate::route_traverses(5, 9, 666)));
  const Predicate q = Predicate::deserialize(p.serialize());
  EXPECT_TRUE(p.equals(q));
  EXPECT_EQ(p.serialize(), q.serialize());
}

TEST(Predicate, EqualsIsStructural) {
  const Predicate a = Predicate::most_preferred_via(3, 2, 1);
  const Predicate b = Predicate::most_preferred_via(3, 2, 1);
  const Predicate c = Predicate::most_preferred_via(3, 4, 1);
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_FALSE(a.equals(Predicate::lnot(b)));
}

TEST(Predicate, DeserializeRejectsGarbage) {
  EXPECT_THROW(Predicate::deserialize(crypto::Bytes{99, 0, 0}),
               std::invalid_argument);
  // Valid kind but truncated body.
  crypto::Bytes truncated{static_cast<uint8_t>(1), 0, 0};
  EXPECT_THROW(Predicate::deserialize(truncated), std::out_of_range);
  // kAnd with wrong arity.
  crypto::Bytes bad_arity;
  bad_arity.push_back(10);  // kAnd
  crypto::append_u32(bad_arity, 0);
  crypto::append_u32(bad_arity, 0);
  crypto::append_u32(bad_arity, 0);
  crypto::append_u32(bad_arity, 0);
  crypto::append_u32(bad_arity, 0);  // zero children
  EXPECT_THROW(Predicate::deserialize(bad_arity), std::invalid_argument);
}

TEST(Predicate, UnreachablePrefixEvaluatesFalseNotThrow) {
  AsGraph g;
  g.add_peering(1, 2);
  g.add_peering(2, 3);
  crypto::Drbg rng = crypto::Drbg::from_label(2, "pred.unreach");
  const auto policies = RoutingPolicy::from_graph(g, rng);
  const ComputationResult r = BgpComputation::compute(policies);
  // 1 cannot reach 3 (peer valley) — predicates about it are just false.
  EXPECT_FALSE(Predicate::most_preferred_via(1, 2, 3).evaluate(r));
  EXPECT_FALSE(Predicate::path_length_at_most(1, 3, 10).evaluate(r));
  EXPECT_FALSE(Predicate::uses_customer_route(1, 3).evaluate(r));
}

}  // namespace
}  // namespace tenet::routing
