#include "routing/bgp.h"

#include <gtest/gtest.h>

#include "crypto/rng.h"
#include "sgx/cost_model.h"
#include "test_seed.h"

namespace tenet::routing {
namespace {

std::map<AsNumber, RoutingPolicy> policies_of(const AsGraph& g,
                                              uint64_t seed = 1) {
  crypto::Drbg rng = crypto::Drbg::from_label(seed, "bgp.test");
  return RoutingPolicy::from_graph(g, rng);
}

/// 1 --customer-of--> 2 --customer-of--> 3 (a simple chain).
AsGraph chain3() {
  AsGraph g;
  g.add_customer_provider(1, 2);
  g.add_customer_provider(2, 3);
  return g;
}

TEST(Route, DecisionProcessOrdering) {
  Route customer, peer, provider;
  customer.pref = BgpComputation::import_pref(Relationship::kCustomer, 0);
  peer.pref = BgpComputation::import_pref(Relationship::kPeer, 99);
  provider.pref = BgpComputation::import_pref(Relationship::kProvider, 99);
  // Relationship class dominates any local-pref value.
  EXPECT_TRUE(customer.better_than(peer));
  EXPECT_TRUE(peer.better_than(provider));

  Route short_path = customer, long_path = customer;
  short_path.as_path = {5, 9};
  long_path.as_path = {6, 7, 9};
  EXPECT_TRUE(short_path.better_than(long_path));

  Route low_hop = short_path, high_hop = short_path;
  low_hop.as_path = {3, 9};
  high_hop.as_path = {4, 9};
  EXPECT_TRUE(low_hop.better_than(high_hop));
}

TEST(Route, SerializationRoundTrips) {
  Route r;
  r.prefix = 42;
  r.as_path = {1, 2, 3};
  r.learned_from = Relationship::kPeer;
  r.pref = 217;
  const Route q = Route::deserialize(r.serialize());
  EXPECT_EQ(q.prefix, 42u);
  EXPECT_EQ(q.as_path, r.as_path);
  EXPECT_EQ(q.learned_from, Relationship::kPeer);
  EXPECT_EQ(q.pref, 217u);
  EXPECT_FALSE(q.self_originated);
}

TEST(Bgp, ExportRulesAreValleyFree) {
  using R = Relationship;
  // Customer routes go everywhere.
  EXPECT_TRUE(BgpComputation::exportable(R::kCustomer, R::kCustomer));
  EXPECT_TRUE(BgpComputation::exportable(R::kCustomer, R::kPeer));
  EXPECT_TRUE(BgpComputation::exportable(R::kCustomer, R::kProvider));
  // Peer/provider routes only to customers.
  EXPECT_TRUE(BgpComputation::exportable(R::kPeer, R::kCustomer));
  EXPECT_FALSE(BgpComputation::exportable(R::kPeer, R::kPeer));
  EXPECT_FALSE(BgpComputation::exportable(R::kPeer, R::kProvider));
  EXPECT_TRUE(BgpComputation::exportable(R::kProvider, R::kCustomer));
  EXPECT_FALSE(BgpComputation::exportable(R::kProvider, R::kPeer));
  EXPECT_FALSE(BgpComputation::exportable(R::kProvider, R::kProvider));
}

TEST(Bgp, ChainReachability) {
  const auto policies = policies_of(chain3());
  const ComputationResult r = BgpComputation::compute(policies);
  // AS1 reaches prefix 3 via [2, 3].
  const Route* route = r.route_of(1, 3);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->as_path, (std::vector<AsNumber>{2, 3}));
  EXPECT_EQ(route->learned_from, Relationship::kProvider);
  // AS3 reaches prefix 1 via its customer chain.
  const Route* down = r.route_of(3, 1);
  ASSERT_NE(down, nullptr);
  EXPECT_EQ(down->as_path, (std::vector<AsNumber>{2, 1}));
  EXPECT_EQ(down->learned_from, Relationship::kCustomer);
}

TEST(Bgp, PeerValleyIsForbidden) {
  // 1 and 3 both peer with 2; 1's routes must NOT reach 3 through 2
  // (peer-learned routes are not exported to peers).
  AsGraph g;
  g.add_peering(1, 2);
  g.add_peering(2, 3);
  const auto policies = policies_of(g);
  const ComputationResult r = BgpComputation::compute(policies);
  EXPECT_NE(r.route_of(1, 2), nullptr);
  EXPECT_EQ(r.route_of(1, 3), nullptr) << "valley path leaked";
  EXPECT_EQ(r.route_of(3, 1), nullptr);
}

TEST(Bgp, CustomerRouteBeatsShorterProviderRoute) {
  // AS4 can reach prefix 1 via customer chain (longer) or provider
  // (shorter); prefer-customer must win.
  //      3 (provider of 4 and 1)
  //     /              .
  //    4                1
  //     .              /
  //      5 (customer of 4) — build: 4's customer 5,
  //      5's customer 1: path 4->5->1 customer-learned, length 2;
  //      4->3->1 provider-learned, length 2... make customer path longer:
  //      4's customer 5, 5's customer 6, 6's customer 1.
  AsGraph g;
  g.add_customer_provider(4, 3);
  g.add_customer_provider(1, 3);
  g.add_customer_provider(5, 4);
  g.add_customer_provider(6, 5);
  g.add_customer_provider(1, 6);
  auto policies = policies_of(g);
  // Zero local prefs for a clean comparison.
  for (auto& [asn, p] : policies) p.local_pref.clear();
  const ComputationResult r = BgpComputation::compute(policies);
  const Route* route = r.route_of(4, 1);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->learned_from, Relationship::kCustomer);
  EXPECT_EQ(route->as_path, (std::vector<AsNumber>{5, 6, 1}));
}

TEST(Bgp, LocalPrefBreaksTiesWithinClass) {
  // AS1 has two providers (2 and 3), both reaching origin 4 with equal
  // path lengths; local_pref decides.
  AsGraph g;
  g.add_customer_provider(1, 2);
  g.add_customer_provider(1, 3);
  g.add_customer_provider(2, 4);
  g.add_customer_provider(3, 4);
  auto policies = policies_of(g);
  for (auto& [asn, p] : policies) p.local_pref.clear();
  policies[1].local_pref[3] = 10;  // prefer provider 3
  const ComputationResult r = BgpComputation::compute(policies);
  const Route* route = r.route_of(1, 4);
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop(), 3u);

  policies[1].local_pref[3] = 0;
  policies[1].local_pref[2] = 10;  // now prefer provider 2
  const ComputationResult r2 = BgpComputation::compute(policies);
  EXPECT_EQ(r2.route_of(1, 4)->next_hop(), 2u);
}

TEST(Bgp, InconsistentAnnotationsRejected) {
  auto policies = policies_of(chain3());
  policies[1].neighbor_rel[2] = Relationship::kPeer;  // 2 still says customer
  EXPECT_THROW(BgpComputation::compute(policies), std::invalid_argument);
}

TEST(Bgp, MissingNeighborPolicyRejected) {
  auto policies = policies_of(chain3());
  policies.erase(3);
  EXPECT_THROW(BgpComputation::compute(policies), std::invalid_argument);
}

TEST(Bgp, CandidatesIncludeChosenRoute) {
  crypto::Drbg rng = crypto::Drbg::from_label(test::seed(3), "bgp.cand");
  const AsGraph g = AsGraph::random(rng, 12);
  const auto policies = policies_of(g, 3);
  const ComputationResult r = BgpComputation::compute(policies);
  for (const auto& [asn, table] : r.tables) {
    for (const auto& [prefix, chosen] : table) {
      const auto& cands = r.candidates.at(asn).at(prefix);
      const bool found = std::any_of(
          cands.begin(), cands.end(), [&](const Route& c) {
            return c.as_path == chosen.as_path && c.pref == chosen.pref;
          });
      EXPECT_TRUE(found) << "chosen route missing from candidates";
      // And nothing in the candidate set beats the chosen route.
      for (const Route& c : cands) {
        EXPECT_FALSE(c.better_than(chosen));
      }
    }
  }
}

TEST(Bgp, ComputationChargesWork) {
  sgx::CostModel model;
  const auto policies = policies_of(chain3());
  {
    sgx::CostScope scope(model);
    (void)BgpComputation::compute(policies);
  }
  EXPECT_GT(model.normal_instructions(), 0u);
}

class BgpVsOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BgpVsOracle, CentralizedMatchesDistributedReference) {
  // The centralized in-enclave computation must agree exactly with the
  // independent distributed BGP-speaker simulation (unique stable state).
  crypto::Drbg rng = crypto::Drbg::from_label(GetParam(), "bgp.oracle");
  const size_t n = 4 + GetParam() % 12;
  const AsGraph g = AsGraph::random(rng, n);
  auto policies = RoutingPolicy::from_graph(g, rng);

  const ComputationResult centralized = BgpComputation::compute(policies);
  const auto reference = ReferenceBgp::compute(policies);

  ASSERT_EQ(centralized.tables.size(), reference.size());
  for (const auto& [asn, table] : centralized.tables) {
    const auto it = reference.find(asn);
    ASSERT_NE(it, reference.end()) << "AS " << asn;
    ASSERT_EQ(table.size(), it->second.size()) << "AS " << asn;
    for (const auto& [prefix, route] : table) {
      const auto jt = it->second.find(prefix);
      ASSERT_NE(jt, it->second.end()) << "AS " << asn << " prefix " << prefix;
      EXPECT_EQ(route.as_path, jt->second.as_path)
          << "AS " << asn << " prefix " << prefix;
      EXPECT_EQ(route.pref, jt->second.pref);
    }
  }
  // Both satisfy the stability invariants.
  EXPECT_NO_THROW(ReferenceBgp::check_stable(policies, centralized.tables));
  EXPECT_NO_THROW(ReferenceBgp::check_stable(policies, reference));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpVsOracle,
                         ::testing::Range<uint64_t>(test::seed(0),
                                                    test::seed(20)));

TEST(Bgp, FullReachabilityOnConnectedGraphs) {
  // Valley-free routing over our tiered topologies reaches everything:
  // every AS has a provider chain to the tier-1 clique.
  for (uint64_t seed = test::seed(100); seed < test::seed(105); ++seed) {
    crypto::Drbg rng = crypto::Drbg::from_label(seed, "bgp.reach");
    const AsGraph g = AsGraph::random(rng, 25);
    const auto policies = RoutingPolicy::from_graph(g, rng);
    const ComputationResult r = BgpComputation::compute(policies);
    for (const AsNumber asn : g.ases()) {
      for (const AsNumber origin : g.ases()) {
        if (asn == origin) continue;
        EXPECT_NE(r.route_of(asn, origin), nullptr)
            << "AS " << asn << " cannot reach " << origin << " (seed " << seed
            << ")";
      }
    }
  }
}

TEST(Bgp, StabilityCheckerCatchesViolations) {
  const auto policies = policies_of(chain3());
  auto tables = ReferenceBgp::compute(policies);

  // Introduce a loop.
  auto broken = tables;
  broken[1][3].as_path = {2, 1, 2, 3};
  EXPECT_THROW(ReferenceBgp::check_stable(policies, broken), std::logic_error);

  // Non-existent link.
  broken = tables;
  broken[1][3].as_path = {3};
  EXPECT_THROW(ReferenceBgp::check_stable(policies, broken), std::logic_error);

  // Wrong origin.
  broken = tables;
  broken[1][3].as_path = {2};
  EXPECT_THROW(ReferenceBgp::check_stable(policies, broken), std::logic_error);
}

}  // namespace
}  // namespace tenet::routing
