// Figure 3 reproduction: "Number of CPU cycles consumed in the main
// controller as AS number increases."
//
// The paper plots inter-domain controller cycles for 5..30+ ASes, with
// and without SGX; the SGX series sits ~90% above the native one and both
// grow with topology size. We print the same two series (plus the ratio)
// as a text plot.
#include "bench_util.h"
#include "routing/scenario.h"

using namespace tenet;
using namespace tenet::routing;

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bench::title(
      "Figure 3: controller CPU cycles vs number of ASes\n"
      "(steady-state cycles = 10'000 x SGX(U) + normal / 1.8; paper: SGX is "
      "~+90%)");

  std::printf("\n%6s %16s %16s %10s\n", "#ASes", "native cycles",
              "SGX cycles", "overhead");
  std::printf("---------------------------------------------------\n");

  sgx::CostModel model;  // formula holder
  double max_cycles = 0;
  struct Point {
    size_t n;
    double native_c, sgx_c;
  };
  std::vector<Point> points;

  for (size_t n = 5; n <= 40; n += 5) {
    ScenarioConfig cfg;
    cfg.n_ases = n;
    cfg.seed = 2015;

    cfg.use_sgx = false;
    const ScenarioResult native = run_routing_scenario(cfg);
    cfg.use_sgx = true;
    const ScenarioResult with_sgx = run_routing_scenario(cfg);

    const double nc = model.cycles_of(native.controller_steady);
    const double sc = model.cycles_of(with_sgx.controller_steady);
    points.push_back({n, nc, sc});
    max_cycles = std::max(max_cycles, sc);
    std::printf("%6zu %16s %16s %+9.0f%%\n", n, bench::human(nc).c_str(),
                bench::human(sc).c_str(), bench::pct_increase(sc, nc));
  }

  bench::section("text plot (each column = one AS count; # = SGX, o = native)");
  constexpr int kRows = 16;
  for (int row = kRows; row >= 1; --row) {
    const double threshold = max_cycles * row / kRows;
    std::printf("%10s |", row == kRows ? bench::human(max_cycles).c_str() : "");
    for (const Point& p : points) {
      const bool sgx_here = p.sgx_c >= threshold;
      const bool nat_here = p.native_c >= threshold;
      std::printf("  %c  ", sgx_here && nat_here ? 'B'
                            : sgx_here           ? '#'
                            : nat_here           ? 'o'
                                                 : ' ');
    }
    std::printf("\n");
  }
  std::printf("%10s +", "");
  for (size_t i = 0; i < points.size(); ++i) std::printf("-----");
  std::printf("\n%10s ", "");
  for (const Point& p : points) std::printf(" %3zu ", p.n);
  std::printf("  (#ASes)\n");

  bench::section("shape checks");
  bool monotone = true;
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].sgx_c <= points[i - 1].sgx_c ||
        points[i].native_c <= points[i - 1].native_c) {
      monotone = false;
    }
  }
  double avg_overhead = 0;
  for (const Point& p : points) {
    avg_overhead += bench::pct_increase(p.sgx_c, p.native_c);
  }
  avg_overhead /= static_cast<double>(points.size());
  std::printf("both series grow with AS count : %s\n",
              monotone ? "yes" : "NO");
  std::printf("average SGX overhead           : +%.0f%% (paper: ~+90%%)\n",
              avg_overhead);
  return monotone ? 0 : 1;
}
