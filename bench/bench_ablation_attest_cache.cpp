// Ablation A3: attestation caching.
//
// "Remote attestation occurs only at the beginning when two parties
// communicate for the first time. Thus, the overhead of remote
// attestation is minimal" (§5). Quantifies that claim: cost of the first
// message to a new peer (attestation + channel setup) vs each subsequent
// message, and the amortized per-message cost as a session grows.
#include "bench_util.h"
#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"

using namespace tenet;
using namespace tenet::core;

namespace {

/// Minimal secure-messaging app (send via control subfn 1).
class PingApp final : public SecureApp {
 public:
  using SecureApp::SecureApp;
  void on_secure_message(Ctx&, netsim::NodeId, crypto::BytesView) override {}
  crypto::Bytes on_control(Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    if (subfn == 1) {
      crypto::Reader r(arg);
      const netsim::NodeId peer = r.u32();
      ctx.send_secure(peer, r.lv());
    }
    return {};
  }
};

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bench::title("Ablation A3: attestation caching (first contact vs steady "
               "state)");

  netsim::Simulator sim;
  sgx::Authority authority;
  OpenProject project("ping", "tenet ping app v1\n", nullptr);
  const sgx::AttestationConfig cfg = project.policy();
  const sgx::Authority* auth = &authority;
  sgx::EnclaveImage image = project.build();
  image.factory = [auth, cfg] { return std::make_unique<PingApp>(*auth, cfg); };

  EnclaveNode a(sim, authority, "initiator", project.foundation(), image);
  EnclaveNode b(sim, authority, "responder", project.foundation(), image);
  a.start();
  b.start();

  auto total_cycles = [&] {
    sgx::CostModel m;
    const auto sa = a.cost_snapshot();
    const auto sb = b.cost_snapshot();
    return m.cycles_of(sa) + m.cycles_of(sb);
  };

  // First contact: attestation + DH + channel bootstrap.
  const double before_attest = total_cycles();
  a.connect_to(b.id());
  sim.run();
  const double attest_cost = total_cycles() - before_attest;
  std::printf("\nfirst contact (attestation + channel bootstrap): %s cycles\n",
              bench::human(attest_cost).c_str());

  // Steady state: sealed records over the established channel.
  const crypto::Bytes payload(512, 0x42);
  crypto::Bytes arg;
  crypto::append_u32(arg, b.id());
  crypto::append_lv(arg, payload);

  const double before_msgs = total_cycles();
  constexpr int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) {
    (void)a.control(1, arg);
  }
  sim.run();
  const double per_message = (total_cycles() - before_msgs) / kMessages;
  std::printf("steady-state secure message (512B)             : %s cycles\n",
              bench::human(per_message).c_str());
  std::printf("attestation equals ~%.0f messages of traffic\n",
              attest_cost / per_message);

  bench::section("amortization (attestation share of total session cost)");
  std::printf("%12s %14s\n", "#messages", "attest share");
  for (const int n : {1, 10, 100, 1000, 10000}) {
    const double share = attest_cost / (attest_cost + n * per_message);
    std::printf("%12d %13.1f%%\n", n, 100 * share);
  }

  bench::section("re-keying vs caching");
  // Without caching every message would pay the attestation price:
  std::printf("hypothetical no-cache cost per message: %s cycles (%.0fx the "
              "cached cost)\n",
              bench::human(attest_cost + per_message).c_str(),
              (attest_cost + per_message) / per_message);
  const bool ok = attest_cost > per_message;
  std::printf("\nattestation >> per-message cost, caching essential: %s\n",
              ok ? "yes (as the paper assumes)" : "NO");
  return ok ? 0 : 1;
}
