// Million-session data plane benchmark (PR 7, DESIGN.md §13).
//
// Three measurements (the open-path duel joined in PR 8 alongside the
// receive-side batched open):
//
//  * "record path duel": the same record stream sealed twice — once the
//    way the tree worked before this PR (per-record seal() allocating a
//    fresh record, then copied into the framed ocall request; scalar
//    crypto backend) and once through the zero-copy batched path
//    (seal_batch writing straight into preallocated frame tails through
//    the multi-buffer AES-NI kernel). Both streams must be byte-identical
//    — the speedup is only meaningful if the fast path is the same
//    protocol — and the gated `speedup_floor_met` bit asserts the >=3x
//    floor at batch width >= 16.
//
//  * "open path duel": the receive-side mirror — the same sealed stream
//    opened once with the scalar open_in_place loop and once through
//    open_batch. Every record must be accepted on both paths and the
//    decrypted arenas must be byte-identical (`open_mismatch_records`,
//    `open_rejected_records` gate at 0).
//
//  * "session sweep": records/sec + cycles/byte as the live session count
//    grows 1 -> 10^6 (--large). Sessions live in a SessionCache whose hot
//    tier is far smaller than the session count, and each session's cold
//    state is pinned to an emulated EPC page (16 sessions/page), so the
//    sweep crosses two knees: the hot-tier knee (resume + key re-expansion
//    per record) and the EPC-capacity knee (EWB/ELDU re-encryption per
//    resume once pages exceed the 32k-page EPC).
//
// Output: human tables by default; `--json` prints one flat JSON object
// for bench/compare_bench.py --key pr7 (baseline BENCH_pr7.json). The
// gated metrics are deterministic (byte-equality bits, cache/EPC counts,
// the speedup floor bit) — raw throughput is informational, machine noise
// must not fail the gate. `--large` grows the sweep for the nightly
// dataplane-large leg (tools/dataplane_summary.py renders the curve).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "crypto/multibuf.h"
#include "crypto/rng.h"
#include "netsim/session_cache.h"
#include "sgx/epc.h"

using namespace tenet;
using Clock = std::chrono::steady_clock;

namespace {

constexpr uint64_t kSeed = 2015;
constexpr double kNominalGhz = 2.1;  // reference machine (BENCH_pr1.json)
constexpr size_t kBatchWidth = 32;

/// Current resident set in MB (Linux /proc; 0 if unavailable).
double vm_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  double mb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

uint64_t fold(uint64_t h, uint64_t v) {
  return (h ^ v) * 1099511628211ull;  // FNV-1a step
}

uint64_t fold_bytes(uint64_t h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) h = fold(h, p[i]);
  return h;
}

crypto::Bytes channel_key() {
  return crypto::Drbg::from_label(kSeed, "bench.dp.key")
      .bytes(netsim::SecureChannel::kKeySize);
}

// ---------------------------------------------------------------------
// Record-path duel: legacy per-record seal+copy vs zero-copy seal_batch.

struct DuelResult {
  double legacy_seconds = 0;
  double batched_seconds = 0;
  size_t records = 0;
  size_t record_bytes = 0;
  size_t mismatched_records = 0;
  uint64_t checksum = 0;
  [[nodiscard]] double legacy_rps() const {
    return legacy_seconds > 0
               ? static_cast<double>(records) / legacy_seconds
               : 0;
  }
  [[nodiscard]] double batched_rps() const {
    return batched_seconds > 0
               ? static_cast<double>(records) / batched_seconds
               : 0;
  }
  [[nodiscard]] double speedup() const {
    return legacy_rps() > 0 ? batched_rps() / legacy_rps() : 0;
  }
};

DuelResult run_duel(size_t n_records, size_t record_bytes) {
  const crypto::Bytes key = channel_key();
  const crypto::Bytes plain =
      crypto::Drbg::from_label(kSeed, "bench.dp.payload").bytes(record_bytes);
  const size_t sealed = netsim::SecureChannel::sealed_size(record_bytes);

  DuelResult res;
  res.records = n_records;
  res.record_bytes = record_bytes;

  // One contiguous frame arena per path stands in for the framed ocall
  // requests (PR 4 ring slots / PR 6 pooled payloads).
  std::vector<uint8_t> legacy_frames(n_records * sealed);
  std::vector<uint8_t> batched_frames(n_records * sealed);

  // Best-of-two timed runs per path (fresh channel each run so sequence
  // numbers — and therefore bytes — are identical across runs and paths).
  const auto time_legacy = [&] {
    netsim::SecureChannel chan(key, /*initiator=*/true);
    const auto prev = crypto::mb::set_backend(crypto::mb::Backend::kScalar);
    const auto t0 = Clock::now();
    for (size_t i = 0; i < n_records; ++i) {
      // Pre-PR shape: seal() allocates the record, the framing layer then
      // copies it into the request buffer.
      const crypto::Bytes rec = chan.seal(plain);
      std::memcpy(legacy_frames.data() + i * sealed, rec.data(), rec.size());
    }
    const double s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    crypto::mb::set_backend(prev);
    return s;
  };
  const auto time_batched = [&] {
    netsim::SecureChannel chan(key, /*initiator=*/true);
    const auto prev = crypto::mb::set_backend(crypto::mb::Backend::kBatched);
    const auto t0 = Clock::now();
    std::vector<netsim::SecureChannel::SealSlot> slots;
    slots.reserve(kBatchWidth);
    for (size_t i = 0; i < n_records; i += kBatchWidth) {
      const size_t width = std::min(kBatchWidth, n_records - i);
      slots.clear();
      for (size_t j = 0; j < width; ++j) {
        slots.push_back(netsim::SecureChannel::SealSlot{
            plain, batched_frames.data() + (i + j) * sealed});
      }
      chan.seal_batch(slots);
    }
    const double s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    crypto::mb::set_backend(prev);
    return s;
  };

  res.legacy_seconds = std::min(time_legacy(), time_legacy());
  res.batched_seconds = std::min(time_batched(), time_batched());

  for (size_t i = 0; i < n_records; ++i) {
    if (std::memcmp(legacy_frames.data() + i * sealed,
                    batched_frames.data() + i * sealed, sealed) != 0) {
      ++res.mismatched_records;
    }
  }
  res.checksum = fold_bytes(0, batched_frames.data(), batched_frames.size());
  return res;
}

// ---------------------------------------------------------------------
// Receive-side duel: scalar open_in_place loop vs one open_batch call
// over the same sealed stream. Both must accept every record and leave
// identical plaintext bytes (the checksum pins it).

struct OpenDuelResult {
  double scalar_seconds = 0;
  double batched_seconds = 0;
  size_t records = 0;
  size_t record_bytes = 0;
  size_t mismatched_records = 0;  // result or plaintext disagreement
  size_t rejected_records = 0;    // any path refusing a genuine record
  uint64_t checksum = 0;
  [[nodiscard]] double scalar_rps() const {
    return scalar_seconds > 0
               ? static_cast<double>(records) / scalar_seconds
               : 0;
  }
  [[nodiscard]] double batched_rps() const {
    return batched_seconds > 0
               ? static_cast<double>(records) / batched_seconds
               : 0;
  }
  [[nodiscard]] double speedup() const {
    return scalar_rps() > 0 ? batched_rps() / scalar_rps() : 0;
  }
};

OpenDuelResult run_open_duel(size_t n_records, size_t record_bytes) {
  const crypto::Bytes key = channel_key();
  const crypto::Bytes plain =
      crypto::Drbg::from_label(kSeed, "bench.dp.payload").bytes(record_bytes);
  const size_t sealed = netsim::SecureChannel::sealed_size(record_bytes);

  OpenDuelResult res;
  res.records = n_records;
  res.record_bytes = record_bytes;

  // One sealed stream, replayed into each receiver from its own arena so
  // in-place decryption cannot leak state across the timed runs.
  std::vector<uint8_t> stream(n_records * sealed);
  {
    netsim::SecureChannel sender(key, /*initiator=*/true);
    std::vector<netsim::SecureChannel::SealSlot> slots;
    for (size_t i = 0; i < n_records; ++i) {
      slots.push_back(
          netsim::SecureChannel::SealSlot{plain, stream.data() + i * sealed});
    }
    sender.seal_batch(slots);
  }

  std::vector<uint8_t> scalar_arena(stream.size());
  std::vector<uint8_t> batched_arena(stream.size());
  const auto time_scalar = [&] {
    std::memcpy(scalar_arena.data(), stream.data(), stream.size());
    netsim::SecureChannel chan(key, /*initiator=*/false);
    const auto prev = crypto::mb::set_backend(crypto::mb::Backend::kScalar);
    const auto t0 = Clock::now();
    for (size_t i = 0; i < n_records; ++i) {
      const auto len = chan.open_in_place(
          std::span<uint8_t>(scalar_arena.data() + i * sealed, sealed));
      if (!len.has_value()) ++res.rejected_records;
    }
    const double s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    crypto::mb::set_backend(prev);
    return s;
  };
  const auto time_batched = [&] {
    std::memcpy(batched_arena.data(), stream.data(), stream.size());
    netsim::SecureChannel chan(key, /*initiator=*/false);
    const auto prev = crypto::mb::set_backend(crypto::mb::Backend::kBatched);
    std::vector<std::span<uint8_t>> records(kBatchWidth);
    std::vector<std::optional<size_t>> results(kBatchWidth);
    const auto t0 = Clock::now();
    for (size_t i = 0; i < n_records; i += kBatchWidth) {
      const size_t width = std::min(kBatchWidth, n_records - i);
      for (size_t j = 0; j < width; ++j) {
        records[j] = std::span<uint8_t>(
            batched_arena.data() + (i + j) * sealed, sealed);
      }
      chan.open_batch(std::span<const std::span<uint8_t>>(records.data(), width),
                      std::span<std::optional<size_t>>(results.data(), width));
      for (size_t j = 0; j < width; ++j) {
        if (!results[j].has_value()) ++res.rejected_records;
      }
    }
    const double s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    crypto::mb::set_backend(prev);
    return s;
  };

  // Single timed run per path (a repeat run would replay the stream into
  // the same channel and hit the replay window); rejected_records sums
  // over both paths and must be zero on a genuine stream.
  res.scalar_seconds = time_scalar();
  res.batched_seconds = time_batched();

  for (size_t i = 0; i < n_records; ++i) {
    if (std::memcmp(scalar_arena.data() + i * sealed,
                    batched_arena.data() + i * sealed, sealed) != 0) {
      ++res.mismatched_records;
    }
  }
  res.checksum = fold_bytes(0, batched_arena.data(), batched_arena.size());
  return res;
}

// ---------------------------------------------------------------------
// Session sweep: throughput vs live session count under a bounded hot
// tier and EPC-resident cold state.

constexpr size_t kSessionsPerEpcPage = 16;  // 256 B of cold state each
constexpr size_t kEpcCapacityPages = 32 * 1024;  // ~128 MB, 2015 hardware
constexpr size_t kHotCapacity = 4096;
constexpr size_t kSweepRecordBytes = 256;

struct SweepPoint {
  size_t sessions = 0;
  size_t records = 0;
  double seconds = 0;
  uint64_t hot_hits = 0;
  uint64_t resumes = 0;
  uint64_t evictions = 0;
  size_t epc_pages = 0;      // pages backing the cold tier
  size_t epc_resident = 0;   // resident after the run (rest spilled)
  uint64_t epc_reloads = 0;  // ELDU reloads during the run (the EPC knee)
  uint64_t checksum = 0;
  double rss_mb = 0;
  [[nodiscard]] double records_per_sec() const {
    return seconds > 0 ? static_cast<double>(records) / seconds : 0;
  }
  [[nodiscard]] double cycles_per_byte() const {
    if (records == 0 || seconds <= 0) return 0;
    const double ns_per_byte =
        seconds * 1e9 /
        static_cast<double>(records * kSweepRecordBytes);
    return ns_per_byte * kNominalGhz;
  }
};

SweepPoint run_sweep_point(size_t n_sessions, size_t n_records) {
  SweepPoint pt;
  pt.sessions = n_sessions;
  pt.records = n_records;
  pt.epc_pages = (n_sessions + kSessionsPerEpcPage - 1) / kSessionsPerEpcPage;

  crypto::Drbg keys = crypto::Drbg::from_label(kSeed, "bench.dp.sweep");
  const crypto::Bytes mee_key = keys.bytes(32);
  sgx::Epc epc(mee_key, kEpcCapacityPages);
  netsim::SessionCache cache(kHotCapacity);

  // Install every session and pin its cold state to an EPC page (16
  // sessions per page). add_page spills older pages once the EPC is full —
  // the same EWB path enclave heaps take under pressure.
  constexpr sgx::EnclaveId kOwner = 1;
  crypto::Bytes page(sgx::kPageSize, 0);
  for (size_t s = 0; s < n_sessions; ++s) {
    cache.install(s, keys.bytes(netsim::SecureChannel::kKeySize),
                  /*initiator=*/true);
    if (s % kSessionsPerEpcPage == 0) {
      page[0] = static_cast<uint8_t>(s);
      epc.add_page(kOwner, s / kSessionsPerEpcPage, page);
    }
  }

  const crypto::Bytes plain =
      crypto::Drbg::from_label(kSeed, "bench.dp.sweep.payload")
          .bytes(kSweepRecordBytes);
  std::vector<uint8_t> out(
      netsim::SecureChannel::sealed_size(kSweepRecordBytes));

  // Deterministic peer stream (LCG) so hits/misses/evictions — and the
  // sealed bytes — are identical run-to-run and machine-to-machine.
  uint64_t lcg = kSeed;
  const uint64_t base_resumes = cache.stats().resumes;
  const auto t0 = Clock::now();
  for (size_t i = 0; i < n_records; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t peer = (lcg >> 33) % n_sessions;
    const uint64_t resumes_before = cache.stats().resumes;
    netsim::SecureChannel* chan = cache.find(peer);
    if (cache.stats().resumes != resumes_before) {
      // Cold session: its state has to come back through the MEE before
      // the channel can be rebuilt (ELDU reload if the page was spilled).
      (void)epc.read_page(kOwner, peer / kSessionsPerEpcPage);
    }
    chan->seal_into(plain, out);
    pt.checksum = fold_bytes(pt.checksum, out.data(), out.size());
  }
  pt.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  pt.hot_hits = cache.stats().hot_hits;
  pt.resumes = cache.stats().resumes - base_resumes;
  pt.evictions = cache.stats().evictions;
  pt.epc_resident = epc.pages_in_use();
  pt.epc_reloads = epc.reloads();
  pt.rss_mb = vm_rss_mb();
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bool json = false;
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--json") json = true;
    if (a == "--large") large = true;
  }

  // Workload sizes. The nightly telemetry-capture job traces every event;
  // shrink hard so it stays within budget.
  size_t duel_records = large ? 100'000 : 40'000;
  size_t duel_bytes = 1024;
  std::vector<size_t> sweep_sessions =
      large ? std::vector<size_t>{1, 1'000, 65'536, 262'144, 1'048'576}
            : std::vector<size_t>{1, 1'000, 65'536, 262'144};
  size_t sweep_records = large ? 200'000 : 60'000;
  if (telemetry.active()) {
    duel_records = 4'000;
    sweep_sessions = {1, 1'000};
    sweep_records = 5'000;
  }

  if (!json) {
    bench::title("bench_dataplane — million-session record path (DESIGN.md §13)");
    bench::section("record path duel: legacy seal+copy vs zero-copy seal_batch");
    std::printf("%8s %14s %14s %9s %10s\n", "bytes", "legacy rec/s",
                "batched rec/s", "speedup", "identical");
  }

  // The gated duel runs at 1024 B; smaller sizes are printed for shape
  // (the HMAC floor shrinks the AES win as records shrink).
  DuelResult gated;
  for (const size_t bytes :
       json ? std::vector<size_t>{duel_bytes}
            : std::vector<size_t>{64, 256, 1024, 4096}) {
    const DuelResult r =
        run_duel(bytes == duel_bytes ? duel_records : duel_records / 2, bytes);
    if (bytes == duel_bytes) gated = r;
    if (!json) {
      std::printf("%8zu %14s %14s %8.2fx %10s\n", bytes,
                  bench::human(r.legacy_rps()).c_str(),
                  bench::human(r.batched_rps()).c_str(), r.speedup(),
                  r.mismatched_records == 0 ? "yes" : "NO");
    }
  }
  const bool floor_met = gated.speedup() >= 3.0 && kBatchWidth >= 16;

  // Receive-side mirror of the duel: same stream opened both ways.
  if (!json) {
    bench::section("open path duel: scalar open_in_place vs open_batch");
    std::printf("%8s %14s %14s %9s %10s\n", "bytes", "scalar rec/s",
                "batched rec/s", "speedup", "identical");
  }
  OpenDuelResult open_gated;
  for (const size_t bytes :
       json ? std::vector<size_t>{duel_bytes}
            : std::vector<size_t>{64, 256, 1024, 4096}) {
    const OpenDuelResult r = run_open_duel(
        bytes == duel_bytes ? duel_records : duel_records / 2, bytes);
    if (bytes == duel_bytes) open_gated = r;
    if (!json) {
      std::printf("%8zu %14s %14s %8.2fx %10s\n", bytes,
                  bench::human(r.scalar_rps()).c_str(),
                  bench::human(r.batched_rps()).c_str(), r.speedup(),
                  r.mismatched_records == 0 && r.rejected_records == 0
                      ? "yes"
                      : "NO");
    }
  }

  if (!json) {
    bench::section("session sweep: records/sec vs live sessions");
    std::printf("%10s %12s %14s %10s %9s %9s %9s %9s\n", "sessions",
                "records/s", "cycles/byte", "hot hits", "resumes", "EPC pg",
                "reloads", "RSS MB");
  }

  std::vector<SweepPoint> curve;
  for (const size_t n : sweep_sessions) {
    curve.push_back(run_sweep_point(n, sweep_records));
    if (!json) {
      const SweepPoint& p = curve.back();
      std::printf("%10zu %12s %14.1f %10llu %9llu %9zu %9llu %9.1f\n",
                  p.sessions, bench::human(p.records_per_sec()).c_str(),
                  p.cycles_per_byte(),
                  static_cast<unsigned long long>(p.hot_hits),
                  static_cast<unsigned long long>(p.resumes), p.epc_pages,
                  static_cast<unsigned long long>(p.epc_reloads), p.rss_mb);
    }
  }
  const SweepPoint& top = curve.back();

  if (json) {
    // Gated metrics first (deterministic), throughput after
    // (informational). Checksums are folded to 32 bits so they stay exact
    // in JSON doubles.
    std::printf("{\n");
    std::printf("  \"batch_mismatch_records\": %zu,\n",
                gated.mismatched_records);
    std::printf("  \"speedup_floor_met\": %d,\n", floor_met ? 1 : 0);
    std::printf("  \"batch_width\": %zu,\n", kBatchWidth);
    std::printf("  \"duel_checksum32\": %llu,\n",
                static_cast<unsigned long long>(gated.checksum & 0xffffffff));
    std::printf("  \"sweep_sessions_top\": %zu,\n", top.sessions);
    std::printf("  \"sweep_resumes_top\": %llu,\n",
                static_cast<unsigned long long>(top.resumes));
    std::printf("  \"sweep_checksum32\": %llu,\n",
                static_cast<unsigned long long>(top.checksum & 0xffffffff));
    std::printf("  \"epc_pages_top\": %zu,\n", top.epc_pages);
    std::printf("  \"open_mismatch_records\": %zu,\n",
                open_gated.mismatched_records);
    std::printf("  \"open_rejected_records\": %zu,\n",
                open_gated.rejected_records);
    std::printf("  \"open_checksum32\": %llu,\n",
                static_cast<unsigned long long>(open_gated.checksum &
                                                0xffffffff));
    std::printf("  \"duel_record_bytes\": %zu,\n", gated.record_bytes);
    std::printf("  \"duel_speedup_x\": %.2f,\n", gated.speedup());
    std::printf("  \"open_speedup_x\": %.2f,\n", open_gated.speedup());
    std::printf("  \"scalar_opens_per_sec\": %.0f,\n", open_gated.scalar_rps());
    std::printf("  \"batched_opens_per_sec\": %.0f,\n",
                open_gated.batched_rps());
    std::printf("  \"legacy_records_per_sec\": %.0f,\n", gated.legacy_rps());
    std::printf("  \"batched_records_per_sec\": %.0f,\n", gated.batched_rps());
    std::printf("  \"sweep_records_per_sec_top\": %.0f,\n",
                top.records_per_sec());
    std::printf("  \"sweep_cycles_per_byte_top\": %.2f,\n",
                top.cycles_per_byte());
    std::printf("  \"sweep_rss_mb\": %.1f,\n", top.rss_mb);
    std::printf("  \"curve\": [\n");
    for (size_t i = 0; i < curve.size(); ++i) {
      const SweepPoint& p = curve[i];
      std::printf(
          "    {\"sessions\": %zu, \"records_per_sec\": %.0f, "
          "\"cycles_per_byte\": %.2f, \"hot_hits\": %llu, "
          "\"resumes\": %llu, \"epc_pages\": %zu, \"epc_resident\": %zu, "
          "\"epc_reloads\": %llu, \"rss_mb\": %.1f}%s\n",
          p.sessions, p.records_per_sec(), p.cycles_per_byte(),
          static_cast<unsigned long long>(p.hot_hits),
          static_cast<unsigned long long>(p.resumes), p.epc_pages,
          p.epc_resident, static_cast<unsigned long long>(p.epc_reloads),
          p.rss_mb, i + 1 < curve.size() ? "," : "");
    }
    std::printf("  ]\n");
    std::printf("}\n");
  } else {
    std::printf(
        "\nduel @%zuB: %.2fx (floor >=3x at batch >= 16: %s), "
        "streams identical: %s\n",
        gated.record_bytes, gated.speedup(), floor_met ? "MET" : "NOT MET",
        gated.mismatched_records == 0 ? "yes" : "NO");
  }

  if (gated.mismatched_records != 0) {
    std::fprintf(stderr, "bench_dataplane: BATCHED STREAM DIVERGES\n");
    return 1;
  }
  if (open_gated.mismatched_records != 0 || open_gated.rejected_records != 0) {
    std::fprintf(stderr, "bench_dataplane: BATCHED OPEN PATH DIVERGES\n");
    return 1;
  }
  return 0;
}
