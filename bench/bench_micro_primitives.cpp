// Micro-benchmarks (google-benchmark): wall-clock timings of every
// substrate primitive the reproduction is built from. These are sanity
// numbers for the emulator itself (the paper-facing metrics are the
// instruction counts printed by the table benches).
#include <benchmark/benchmark.h>

#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/dh.h"
#include "crypto/hmac.h"
#include "crypto/rng.h"
#include "crypto/schnorr.h"
#include "crypto/sha256.h"
#include "mbox/dpi.h"
#include "routing/bgp.h"
#include "sgx/apps.h"
#include "sgx/platform.h"
#include "tor/cell.h"
#include "tor/dht.h"

using namespace tenet;

namespace {

crypto::Drbg& rng() {
  static crypto::Drbg r = crypto::Drbg::from_label(42, "bench.micro");
  return r;
}

// --- crypto ---

void BM_Sha256_1KB(benchmark::State& state) {
  const crypto::Bytes data = rng().bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_HmacSha256_256B(benchmark::State& state) {
  const crypto::Bytes key = rng().bytes(32);
  const crypto::Bytes data = rng().bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256_256B);

void BM_Aes128_EcbBlock(benchmark::State& state) {
  crypto::AesKey128 key{};
  rng().fill(key);
  const crypto::Aes128 aes(key);
  crypto::AesBlock block{};
  for (auto _ : state) {
    aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128_EcbBlock);

void BM_Aes128_Ctr1500B(benchmark::State& state) {
  crypto::AesKey128 key{};
  rng().fill(key);
  const crypto::Aes128 aes(key);
  const crypto::Bytes packet = rng().bytes(1500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes.ctr_crypt(1, 0, packet));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1500);
}
BENCHMARK(BM_Aes128_Ctr1500B);

void BM_AeadSealOpen_1500B(benchmark::State& state) {
  const crypto::Aead aead(rng().bytes(32));
  const crypto::Bytes packet = rng().bytes(1500);
  uint64_t seq = 0;
  for (auto _ : state) {
    const crypto::Bytes record = aead.seal(1, seq++, packet);
    benchmark::DoNotOptimize(aead.open(record));
  }
}
BENCHMARK(BM_AeadSealOpen_1500B);

void BM_ModExp1024(benchmark::State& state) {
  // The single primitive that dominates the paper's attestation cost
  // (Table 1): one 1024-bit modular exponentiation with a ~1023-bit
  // exponent, fresh Montgomery context per call (mod_exp's own path).
  const crypto::DhGroup& g = crypto::DhGroup::oakley_group2();
  const crypto::BigInt base =
      crypto::BigInt::from_bytes_be(rng().bytes(128)).mod(g.p());
  const crypto::BigInt e =
      crypto::BigInt::from_bytes_be(rng().bytes(128)).mod(g.q());
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::BigInt::mod_exp(base, e, g.p()));
  }
}
BENCHMARK(BM_ModExp1024);

void BM_DhExchange(benchmark::State& state) {
  const crypto::DhGroup* groups[] = {
      &crypto::DhGroup::oakley_group1(), &crypto::DhGroup::oakley_group2(),
      &crypto::DhGroup::modp_group5(), &crypto::DhGroup::modp_group14()};
  const crypto::DhGroup& g = *groups[state.range(0)];
  for (auto _ : state) {
    const crypto::DhKeyPair a(g, rng());
    const crypto::DhKeyPair b(g, rng());
    benchmark::DoNotOptimize(a.shared_secret(b.public_value()));
  }
  state.SetLabel(g.name());
}
BENCHMARK(BM_DhExchange)->DenseRange(0, 3);

void BM_SchnorrSign(benchmark::State& state) {
  const crypto::SchnorrKeyPair kp(crypto::DhGroup::oakley_group2(), rng());
  const crypto::Bytes msg = rng().bytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.sign_deterministic(msg));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  const crypto::SchnorrKeyPair kp(crypto::DhGroup::oakley_group2(), rng());
  const crypto::Bytes msg = rng().bytes(64);
  const crypto::SchnorrSignature sig = kp.sign_deterministic(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.public_key().verify(msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

// --- SGX emulator ---

void BM_EnclaveEcallRoundTrip(benchmark::State& state) {
  sgx::Authority authority;
  sgx::Vendor vendor("micro");
  sgx::Platform platform(authority, "micro-ecall");
  sgx::Enclave& enclave = platform.launch(vendor, sgx::apps::echo_image());
  const crypto::Bytes arg = rng().bytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave.ecall(sgx::apps::kEchoReverse, arg));
  }
}
BENCHMARK(BM_EnclaveEcallRoundTrip);

void BM_QuoteGeneration(benchmark::State& state) {
  sgx::Authority authority;
  sgx::Vendor vendor("micro");
  sgx::Platform platform(authority, "micro-quote");
  sgx::AttestationConfig cfg;
  sgx::Enclave& target =
      platform.launch(vendor, sgx::apps::target_image(authority, cfg));
  (void)platform.quoting_enclave();
  // Drive a full attestation round per iteration (includes QUOTE).
  sgx::Platform challenger_host(authority, "micro-quote-chal");
  sgx::Enclave& challenger = challenger_host.launch(
      vendor, sgx::apps::challenger_image(authority, cfg));
  for (auto _ : state) {
    state.PauseTiming();
    sgx::Enclave& fresh_chal = challenger_host.launch(
        vendor, sgx::apps::challenger_image(authority, cfg));
    state.ResumeTiming();
    const crypto::Bytes msg1 = fresh_chal.ecall(sgx::apps::kCreateChallenge, {});
    const crypto::Bytes msg2 = target.ecall(sgx::apps::kHandleChallenge, msg1);
    benchmark::DoNotOptimize(
        fresh_chal.ecall(sgx::apps::kConsumeResponse, msg2));
    state.PauseTiming();
    fresh_chal.destroy();
    state.ResumeTiming();
  }
  (void)challenger;
}
BENCHMARK(BM_QuoteGeneration)->Iterations(20);

// --- applications ---

void BM_BgpCompute(benchmark::State& state) {
  crypto::Drbg topo_rng = crypto::Drbg::from_label(
      static_cast<uint64_t>(state.range(0)), "bench.bgp");
  const routing::AsGraph graph =
      routing::AsGraph::random(topo_rng, static_cast<size_t>(state.range(0)));
  const auto policies = routing::RoutingPolicy::from_graph(graph, topo_rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::BgpComputation::compute(policies));
  }
}
BENCHMARK(BM_BgpCompute)->Arg(10)->Arg(20)->Arg(30);

void BM_ChordLookup(benchmark::State& state) {
  tor::ChordRing ring;
  for (netsim::NodeId i = 1; i <= state.range(0); ++i) {
    tor::RelayDescriptor d;
    d.node = i;
    d.nickname = "r" + std::to_string(i);
    d.onion_public = crypto::Bytes(16, static_cast<uint8_t>(i));
    ring.join(d);
  }
  netsim::NodeId target = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.find_relay(target));
    target = target % static_cast<netsim::NodeId>(state.range(0)) + 1;
  }
}
BENCHMARK(BM_ChordLookup)->Arg(16)->Arg(256);

void BM_DpiScan_1500B(benchmark::State& state) {
  mbox::PatternSet patterns;
  for (int i = 0; i < 32; ++i) patterns.add("signature-" + std::to_string(i));
  patterns.build();
  mbox::DpiScanner scanner(patterns);
  const crypto::Bytes packet = rng().bytes(1500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scanner.scan(packet));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1500);
}
BENCHMARK(BM_DpiScan_1500B);

void BM_OnionWrap3Hops(benchmark::State& state) {
  tor::OnionCrypt onion;
  for (int i = 0; i < 3; ++i) {
    onion.add_hop(tor::HopKeys::derive(rng().bytes(128)));
  }
  const crypto::Bytes payload = rng().bytes(498);
  for (auto _ : state) {
    benchmark::DoNotOptimize(onion.wrap_forward(payload));
  }
}
BENCHMARK(BM_OnionWrap3Hops);

}  // namespace

BENCHMARK_MAIN();
