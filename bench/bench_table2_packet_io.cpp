// Table 2 reproduction: "Number of instructions of a single packet
// transmission" — in-enclave I/O cost with and without crypto, 1 packet
// vs a 100-packet run.
//
// Paper (OpenSGX, MTU packets, AES-128 "crypto" columns):
//               SGX (1 packet)        SGX (100 packets)
//               w/o crypto  crypto    w/o crypto  crypto
//   SGX(U)      6           6         204         204
//   Normal      13K         97K       136K        972K
//
// PR-4 axis: --switchless adds a comparison of the same 100-packet run
// with the enclave's transitions served through the switchless rings
// (DESIGN.md §10) — same payload bytes on the wire, a fraction of the
// EENTER/EEXIT/ERESUME transitions. --json prints the deterministic
// numbers as one flat JSON object (the BENCH_pr4.json gate input; see
// bench/compare_bench.py --check --key pr4).
#include <cstring>

#include "bench_util.h"
#include "sgx/apps.h"

using namespace tenet;
using namespace tenet::sgx;

namespace {

struct SendRun {
  CostModel::Snapshot app;      // enclave + host, whole-application
  uint64_t handler_bytes = 0;   // payload bytes the untrusted handler saw
  uint64_t handler_calls = 0;   // times the untrusted handler ran
};

SendRun run_send(uint32_t packets, bool crypto_on, bool switchless) {
  Authority authority;
  Vendor vendor("io-vendor");
  Platform platform(authority, "io-host-" + std::to_string(packets) +
                                   (crypto_on ? "-c" : "-p") +
                                   (switchless ? "-sw" : ""));
  Enclave& enclave = platform.launch(vendor, apps::packet_sender_image());
  if (switchless) enclave.enable_switchless();
  SendRun run;
  enclave.set_ocall_handler(
      [&platform, &run](uint32_t code, crypto::BytesView payload)
          -> crypto::Bytes {
        if (code == apps::kOcallNetOpen) {
          // Untrusted socket setup: syscall-heavy one-time cost.
          platform.host_cost().charge_normal(8'000);
        }
        run.handler_bytes += payload.size();
        ++run.handler_calls;
        return {};
      });

  apps::SendRunRequest req;
  req.packet_count = packets;
  req.packet_size = 1500;  // MTU, as in the paper
  req.encrypt = crypto_on;

  const auto before = enclave.cost().snapshot();
  const auto host_before = platform.host_cost().snapshot();
  const crypto::Bytes out = enclave.ecall(apps::kSendRun, req.serialize());
  if (out.empty() || crypto::read_u32(out, 0) != packets) {
    std::fprintf(stderr, "send run failed\n");
    std::exit(1);
  }
  // Whole-application accounting (enclave + untrusted runtime), matching
  // how OpenSGX counted the paper's numbers.
  run.app = enclave.cost().delta(before);
  const auto host = platform.host_cost().delta(host_before);
  run.app.normal += host.normal;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  using bench::human;
  bool want_switchless = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--switchless") == 0) want_switchless = true;
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }

  const SendRun p1 = run_send(1, false, false);
  const SendRun c1 = run_send(1, true, false);
  const SendRun p100 = run_send(100, false, false);
  const SendRun c100 = run_send(100, true, false);

  // Shape checks (Table 2 invariants; these gate the exit code).
  const bool linear_sgx =
      p1.app.sgx_user == 6 && p100.app.sgx_user == 204;  // 2N + 4 exactly
  const bool crypto_same_sgx = c1.app.sgx_user == p1.app.sgx_user + 1 &&
                               c100.app.sgx_user == p100.app.sgx_user + 1;
  const bool crypto_scales =
      c100.app.normal - p100.app.normal > 50 * (c1.app.normal - p1.app.normal);

  // Switchless axis: identical 100-packet run, transitions served through
  // the rings. Equal payload bytes is part of the acceptance criteria.
  const SendRun sw100 = run_send(100, false, true);
  const SendRun swc100 = run_send(100, true, true);
  const bool equal_bytes = sw100.handler_bytes == p100.handler_bytes &&
                           sw100.handler_calls == p100.handler_calls &&
                           swc100.handler_bytes == c100.handler_bytes;
  const double reduction =
      sw100.app.transitions == 0
          ? 0.0
          : static_cast<double>(p100.app.transitions) /
                static_cast<double>(sw100.app.transitions);

  if (json) {
    // Flat JSON only — consumed by bench/compare_bench.py and appended to
    // bench_history.jsonl. Every number below is simulator-deterministic.
    std::printf(
        "{\n"
        "  \"sync_100pkt_transitions\": %llu,\n"
        "  \"switchless_100pkt_transitions\": %llu,\n"
        "  \"switchless_100pkt_hits\": %llu,\n"
        "  \"switchless_100pkt_fallbacks\": %llu,\n"
        "  \"transition_reduction_x\": %.2f,\n"
        "  \"payload_bytes_equal\": %d,\n"
        "  \"sync_100pkt_sgx_user\": %llu,\n"
        "  \"switchless_100pkt_sgx_user\": %llu,\n"
        "  \"sync_100pkt_normal\": %llu,\n"
        "  \"switchless_100pkt_normal\": %llu\n"
        "}\n",
        (unsigned long long)p100.app.transitions,
        (unsigned long long)sw100.app.transitions,
        (unsigned long long)sw100.app.switchless_hits,
        (unsigned long long)sw100.app.switchless_fallbacks, reduction,
        equal_bytes ? 1 : 0, (unsigned long long)p100.app.sgx_user,
        (unsigned long long)sw100.app.sgx_user,
        (unsigned long long)p100.app.normal,
        (unsigned long long)sw100.app.normal);
    return linear_sgx && crypto_same_sgx && equal_bytes && reduction >= 5.0
               ? 0
               : 1;
  }

  bench::title(
      "Table 2: Number of instructions of a single packet transmission\n"
      "(MTU-sized packets, one ocall exit/resume per packet; \"crypto\" = "
      "AES-128)");

  std::printf("\n%-14s | %12s %12s | %12s %12s\n", "", "SGX (1 packet)", "",
              "SGX (100 packets)", "");
  std::printf("%-14s | %12s %12s | %12s %12s\n", "", "w/o crypto", "crypto",
              "w/o crypto", "crypto");
  std::printf("---------------+---------------------------+----------------"
              "-----------\n");
  std::printf("%-14s | %12llu %12llu | %12llu %12llu\n", "SGX(U) inst.",
              (unsigned long long)p1.app.sgx_user,
              (unsigned long long)c1.app.sgx_user,
              (unsigned long long)p100.app.sgx_user,
              (unsigned long long)c100.app.sgx_user);
  std::printf("%-14s | %12s %12s | %12s %12s\n", "Normal inst.",
              human(p1.app.normal).c_str(), human(c1.app.normal).c_str(),
              human(p100.app.normal).c_str(), human(c100.app.normal).c_str());
  std::printf("%-14s | %12s %12s | %12s %12s   (paper)\n", "SGX(U) paper",
              "6", "6", "204", "204");
  std::printf("%-14s | %12s %12s | %12s %12s   (paper)\n", "Normal paper",
              "13K", "97K", "136K", "972K");

  bench::section("shape checks");
  std::printf("SGX(U) = 2N + 4 exactly         : %s\n",
              linear_sgx ? "yes (6 and 204, as in the paper)" : "NO");
  std::printf("crypto adds ~no SGX instructions: %s (+1 EGETKEY)\n",
              crypto_same_sgx ? "yes" : "NO");
  const double amortized = static_cast<double>(p100.app.normal) / 100.0 /
                           static_cast<double>(p1.app.normal);
  std::printf("batching amortizes normal instr : per-packet cost at N=100 is "
              "%.0f%% of N=1\n", 100 * amortized);
  std::printf("crypto cost scales with packets : %s\n",
              crypto_scales ? "yes" : "NO");

  if (want_switchless) {
    bench::section("switchless axis (100 packets, w/o crypto)");
    std::printf("%-32s | %12s %12s\n", "", "sync", "switchless");
    std::printf("%-32s | %12llu %12llu\n", "enclave transitions",
                (unsigned long long)p100.app.transitions,
                (unsigned long long)sw100.app.transitions);
    std::printf("%-32s | %12llu %12llu\n", "SGX(U) inst.",
                (unsigned long long)p100.app.sgx_user,
                (unsigned long long)sw100.app.sgx_user);
    std::printf("%-32s | %12s %12s\n", "Normal inst.",
                human(p100.app.normal).c_str(),
                human(sw100.app.normal).c_str());
    std::printf("%-32s | %12s %12llu\n", "ring hits", "-",
                (unsigned long long)sw100.app.switchless_hits);
    std::printf("%-32s | %12s %12llu\n", "sync fallbacks", "-",
                (unsigned long long)sw100.app.switchless_fallbacks);
    std::printf("transition reduction            : %.1fx (acceptance: >= 5x "
                "at equal payload bytes)\n", reduction);
    std::printf("equal payload bytes on the wire : %s (%llu bytes, %llu "
                "handler runs)\n",
                equal_bytes ? "yes" : "NO",
                (unsigned long long)sw100.handler_bytes,
                (unsigned long long)sw100.handler_calls);
  }
  return linear_sgx && crypto_same_sgx && equal_bytes && reduction >= 5.0 ? 0
                                                                          : 1;
}
