// Table 2 reproduction: "Number of instructions of a single packet
// transmission" — in-enclave I/O cost with and without crypto, 1 packet
// vs a 100-packet run.
//
// Paper (OpenSGX, MTU packets, AES-128 "crypto" columns):
//               SGX (1 packet)        SGX (100 packets)
//               w/o crypto  crypto    w/o crypto  crypto
//   SGX(U)      6           6         204         204
//   Normal      13K         97K       136K        972K
#include "bench_util.h"
#include "sgx/apps.h"

using namespace tenet;
using namespace tenet::sgx;

namespace {

CostModel::Snapshot run_send(uint32_t packets, bool crypto_on) {
  Authority authority;
  Vendor vendor("io-vendor");
  Platform platform(authority, "io-host-" + std::to_string(packets) +
                                   (crypto_on ? "-c" : "-p"));
  Enclave& enclave = platform.launch(vendor, apps::packet_sender_image());
  enclave.set_ocall_handler(
      [&platform](uint32_t code, crypto::BytesView) -> crypto::Bytes {
        if (code == apps::kOcallNetOpen) {
          // Untrusted socket setup: syscall-heavy one-time cost.
          platform.host_cost().charge_normal(8'000);
        }
        return {};
      });

  apps::SendRunRequest req;
  req.packet_count = packets;
  req.packet_size = 1500;  // MTU, as in the paper
  req.encrypt = crypto_on;

  const auto before = enclave.cost().snapshot();
  const auto host_before = platform.host_cost().snapshot();
  const crypto::Bytes out = enclave.ecall(apps::kSendRun, req.serialize());
  if (out.empty() || crypto::read_u32(out, 0) != packets) {
    std::fprintf(stderr, "send run failed\n");
    std::exit(1);
  }
  // Whole-application accounting (enclave + untrusted runtime), matching
  // how OpenSGX counted the paper's numbers.
  CostModel::Snapshot d = enclave.cost().delta(before);
  const auto host = platform.host_cost().delta(host_before);
  d.normal += host.normal;
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  using bench::human;
  bench::title(
      "Table 2: Number of instructions of a single packet transmission\n"
      "(MTU-sized packets, one ocall exit/resume per packet; \"crypto\" = "
      "AES-128)");

  const auto p1 = run_send(1, false);
  const auto c1 = run_send(1, true);
  const auto p100 = run_send(100, false);
  const auto c100 = run_send(100, true);

  std::printf("\n%-14s | %12s %12s | %12s %12s\n", "", "SGX (1 packet)", "",
              "SGX (100 packets)", "");
  std::printf("%-14s | %12s %12s | %12s %12s\n", "", "w/o crypto", "crypto",
              "w/o crypto", "crypto");
  std::printf("---------------+---------------------------+----------------"
              "-----------\n");
  std::printf("%-14s | %12llu %12llu | %12llu %12llu\n", "SGX(U) inst.",
              (unsigned long long)p1.sgx_user, (unsigned long long)c1.sgx_user,
              (unsigned long long)p100.sgx_user,
              (unsigned long long)c100.sgx_user);
  std::printf("%-14s | %12s %12s | %12s %12s\n", "Normal inst.",
              human(p1.normal).c_str(), human(c1.normal).c_str(),
              human(p100.normal).c_str(), human(c100.normal).c_str());
  std::printf("%-14s | %12s %12s | %12s %12s   (paper)\n", "SGX(U) paper",
              "6", "6", "204", "204");
  std::printf("%-14s | %12s %12s | %12s %12s   (paper)\n", "Normal paper",
              "13K", "97K", "136K", "972K");

  bench::section("shape checks");
  const bool linear_sgx =
      p1.sgx_user == 6 && p100.sgx_user == 204;  // 2N + 4 exactly
  std::printf("SGX(U) = 2N + 4 exactly         : %s\n",
              linear_sgx ? "yes (6 and 204, as in the paper)" : "NO");
  const bool crypto_same_sgx =
      c1.sgx_user == p1.sgx_user + 1 && c100.sgx_user == p100.sgx_user + 1;
  std::printf("crypto adds ~no SGX instructions: %s (+1 EGETKEY)\n",
              crypto_same_sgx ? "yes" : "NO");
  const double amortized =
      static_cast<double>(p100.normal) / 100.0 / static_cast<double>(p1.normal);
  std::printf("batching amortizes normal instr : per-packet cost at N=100 is "
              "%.0f%% of N=1\n", 100 * amortized);
  const bool crypto_scales =
      c100.normal - p100.normal > 50 * (c1.normal - p1.normal);
  std::printf("crypto cost scales with packets : %s\n",
              crypto_scales ? "yes" : "NO");
  return linear_sgx && crypto_same_sgx ? 0 : 1;
}
