// Observability overhead benchmark (PR 10): what does fleet observability
// cost? Runs the same deterministic sharded chaos drill — a replicated
// inter-domain controller, one kill/heal epoch per extra shard — in three
// modes:
//
//   off            telemetry disabled (the default for every other bench)
//   events         telemetry enabled: counters, spans, the structured
//                  event log, and a virtual-clock registry scraper
//   events+health  events plus a HealthModel evaluation at every epoch
//                  boundary and a full report at the end
//
// Prints one flat JSON object for bench/compare_bench.py --key pr10
// (baseline BENCH_pr10.json). Wall-clock metrics are informational; the
// gated metrics are model/simulator-deterministic:
//   - obs_overhead_over_cap_pct: max(0, events+health overhead_pct - 5),
//     i.e. exactly 0 while full observability costs <= 5% (min-of-reps
//     keeps machine noise out);
//   - obs_lost_admissions: admitted policies lost across the drill (0);
//   - obs_replay_equal: same-seed replay produces a byte-identical event
//     log (deterministic failover + virtual-clock stamps);
//   - obs_log_consistent / obs_unhealed_shards: the event ring's
//     invariants hold and every killed shard healed;
//   - obs_fleet_events / obs_scrape_samples: instrumentation coverage (a
//     silently dropped emission or scrape fails the gate).
//
// Export plumbing for the nightly controlplane-chaos drill:
//   --events-out F   event-log JSONL      (EventLog::write_jsonl)
//   --scrapes-out F  scrape-ring JSONL    (Scraper::write_jsonl)
//   --health-out F   health report JSON   (HealthModel::report_json)
//   --kill-anomaly   the export run kills one shard WITHOUT healing it —
//                    tools/fleet_report.py --check must flag this run and
//                    pass the clean one.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

#include "bench_util.h"
#include "routing/bgp.h"
#include "routing/scenario.h"
#include "telemetry/scrape.h"
#if TENET_TELEMETRY_ENABLED
#include "telemetry/events.h"
#include "telemetry/health.h"
#endif

using namespace tenet;
using namespace tenet::routing;
using Clock = std::chrono::steady_clock;

namespace {

constexpr size_t kAses = 24;
constexpr uint64_t kSeed = 2015;
constexpr size_t kShards = 3;
constexpr double kOverheadCapPct = 5.0;

enum class Mode { kOff, kEvents, kHealth };

struct DrillStats {
  double wall_ns = 0;
  uint64_t lost_admissions = 0;
  uint64_t fleet_events = 0;
  uint64_t scrape_samples = 0;
  bool log_consistent = true;
  uint64_t unhealed_shards = 0;
  uint64_t health_evals = 0;
  std::string events_jsonl;  // replay-equality fingerprint (events modes)
};

ScenarioConfig make_config() {
  ScenarioConfig cfg;
  cfg.n_ases = kAses;
  cfg.seed = kSeed;
  cfg.robust = true;
  cfg.retry.enabled = true;
  cfg.shards = kShards;
  return cfg;
}

bool tables_match(RoutingDeployment& dep, const ComputationResult& expected) {
  for (const auto& [asn, policy] : dep.policies()) {
    if (!dep.as_has_routes(asn)) return false;
    const RoutingTable table = dep.table_of(asn);
    const auto it = expected.tables.find(asn);
    if (it == expected.tables.end() || table.size() != it->second.size()) {
      return false;
    }
    for (const auto& [prefix, route] : table) {
      const auto ref = it->second.find(prefix);
      if (ref == it->second.end() || route.as_path != ref->second.as_path) {
        return false;
      }
    }
  }
  return true;
}

/// One kill/heal epoch per extra shard; when `heal_last` is false the
/// final victim stays dead (the injected anomaly for fleet_report.py).
DrillStats run_drill(Mode mode, bool heal_last,
                     std::string* scrapes_out, std::string* health_out) {
  telemetry::set_enabled(mode != Mode::kOff);
  telemetry::tracer().reset();
#if TENET_TELEMETRY_ENABLED
  telemetry::event_log().clear();
  const telemetry::HealthModel model;
#endif
  DrillStats r;
  telemetry::Scraper scraper;

  const auto t0 = Clock::now();
  RoutingDeployment dep(make_config());
  if (mode != Mode::kOff) dep.sim().attach_scraper(&scraper, /*period=*/0.002);
  dep.run_attestation_phase();
  dep.run_routing_phase();
  const ComputationResult expected = BgpComputation::compute(dep.policies());

  for (size_t victim = 1; victim < kShards; ++victim) {
    const bool heal = heal_last || victim + 1 < kShards;
    if (!dep.kill_shard(victim)) break;
    dep.sim().run();
    if (!tables_match(dep, expected)) ++r.lost_admissions;
#if TENET_TELEMETRY_ENABLED
    if (mode == Mode::kHealth) {
      (void)model.evaluate(scraper, telemetry::event_log());
      ++r.health_evals;
    }
#endif
    if (!heal) break;
    if (!dep.heal_shard(victim)) break;
    dep.sim().run();
    if (!tables_match(dep, expected)) ++r.lost_admissions;
#if TENET_TELEMETRY_ENABLED
    if (mode == Mode::kHealth) {
      (void)model.evaluate(scraper, telemetry::event_log());
      ++r.health_evals;
    }
#endif
  }
  r.wall_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - t0).count();

#if TENET_TELEMETRY_ENABLED
  if (mode != Mode::kOff) {
    const telemetry::EventLog& log = telemetry::event_log();
    r.fleet_events = log.total();
    r.log_consistent = log.consistent();
    r.events_jsonl = log.jsonl();
    r.scrape_samples = scraper.total_scrapes();
    const telemetry::FleetHealth fleet =
        model.evaluate(scraper, telemetry::event_log());
    for (const auto& s : fleet.shards) {
      if (s.down_since_us != 0) ++r.unhealed_shards;
    }
    if (scrapes_out != nullptr) *scrapes_out = scraper.jsonl();
    if (health_out != nullptr) {
      *health_out = model.report_json(scraper, telemetry::event_log());
    }
  }
#else
  (void)scrapes_out;
  (void)health_out;
#endif
  telemetry::set_enabled(false);
  telemetry::tracer().reset();
  return r;
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Telemetry telemetry_flags(argc, argv);
  std::string events_out, scrapes_out, health_out;
  bool kill_anomaly = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--events-out" && i + 1 < argc) events_out = argv[++i];
    if (a == "--scrapes-out" && i + 1 < argc) scrapes_out = argv[++i];
    if (a == "--health-out" && i + 1 < argc) health_out = argv[++i];
    if (a == "--kill-anomaly") kill_anomaly = true;
  }

  // Warm process-global crypto caches (group contexts, fixed-base tables)
  // so mode deltas measure observability, not first-touch precomputation.
  (void)run_drill(Mode::kOff, /*heal_last=*/true, nullptr, nullptr);

  constexpr int kReps = 5;
  double off_ns = 0, events_ns = 0, health_ns = 0;
  DrillStats evented{};
  DrillStats healthy{};
  bool replay_equal = true;
  std::string first_events_jsonl;
  for (int rep = 0; rep < kReps; ++rep) {
    // Interleave modes so drift (thermal, cache) hits all three equally;
    // min-of-reps is the noise-robust estimate of the true cost.
    const DrillStats off = run_drill(Mode::kOff, true, nullptr, nullptr);
    const DrillStats ev = run_drill(Mode::kEvents, true, nullptr, nullptr);
    const DrillStats he = run_drill(Mode::kHealth, true, nullptr, nullptr);
    off_ns = rep == 0 ? off.wall_ns : std::min(off_ns, off.wall_ns);
    events_ns = rep == 0 ? ev.wall_ns : std::min(events_ns, ev.wall_ns);
    health_ns = rep == 0 ? he.wall_ns : std::min(health_ns, he.wall_ns);
    if (rep == 0) {
      first_events_jsonl = ev.events_jsonl;
    } else if (ev.events_jsonl != first_events_jsonl) {
      replay_equal = false;  // same seed, same virtual clock — must match
    }
    evented = ev;  // deterministic fields identical across reps
    healthy = he;
  }

  const double events_pct = bench::pct_increase(events_ns, off_ns);
  const double health_pct = bench::pct_increase(health_ns, off_ns);
  const double over_cap = std::max(0.0, health_pct - kOverheadCapPct);
  const uint64_t lost = evented.lost_admissions + healthy.lost_admissions;

  std::fprintf(stderr,
               "observability: off %.2f ms, events %.2f ms (+%.2f%%), "
               "events+health %.2f ms (+%.2f%%); %llu fleet events, "
               "%llu scrapes, %llu health evals\n",
               off_ns / 1e6, events_ns / 1e6, events_pct, health_ns / 1e6,
               health_pct,
               static_cast<unsigned long long>(evented.fleet_events),
               static_cast<unsigned long long>(evented.scrape_samples),
               static_cast<unsigned long long>(healthy.health_evals));

  std::printf(
      "{\n"
      "  \"obs_off_ns\": %.0f,\n"
      "  \"obs_events_ns\": %.0f,\n"
      "  \"obs_health_ns\": %.0f,\n"
      "  \"obs_events_overhead_pct\": %.3f,\n"
      "  \"obs_health_overhead_pct\": %.3f,\n"
      "  \"obs_overhead_over_cap_pct\": %.3f,\n"
      "  \"obs_fleet_events\": %llu,\n"
      "  \"obs_scrape_samples\": %llu,\n"
      "  \"obs_health_evals\": %llu,\n"
      "  \"obs_log_consistent\": %d,\n"
      "  \"obs_replay_equal\": %d,\n"
      "  \"obs_unhealed_shards\": %llu,\n"
      "  \"chaos_lost_admissions\": %llu,\n"
      "  \"n_ases\": %zu,\n"
      "  \"shards\": %zu\n"
      "}\n",
      off_ns, events_ns, health_ns, events_pct, health_pct, over_cap,
      static_cast<unsigned long long>(evented.fleet_events),
      static_cast<unsigned long long>(evented.scrape_samples),
      static_cast<unsigned long long>(healthy.health_evals),
      evented.log_consistent && healthy.log_consistent ? 1 : 0,
      replay_equal ? 1 : 0,
      static_cast<unsigned long long>(healthy.unhealed_shards),
      static_cast<unsigned long long>(lost), kAses, kShards);

  // Export run for fleet_report.py: full observability, optionally with
  // the final victim left dead (--kill-anomaly).
  if (!events_out.empty() || !scrapes_out.empty() || !health_out.empty()) {
    std::string scrapes_body, health_body;
    (void)run_drill(Mode::kHealth, /*heal_last=*/!kill_anomaly,
                    &scrapes_body, &health_body);
#if TENET_TELEMETRY_ENABLED
    // run_drill() only clears the ring on entry, so it still holds the
    // export run's events here.
    const std::string events_body = telemetry::event_log().jsonl();
#else
    const std::string events_body;
#endif
    struct Out {
      const std::string* path;
      const std::string* body;
    } outs[] = {{&events_out, &events_body},
                {&scrapes_out, &scrapes_body},
                {&health_out, &health_body}};
    for (const auto& [path, body] : outs) {
      if (path->empty()) continue;
      if (!write_file(*path, *body)) {
        std::fprintf(stderr, "FAILED to write %s\n", path->c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s\n", path->c_str());
    }
  }

  const bool pass = lost == 0 && evented.log_consistent &&
                    healthy.log_consistent && replay_equal &&
                    healthy.unhealed_shards == 0;
  return pass ? 0 : 1;
}
