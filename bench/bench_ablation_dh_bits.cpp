// Ablation A2: DH modulus size sweep (extends Table 1).
//
// The paper fixes DH at 1024 bits. Here the same remote attestation runs
// over the 768/1024/1536/2048-bit MODP groups, showing how the "DH
// dominates attestation" result strengthens with modulus size (modexp is
// ~cubic in the modulus length).
#include "bench_util.h"
#include "sgx/apps.h"

using namespace tenet;
using namespace tenet::sgx;

namespace {

struct Cost {
  double total_cycles = 0;
  uint64_t target_normal = 0;
};

Cost attestation_cost(const crypto::DhGroup* group, const char* label) {
  Authority authority;
  Vendor vendor("dh-vendor");
  AttestationConfig config;
  config.group = group;
  config.expect.expect_enclave(
      apps::target_image(authority, config).measure());

  Platform cp(authority, std::string("dh-chal-") + label);
  Platform tp(authority, std::string("dh-targ-") + label);
  Enclave& challenger =
      cp.launch(vendor, apps::challenger_image(authority, config));
  Enclave& target = tp.launch(vendor, apps::target_image(authority, config));
  Enclave& qe = tp.quoting_enclave();

  const auto c0 = challenger.cost().snapshot();
  const auto t0 = target.cost().snapshot();
  const auto q0 = qe.cost().snapshot();
  const crypto::Bytes msg1 = challenger.ecall(apps::kCreateChallenge, {});
  const crypto::Bytes msg2 = target.ecall(apps::kHandleChallenge, msg1);
  const crypto::Bytes ok = challenger.ecall(apps::kConsumeResponse, msg2);
  if (ok.empty() || ok[0] != 1) {
    std::fprintf(stderr, "attestation failed for %s\n", label);
    std::exit(1);
  }
  Cost cost;
  cost.total_cycles = challenger.cost().cycles_of(challenger.cost().delta(c0)) +
                      target.cost().cycles_of(target.cost().delta(t0)) +
                      qe.cost().cycles_of(qe.cost().delta(q0));
  cost.target_normal = target.cost().delta(t0).normal;
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bench::title("Ablation A2: remote attestation cost vs DH modulus size");

  struct GroupRow {
    const crypto::DhGroup* group;
    const char* label;
  };
  const GroupRow rows[] = {
      {&crypto::DhGroup::oakley_group1(), "768"},
      {&crypto::DhGroup::oakley_group2(), "1024 (paper)"},
      {&crypto::DhGroup::modp_group5(), "1536"},
      {&crypto::DhGroup::modp_group14(), "2048"},
  };

  std::printf("\n%-14s %18s %18s %10s\n", "DH bits", "total cycles",
              "target normal", "vs 1024");
  std::printf("----------------------------------------------------------------\n");
  double baseline = 0;
  std::vector<double> cycles;
  for (const GroupRow& row : rows) {
    const Cost c = attestation_cost(row.group, row.label);
    cycles.push_back(c.total_cycles);
    if (std::string(row.label).rfind("1024", 0) == 0) baseline = c.total_cycles;
    std::printf("%-14s %18s %18s\n", row.label,
                bench::human(c.total_cycles).c_str(),
                bench::human(static_cast<double>(c.target_normal)).c_str());
  }
  std::printf("\nrelative to the paper's 1024-bit choice:\n");
  for (size_t i = 0; i < cycles.size(); ++i) {
    std::printf("  %-14s %.2fx\n", rows[i].label, cycles[i] / baseline);
  }

  bench::section("shape checks");
  bool monotone = true;
  for (size_t i = 1; i < cycles.size(); ++i) {
    if (cycles[i] <= cycles[i - 1]) monotone = false;
  }
  std::printf("cost grows monotonically with bits : %s\n",
              monotone ? "yes" : "NO");
  std::printf("superlinear growth (2048 > 4x 768) : %s\n",
              cycles.back() > 4 * cycles.front() ? "yes" : "NO");
  return monotone ? 0 : 1;
}
