// Ablation A4: the Tor deployment phases of §3.2, side by side.
//
// For each phase: bring-up cost (messages + attestations), whether
// admission is automatic, and the fate of the attack catalogue (exit
// tampering, plaintext snooping, subverted directory). This is the
// design-space table §3.2 sketches in prose.
#include "bench_util.h"
#include "tor/network.h"

using namespace tenet;
using namespace tenet::tor;

namespace {

std::vector<size_t> indices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

struct PhaseOutcome {
  uint64_t bringup_messages = 0;
  uint64_t attestations = 0;
  bool manual_admission = false;
  bool evil_exit_excluded = false;
  bool tamper_blocked = false;
  bool subverted_dir_blocked = false;
  double circuit_cycles = 0;
};

PhaseOutcome run_phase(Phase phase) {
  PhaseOutcome out;
  TorNetworkConfig cfg;
  cfg.phase = phase;
  cfg.n_authorities = 3;
  cfg.n_relays = 4;

  TorNetwork net(cfg);
  core::EnclaveNode& evil = net.add_tampering_exit();
  core::EnclaveNode* evil_auth = nullptr;
  if (phase != Phase::kFullySgx) {
    evil_auth = &net.add_subverted_authority(777);
  }

  const auto honest = indices(phase == Phase::kFullySgx ? 0 : 3);

  // Bring-up.
  if (phase == Phase::kSgxDirectories || phase == Phase::kSgxRelays) {
    std::vector<size_t> all = honest;
    all.push_back(3);  // the subverted authority tries to join
    net.attest_authority_mesh(all);
  }
  if (phase == Phase::kFullySgx) {
    net.join_ring_all();
  } else {
    net.publish_descriptors(honest);
    if (phase == Phase::kBaseline || phase == Phase::kSgxDirectories) {
      out.manual_admission = true;
      for (const size_t i : honest) net.approve_all_pending(i);
    }
    // Baseline: nothing stops the subverted authority from participating
    // in the vote (and serving its poisoned document afterwards).
    if (phase == Phase::kBaseline) {
      net.run_vote(1, indices(4));
    } else {
      net.run_vote(1, honest);
    }
  }
  out.bringup_messages = net.sim().total_messages_delivered();

  // Directory access.
  if (phase == Phase::kFullySgx) {
    (void)net.install_directory_from_ring(0);
    out.subverted_dir_blocked = true;  // no directories exist to subvert
  } else {
    const bool from_evil = net.fetch_consensus(0, evil_auth->id());
    Consensus seen;
    if (from_evil) {
      seen = Consensus::deserialize(net.client(0).control(kCtlGetConsensus));
    }
    out.subverted_dir_blocked = !from_evil || seen.find(777) == nullptr;
    (void)net.fetch_consensus(0, net.authority(0).id());
  }

  // Is the patched exit in the usable relay population?
  if (phase == Phase::kFullySgx) {
    // Membership is open; exclusion happens at circuit build.
    out.evil_exit_excluded =
        !net.build_circuit(0, net.relay(0).id(), net.relay(1).id(), evil.id());
    (void)net.client(0).control(kCtlTeardown);
    net.sim().run();
  } else {
    const auto consensus =
        Consensus::deserialize(net.client(0).control(kCtlGetConsensus));
    out.evil_exit_excluded = consensus.find(evil.id()) == nullptr;
  }

  // Tampering attack end-to-end (only runnable where the evil exit is
  // reachable, i.e. baseline).
  if (!out.evil_exit_excluded) {
    (void)net.build_circuit(0, net.relay(0).id(), net.relay(1).id(), evil.id());
    const auto reply = net.request(0, "integrity probe");
    out.tamper_blocked = reply.has_value() && *reply == "echo:integrity probe";
    (void)net.client(0).control(kCtlTeardown);
    net.sim().run();
  } else {
    out.tamper_blocked = true;  // excluded before it could tamper
  }

  // Clean circuit cost.
  sgx::CostModel m;
  const auto before = net.client(0).cost_snapshot();
  (void)net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                          net.relay(2).id());
  const auto after = net.client(0).cost_snapshot();
  out.circuit_cycles = m.cycles_of({after.sgx_user - before.sgx_user,
                                    after.sgx_priv - before.sgx_priv,
                                    after.normal - before.normal});

  out.attestations = net.client_attestations(0);
  if (phase != Phase::kFullySgx) {
    for (const size_t i : honest) out.attestations += net.authority_attestations(i);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bench::title("Ablation A4: Tor deployment phases (SS3.2 design space)");

  std::printf("\n%-18s %9s %8s %10s %10s %10s %12s\n", "phase", "bringup",
              "attests", "admission", "evil-exit", "dir-attack",
              "circuit-cost");
  std::printf("--------------------------------------------------------------"
              "-------------------\n");
  bool sgx_phases_safe = true;
  for (const Phase phase :
       {Phase::kBaseline, Phase::kSgxDirectories, Phase::kSgxRelays,
        Phase::kFullySgx}) {
    const PhaseOutcome o = run_phase(phase);
    std::printf("%-18s %9llu %8llu %10s %10s %10s %12s\n", to_string(phase),
                (unsigned long long)o.bringup_messages,
                (unsigned long long)o.attestations,
                o.manual_admission ? "manual" : "auto/none",
                o.evil_exit_excluded ? "excluded" : "ADMITTED",
                o.subverted_dir_blocked ? "blocked" : "SUCCEEDS",
                bench::human(o.circuit_cycles).c_str());
    if (phase != Phase::kBaseline) {
      // Phase 1 protects the directories only; relay integrity arrives
      // with phase 2 (exactly the incremental story of §3.2).
      sgx_phases_safe &= o.subverted_dir_blocked;
      if (phase == Phase::kSgxRelays || phase == Phase::kFullySgx) {
        sgx_phases_safe &= o.evil_exit_excluded;
      }
    }
  }

  bench::section("reading");
  std::printf(
      "baseline        : attacks succeed (tampering exit admitted, subverted\n"
      "                  directory serves poisoned consensus) - §3.2's threat\n"
      "sgx-directories : directory subversion blocked; relays still manual\n"
      "sgx-relays      : + automatic admission, patched relays excluded\n"
      "fully-sgx       : + no directories at all (Chord DHT); clients attest\n"
      "                  relays directly, bad apples never carry traffic\n");
  std::printf("\nall SGX phases defeat their targeted attacks: %s\n",
              sgx_phases_safe ? "yes" : "NO");
  return sgx_phases_safe ? 0 : 1;
}
