// Wall-clock benchmark for the PR-1 fast-path crypto kernels. Prints one
// JSON object with ns-per-op for the four paths the PR optimizes:
// 1024-bit modexp, full DH exchange, AES-CTR over a 1500-byte packet, and
// the complete 3-ecall attestation round. bench/compare_bench.py runs this
// and merges the numbers with the recorded seed baselines into
// BENCH_pr1.json.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "crypto/aes.h"
#include "crypto/bignum.h"
#include "crypto/dh.h"
#include "crypto/rng.h"
#include "sgx/apps.h"
#include "sgx/platform.h"

using namespace tenet;
using Clock = std::chrono::steady_clock;

namespace {

double ns_since(Clock::time_point t0, int iters) {
  return std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
         iters;
}

double bench_modexp_1024(crypto::Drbg& rng) {
  const crypto::DhGroup& g = crypto::DhGroup::oakley_group2();
  const crypto::BigInt base =
      crypto::BigInt::from_bytes_be(rng.bytes(128)).mod(g.p());
  const crypto::BigInt e =
      crypto::BigInt::from_bytes_be(rng.bytes(128)).mod(g.q());
  uint64_t sink = crypto::BigInt::mod_exp(base, e, g.p()).low_u64();  // warmup
  const int iters = 200;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    sink ^= crypto::BigInt::mod_exp(base, e, g.p()).low_u64();
  }
  const double ns = ns_since(t0, iters);
  if (sink == 0x5a5a5a5a) std::fprintf(stderr, ".");  // keep sink live
  return ns;
}

double bench_dh_exchange(crypto::Drbg& rng) {
  const crypto::DhGroup& g = crypto::DhGroup::oakley_group2();
  uint64_t sink = 0;
  const int iters = 100;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    const crypto::DhKeyPair a(g, rng);
    const crypto::DhKeyPair b(g, rng);
    sink ^= a.shared_secret(b.public_value())[0];
  }
  const double ns = ns_since(t0, iters);
  if (sink == 0x5a5a5a5a) std::fprintf(stderr, ".");
  return ns;
}

double bench_aes_ctr_1500(crypto::Drbg& rng) {
  crypto::AesKey128 key{};
  rng.fill(key);
  const crypto::Aes128 aes(key);
  const crypto::Bytes packet = rng.bytes(1500);
  uint64_t sink = aes.ctr_crypt(1, 0, packet)[0];  // warmup
  const int iters = 20000;
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    sink ^= aes.ctr_crypt(1, static_cast<uint64_t>(i) << 20, packet)[0];
  }
  const double ns = ns_since(t0, iters);
  if (sink == 0x5a5a5a5a) std::fprintf(stderr, ".");
  return ns;
}

double bench_attestation() {
  sgx::Authority authority;
  sgx::Vendor vendor("pr1-bench");
  sgx::AttestationConfig cfg;
  sgx::Platform target_host(authority, "pr1-target");
  sgx::Platform chal_host(authority, "pr1-chal");
  cfg.expect.expect_enclave(sgx::apps::target_image(authority, cfg).measure());
  sgx::Enclave& target =
      target_host.launch(vendor, sgx::apps::target_image(authority, cfg));
  (void)target_host.quoting_enclave();
  const int iters = 30;
  double total_ns = 0;
  for (int i = 0; i < iters + 1; ++i) {  // first round is warmup
    sgx::Enclave& chal =
        chal_host.launch(vendor, sgx::apps::challenger_image(authority, cfg));
    const auto t0 = Clock::now();
    const crypto::Bytes msg1 = chal.ecall(sgx::apps::kCreateChallenge, {});
    const crypto::Bytes msg2 = target.ecall(sgx::apps::kHandleChallenge, msg1);
    const crypto::Bytes res = chal.ecall(sgx::apps::kConsumeResponse, msg2);
    if (res.empty() || res[0] != 1) {
      std::fprintf(stderr, "bench_pr1_fastpath: attestation failed\n");
      return -1;
    }
    if (i > 0) {
      total_ns +=
          std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
    }
    chal.destroy();
  }
  return total_ns / iters;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  crypto::Drbg rng = crypto::Drbg::from_label(42, "bench.pr1.fastpath");
  const double modexp_ns = bench_modexp_1024(rng);
  const double dh_ns = bench_dh_exchange(rng);
  const double aes_ns = bench_aes_ctr_1500(rng);
  const double attest_ns = bench_attestation();
  if (attest_ns < 0) return 1;
  std::printf(
      "{\n"
      "  \"modexp_1024_ns\": %.0f,\n"
      "  \"dh_exchange_1024_ns\": %.0f,\n"
      "  \"aes_ctr_1500B_ns\": %.0f,\n"
      "  \"aes_ctr_MBps\": %.1f,\n"
      "  \"attestation_ns\": %.0f\n"
      "}\n",
      modexp_ns, dh_ns, aes_ns, 1500.0 / aes_ns * 1000.0, attest_ns);
  return 0;
}
