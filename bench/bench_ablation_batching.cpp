// Ablation A1: I/O batch-size sweep (extends Table 2).
//
// "While the cost of a single I/O operation is high, the cost can be
// amortized with batched I/O" (§5). Sweeps packets-per-exit and reports
// the per-packet cycle cost; the curve should fall steeply and flatten.
//
// PR-4 axis: --switchless repeats the sweep with the enclave's transitions
// served through the switchless rings (DESIGN.md §10). Batching and
// switchless compose: batching shrinks the number of boundary requests,
// switchless makes each remaining request cheap.
#include <cstring>

#include "bench_util.h"
#include "sgx/apps.h"

using namespace tenet;
using namespace tenet::sgx;

namespace {

constexpr uint32_t kPackets = 256;

struct SweepPoint {
  double cycles_per_pkt = 0;
  uint64_t transitions = 0;
};

SweepPoint run_point(uint32_t batch_size, bool crypto_on, bool switchless) {
  Authority authority;
  Vendor vendor("batch-vendor");
  Platform platform(authority,
                    "batch-host-" + std::to_string(batch_size) +
                        (crypto_on ? "c" : "p") + (switchless ? "s" : ""));
  Enclave& enclave = platform.launch(vendor, apps::packet_sender_image());
  if (switchless) enclave.enable_switchless();
  enclave.set_ocall_handler(
      [](uint32_t, crypto::BytesView) { return crypto::Bytes{}; });

  apps::SendRunRequest req;
  req.packet_count = kPackets;
  req.packet_size = 1500;
  req.encrypt = crypto_on;
  req.batched = batch_size > 1;
  req.batch_size = batch_size;

  const auto before = enclave.cost().snapshot();
  (void)enclave.ecall(apps::kSendRun, req.serialize());
  const auto d = enclave.cost().delta(before);
  return {enclave.cost().cycles_of(d) / kPackets, d.transitions};
}

double per_packet_cycles(uint32_t batch_size, bool crypto_on) {
  return run_point(batch_size, crypto_on, /*switchless=*/false)
      .cycles_per_pkt;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bool want_switchless = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--switchless") == 0) want_switchless = true;
  }
  bench::title("Ablation A1: batched in-enclave I/O (per-packet cycles, 256 "
               "MTU packets)");

  std::printf("\n%10s %18s %18s %12s\n", "batch", "cycles/pkt (plain)",
              "cycles/pkt (AES)", "exits/pkt");
  std::printf("-------------------------------------------------------------\n");

  double prev_plain = 0;
  bool monotone = true;
  for (const uint32_t b : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const double plain = per_packet_cycles(b, false);
    const double aes = per_packet_cycles(b, true);
    std::printf("%10u %18s %18s %12.3f\n", b, bench::human(plain).c_str(),
                bench::human(aes).c_str(), 2.0 / b);
    if (prev_plain != 0 && plain > prev_plain) monotone = false;
    prev_plain = plain;
  }

  bool sw_cheaper_everywhere = true;
  if (want_switchless) {
    bench::section("switchless axis (plain packets)");
    std::printf("%10s %18s %18s %14s %14s\n", "batch", "cycles/pkt (sync)",
                "cycles/pkt (swl)", "transitions", "transitions(swl)");
    for (const uint32_t b : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
      const SweepPoint sync = run_point(b, false, false);
      const SweepPoint swl = run_point(b, false, true);
      std::printf("%10u %18s %18s %14llu %14llu\n", b,
                  bench::human(sync.cycles_per_pkt).c_str(),
                  bench::human(swl.cycles_per_pkt).c_str(),
                  (unsigned long long)sync.transitions,
                  (unsigned long long)swl.transitions);
      if (swl.cycles_per_pkt > sync.cycles_per_pkt) {
        sw_cheaper_everywhere = false;
      }
    }
    std::printf("switchless no slower at any batch size: %s\n",
                sw_cheaper_everywhere ? "yes" : "NO");
  }

  bench::section("shape checks");
  const double c1 = per_packet_cycles(1, false);
  const double c256 = per_packet_cycles(256, false);
  std::printf("per-packet cost falls monotonically : %s\n",
              monotone ? "yes" : "NO");
  std::printf("amortization factor (batch 1 -> 256): %.1fx\n", c1 / c256);
  std::printf("crypto cost is batch-independent    : the AES column stays a "
              "constant offset\n");
  return monotone && sw_cheaper_everywhere ? 0 : 1;
}
