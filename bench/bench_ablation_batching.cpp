// Ablation A1: I/O batch-size sweep (extends Table 2).
//
// "While the cost of a single I/O operation is high, the cost can be
// amortized with batched I/O" (§5). Sweeps packets-per-exit and reports
// the per-packet cycle cost; the curve should fall steeply and flatten.
#include "bench_util.h"
#include "sgx/apps.h"

using namespace tenet;
using namespace tenet::sgx;

namespace {

double per_packet_cycles(uint32_t batch_size, bool crypto_on) {
  Authority authority;
  Vendor vendor("batch-vendor");
  Platform platform(authority,
                    "batch-host-" + std::to_string(batch_size) +
                        (crypto_on ? "c" : "p"));
  Enclave& enclave = platform.launch(vendor, apps::packet_sender_image());
  enclave.set_ocall_handler(
      [](uint32_t, crypto::BytesView) { return crypto::Bytes{}; });

  constexpr uint32_t kPackets = 256;
  apps::SendRunRequest req;
  req.packet_count = kPackets;
  req.packet_size = 1500;
  req.encrypt = crypto_on;
  req.batched = batch_size > 1;
  req.batch_size = batch_size;

  const auto before = enclave.cost().snapshot();
  (void)enclave.ecall(apps::kSendRun, req.serialize());
  const auto d = enclave.cost().delta(before);
  return enclave.cost().cycles_of(d) / kPackets;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bench::title("Ablation A1: batched in-enclave I/O (per-packet cycles, 256 "
               "MTU packets)");

  std::printf("\n%10s %18s %18s %12s\n", "batch", "cycles/pkt (plain)",
              "cycles/pkt (AES)", "exits/pkt");
  std::printf("-------------------------------------------------------------\n");

  double prev_plain = 0;
  bool monotone = true;
  for (const uint32_t b : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const double plain = per_packet_cycles(b, false);
    const double aes = per_packet_cycles(b, true);
    std::printf("%10u %18s %18s %12.3f\n", b, bench::human(plain).c_str(),
                bench::human(aes).c_str(), 2.0 / b);
    if (prev_plain != 0 && plain > prev_plain) monotone = false;
    prev_plain = plain;
  }

  bench::section("shape checks");
  const double c1 = per_packet_cycles(1, false);
  const double c256 = per_packet_cycles(256, false);
  std::printf("per-packet cost falls monotonically : %s\n",
              monotone ? "yes" : "NO");
  std::printf("amortization factor (batch 1 -> 256): %.1fx\n", c1 / c256);
  std::printf("crypto cost is batch-independent    : the AES column stays a "
              "constant offset\n");
  return monotone ? 0 : 1;
}
