// Tracing overhead benchmark (PR 5): what does end-to-end causal tracing
// cost? Runs the same deterministic workload — one mbox TLS session
// through a 2-box DPI chain plus one Tor circuit build + request — in
// three modes:
//
//   off     telemetry disabled (the default for every other bench)
//   on      tracing enabled: spans, context propagation, cost mirroring
//   scrape  tracing plus a 1 ms virtual-clock registry scraper
//
// Prints one flat JSON object. Wall-clock metrics are informational
// (machine-dependent); the gated metrics are
//   - trace_overhead_over_cap_pct: max(0, overhead_pct - 5), i.e. exactly
//     0 while tracing costs <= 5% (the PR's acceptance bound; min-of-reps
//     keeps machine noise out),
//   - trace_cost_exact / trace_traces_connected: tracing invariants
//     (span self-costs sum to the cost-model totals; one root per trace),
//   - trace_span_events / trace_scrape_samples: simulator-deterministic
//     instrumentation coverage (a silent drop fails the gate).
//
// With --trace-out/--metrics-out (nightly telemetry capture) a final
// traced workload is left in the tracer for export; --scrape-out-jsonl /
// --scrape-out-prom additionally export that run's scrape ring.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.h"
#include "mbox/scenario.h"
#include "telemetry/scrape.h"
#include "telemetry/trace.h"
#include "tor/network.h"

using namespace tenet;
using Clock = std::chrono::steady_clock;

namespace {

enum class Mode { kOff, kOn, kScrape };

struct RunStats {
  double wall_ns = 0;
  size_t span_events = 0;
  bool cost_exact = false;
  bool traces_connected = false;
  uint64_t scrape_samples = 0;
};

void drive_mbox(telemetry::Scraper* scraper) {
  mbox::MboxScenarioConfig cfg;
  cfg.n_middleboxes = 2;
  cfg.patterns = {"ATTACK"};
  mbox::MboxDeployment dep(cfg);
  if (scraper != nullptr) dep.sim().attach_scraper(scraper, 0.001);
  const uint32_t sid = dep.open_session();
  dep.provision_from_client(sid);
  dep.provision_from_server(sid);
  dep.send(sid, "benign request");
  dep.send(sid, "an ATTACK mid-stream");
}

void drive_tor(telemetry::Scraper* scraper) {
  tor::TorNetworkConfig cfg;
  cfg.phase = tor::Phase::kBaseline;
  cfg.n_authorities = 3;
  cfg.n_relays = 3;
  cfg.n_clients = 1;
  tor::TorNetwork net(cfg);
  if (scraper != nullptr) net.sim().attach_scraper(scraper, 0.001);
  std::vector<size_t> auths{0, 1, 2};
  net.publish_descriptors(auths);
  for (const size_t i : auths) net.approve_all_pending(i);
  net.run_vote(1, auths);
  (void)net.fetch_consensus(0, net.authority(0).id());
  (void)net.build_circuit(0, net.relay(0).id(), net.relay(1).id(),
                          net.relay(2).id());
  (void)net.request(0, "trace overhead probe");
}

/// One root per nonzero trace id, judged from the recorded events.
bool traces_connected(const std::vector<telemetry::Tracer::Event>& events) {
  std::map<uint64_t, std::map<uint64_t, uint64_t>> traces;  // tid -> id->parent
  for (const auto& e : events) {
    if (e.span_id != 0 && e.trace_id != 0) {
      traces[e.trace_id][e.span_id] = e.parent_span_id;
    }
  }
  if (traces.empty()) return false;
  for (const auto& [tid, spans] : traces) {
    size_t roots = 0;
    for (const auto& [id, parent] : spans) {
      if (spans.find(parent) == spans.end()) ++roots;
    }
    if (roots != 1) return false;
  }
  return true;
}

RunStats run_once(Mode mode) {
  telemetry::set_enabled(mode != Mode::kOff);
  telemetry::tracer().reset();
  telemetry::Scraper scraper;
  telemetry::Scraper* sc = mode == Mode::kScrape ? &scraper : nullptr;

  const auto t0 = Clock::now();
  drive_mbox(sc);
  drive_tor(sc);
  RunStats r;
  r.wall_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - t0).count();

  if (mode != Mode::kOff) {
    const auto& events = telemetry::tracer().events();
    for (const auto& e : events) {
      if (e.span_id != 0) ++r.span_events;
    }
    telemetry::TraceCost sum = telemetry::tracer().cost_untraced();
    for (const auto& e : events) sum.add(e.self);
    r.cost_exact = sum == telemetry::tracer().cost_total();
    r.traces_connected = traces_connected(events);
    r.scrape_samples = scraper.total_scrapes();
  }
  telemetry::set_enabled(false);
  telemetry::tracer().reset();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Telemetry telemetry_flags(argc, argv);
  std::string scrape_jsonl, scrape_prom;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--scrape-out-jsonl" && i + 1 < argc) scrape_jsonl = argv[++i];
    if (a == "--scrape-out-prom" && i + 1 < argc) scrape_prom = argv[++i];
  }

  // Warm process-global crypto caches (group contexts, fixed-base tables)
  // so mode deltas measure tracing, not first-touch precomputation.
  (void)run_once(Mode::kOff);

  constexpr int kReps = 5;
  double off_ns = 0, on_ns = 0, scrape_ns = 0;
  RunStats traced{};
  RunStats scraped{};
  for (int rep = 0; rep < kReps; ++rep) {
    // Interleave modes so drift (thermal, cache) hits all three equally;
    // min-of-reps is the noise-robust estimate of the true cost.
    const RunStats off = run_once(Mode::kOff);
    const RunStats on = run_once(Mode::kOn);
    const RunStats scr = run_once(Mode::kScrape);
    off_ns = rep == 0 ? off.wall_ns : std::min(off_ns, off.wall_ns);
    on_ns = rep == 0 ? on.wall_ns : std::min(on_ns, on.wall_ns);
    scrape_ns = rep == 0 ? scr.wall_ns : std::min(scrape_ns, scr.wall_ns);
    traced = on;     // deterministic fields identical across reps
    scraped = scr;
  }

  const double overhead_pct = bench::pct_increase(on_ns, off_ns);
  const double scrape_pct = bench::pct_increase(scrape_ns, off_ns);
  const double over_cap = std::max(0.0, overhead_pct - 5.0);

  std::fprintf(stderr,
               "trace overhead: off %.2f ms, on %.2f ms (+%.2f%%), "
               "on+scrape %.2f ms (+%.2f%%); %zu span events, %llu scrapes\n",
               off_ns / 1e6, on_ns / 1e6, overhead_pct, scrape_ns / 1e6,
               scrape_pct, traced.span_events,
               static_cast<unsigned long long>(scraped.scrape_samples));

  std::printf(
      "{\n"
      "  \"trace_off_ns\": %.0f,\n"
      "  \"trace_on_ns\": %.0f,\n"
      "  \"trace_scrape_ns\": %.0f,\n"
      "  \"trace_overhead_pct\": %.3f,\n"
      "  \"trace_scrape_overhead_pct\": %.3f,\n"
      "  \"trace_overhead_over_cap_pct\": %.3f,\n"
      "  \"trace_span_events\": %zu,\n"
      "  \"trace_cost_exact\": %d,\n"
      "  \"trace_traces_connected\": %d,\n"
      "  \"trace_scrape_samples\": %llu\n"
      "}\n",
      off_ns, on_ns, scrape_ns, overhead_pct, scrape_pct, over_cap,
      traced.span_events, traced.cost_exact ? 1 : 0,
      traced.traces_connected ? 1 : 0,
      static_cast<unsigned long long>(scraped.scrape_samples));

  // Nightly capture: leave one fully traced + scraped workload in the
  // tracer so ~Telemetry exports it; write the scrape ring if asked.
  if (telemetry_flags.active() || !scrape_jsonl.empty() ||
      !scrape_prom.empty()) {
    telemetry::set_enabled(true);
    telemetry::tracer().reset();
    telemetry::Scraper scraper;
    drive_mbox(&scraper);
    drive_tor(&scraper);
    if (!scrape_jsonl.empty() && !scraper.write_jsonl(scrape_jsonl)) {
      std::fprintf(stderr, "FAILED to write %s\n", scrape_jsonl.c_str());
      return 1;
    }
    if (!scrape_prom.empty() && !scraper.write_prometheus(scrape_prom)) {
      std::fprintf(stderr, "FAILED to write %s\n", scrape_prom.c_str());
      return 1;
    }
  }
  return 0;
}
