#!/usr/bin/env python3
"""Runs bench_pr1_fastpath and records before/after numbers in BENCH_pr1.json.

The "before" numbers are the seed-tree wall-clock timings measured on the
reference machine (Intel Xeon @ 2.10 GHz, GCC 12, RelWithDebInfo) with the
same harness before the fast-path kernels landed; they are pinned here so
every future PR can extend the perf trajectory without rebuilding the seed.

Usage:
    python3 bench/compare_bench.py [--bench-binary PATH] [--output PATH]
    python3 bench/compare_bench.py --check [--max-regress PCT] \
        [--baseline PATH] [--key KEY] [--bench-args "ARGS"] \
        [--markdown-out PATH]

Default binary location is build/bench/bench_pr1_fastpath (built by the
normal CMake build); default output is BENCH_pr1.json in the repo root.

--check mode is the CI regression gate: instead of rewriting the baseline
file it compares the current run against a committed BENCH_*.json and
exits non-zero if any metric regressed by more than --max-regress percent
(default 10). The gate works for any bench that prints a flat JSON object:
pass --bench-binary, --baseline and --key (the per-PR column inside each
baseline metric entry, e.g. "pr1" or "pr3"); --bench-args forwards extra
flags to the binary (e.g. --bench-args "--json" for benches whose JSON
mode is opt-in). Only metrics listed in the baseline's "metrics" map are
gated; extra keys in the bench output are informational — but every
baseline metric MUST be present in the bench output, and a zero baseline
only accepts an exactly-zero current value.
"""

import argparse
import json
import pathlib
import subprocess
import sys

# Seed-tree timings (commit a7e40d2, before the fast-path kernels).
SEED_BASELINE = {
    "modexp_1024_ns": 1455695,
    "dh_exchange_1024_ns": 3853417,
    "aes_ctr_1500B_ns": 36612,
    "aes_ctr_MBps": 41.0,
    "attestation_ns": 10101622,
}

# Metrics where smaller is better (everything except throughput).
LOWER_IS_BETTER = {
    "modexp_1024_ns",
    "dh_exchange_1024_ns",
    "aes_ctr_1500B_ns",
    "attestation_ns",
}


def lower_is_better(key: str) -> bool:
    """Direction of goodness for a metric. Beyond the pinned PR-1 set,
    latency-like suffixes are lower-better, as are transition/fallback
    counts and memory footprints; rates (MBps, goodput, hits, reduction
    factors) are higher-better."""
    if key in LOWER_IS_BETTER:
        return True
    return key.endswith(
        ("_ns", "_ms", "_pct", "_to_heal", "_transitions", "_fallbacks",
         "_rss_mb")
    )


def run_bench(binary: pathlib.Path, extra_args: list[str] | None = None) -> dict:
    out = subprocess.run(
        [str(binary), *(extra_args or [])],
        capture_output=True,
        text=True,
        check=True,
    ).stdout
    return json.loads(out)


def check_regression(
    after: dict, baseline_path: pathlib.Path, max_regress_pct: float,
    key_name: str, markdown_out: pathlib.Path | None = None
) -> int:
    """Compares `after` to the committed baseline; returns a process exit
    code (0 = within budget). Regression is measured in the direction that
    matters per metric: higher ns / lower MB/s is worse. With
    `markdown_out`, the same comparison is also written as a Markdown table
    (CI appends it to the step summary so a failing gate shows a readable
    diff, not a bare non-zero exit)."""
    baseline = json.loads(baseline_path.read_text())
    failed = False
    compared = 0
    rows = []  # (metric, baseline str, now str, regression str, status)
    for key, entry in baseline["metrics"].items():
        if key_name not in entry:
            # The baseline entry has no column for the requested --key:
            # with key filtering active this used to crash (or, with an
            # empty metrics map, pass vacuously). A wrong --key must be an
            # explicit, readable failure.
            failed = True
            print(
                f"{key:24s} baseline=<no '{key_name}' column>"
                f"                          BAD-KEY"
            )
            rows.append((key, f"no '{key_name}' column", "-", "-", "BAD-KEY"))
            continue
        base = entry[key_name]
        compared += 1
        if key not in after:
            # A metric the baseline tracks vanished from the bench output:
            # that is a broken bench (or a silently dropped measurement),
            # never an auto-pass.
            failed = True
            print(
                f"{key:24s} baseline={base:<12g} now=<missing>     "
                f"               MISSING"
            )
            rows.append((key, f"{base:g}", "missing", "-", "MISSING"))
            continue
        now = after[key]
        if base == 0:
            # A zero baseline cannot express a percentage budget: the only
            # acceptable current value is exactly zero. Anything else is an
            # explicit failure (previously this auto-passed small values).
            regress_pct = 0.0 if now == 0 else float("inf")
        elif lower_is_better(key):
            regress_pct = 100.0 * (now - base) / base
        else:
            regress_pct = 100.0 * (base - now) / base
        status = "OK" if regress_pct <= max_regress_pct else "REGRESSED"
        if status != "OK":
            failed = True
        print(
            f"{key:24s} baseline={base:<12g} now={now:<12g} "
            f"regression={regress_pct:+6.1f}%  {status}"
        )
        rows.append(
            (key, f"{base:g}", f"{now:g}", f"{regress_pct:+.1f}%", status)
        )
        if base == 0 and now != 0:
            print(
                f"  -> {key}: baseline is 0 but the current value is "
                f"{now!r}; zero-vs-nonzero is an explicit failure",
                file=sys.stderr,
            )
    if compared == 0:
        # Nothing was actually gated: either the metrics map is empty or no
        # entry carries the requested column. Silence here would let a
        # typo'd --key turn the whole gate off.
        failed = True
        print(
            f"FAIL: no metric in {baseline_path} carries a '{key_name}' "
            f"column — wrong --key or wrong --baseline?",
            file=sys.stderr,
        )
    if markdown_out is not None:
        verdict = (
            f"**FAIL** (budget {max_regress_pct:g}%)"
            if failed
            else f"all metrics within {max_regress_pct:g}%"
        )
        lines = [
            f"#### bench gate: `{baseline_path.name}` (key `{key_name}`) — "
            f"{verdict}",
            "",
            "| metric | baseline | now | regression | status |",
            "|---|---:|---:|---:|---|",
        ]
        for metric, base_s, now_s, pct_s, status in rows:
            mark = status if status == "OK" else f"**{status}**"
            lines.append(
                f"| {metric} | {base_s} | {now_s} | {pct_s} | {mark} |"
            )
        if compared == 0:
            lines.append(
                f"| _(none compared)_ | - | - | - | **NO-METRICS** |"
            )
        markdown_out.write_text("\n".join(lines) + "\n")
    if failed:
        print(
            f"FAIL: at least one metric regressed more than "
            f"{max_regress_pct:.0f}%, went zero-vs-nonzero, is missing "
            f"from the bench output, or was never compared vs "
            f"{baseline_path}",
            file=sys.stderr,
        )
        return 1
    print(f"all metrics within {max_regress_pct:.0f}% of {baseline_path}")
    return 0


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench-binary",
        type=pathlib.Path,
        default=repo_root / "build" / "bench" / "bench_pr1_fastpath",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=repo_root / "BENCH_pr1.json"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=10.0,
        metavar="PCT",
        help="with --check: maximum tolerated regression per metric (%%)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=repo_root / "BENCH_pr1.json",
        help="with --check: baseline JSON to compare against",
    )
    parser.add_argument(
        "--key",
        default="pr1",
        help="with --check: per-PR value key inside each baseline metric "
        'entry (e.g. "pr1", "pr3")',
    )
    parser.add_argument(
        "--bench-args",
        default="",
        metavar="ARGS",
        help="extra space-separated arguments forwarded to the bench "
        'binary, e.g. --bench-args "--json"',
    )
    parser.add_argument(
        "--markdown-out",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="with --check: also write the comparison as a Markdown table "
        "(CI appends it to the step summary)",
    )
    args = parser.parse_args()

    if not args.bench_binary.exists():
        print(
            f"bench binary not found: {args.bench_binary}\n"
            "build it first:  cmake --build build -j --target bench_pr1_fastpath",
            file=sys.stderr,
        )
        return 1

    after = run_bench(args.bench_binary, args.bench_args.split())

    if args.check:
        if not args.baseline.exists():
            print(f"baseline not found: {args.baseline}", file=sys.stderr)
            return 1
        return check_regression(after, args.baseline, args.max_regress,
                                args.key, args.markdown_out)

    metrics = {}
    for key, before in SEED_BASELINE.items():
        now = after[key]
        if key in LOWER_IS_BETTER:
            speedup = before / now if now else float("inf")
        else:
            speedup = now / before if before else float("inf")
        metrics[key] = {
            "seed": before,
            "pr1": now,
            "speedup": round(speedup, 2),
        }

    result = {
        "pr": 1,
        "title": "fast-path crypto kernels",
        "units": {
            "modexp_1024_ns": "ns/op",
            "dh_exchange_1024_ns": "ns/exchange (2 keygens + shared secret)",
            "aes_ctr_1500B_ns": "ns/1500B packet",
            "aes_ctr_MBps": "MB/s",
            "attestation_ns": "ns/3-ecall attestation round",
        },
        "metrics": metrics,
    }

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result["metrics"], indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
