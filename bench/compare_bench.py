#!/usr/bin/env python3
"""Runs bench_pr1_fastpath and records before/after numbers in BENCH_pr1.json.

The "before" numbers are the seed-tree wall-clock timings measured on the
reference machine (Intel Xeon @ 2.10 GHz, GCC 12, RelWithDebInfo) with the
same harness before the fast-path kernels landed; they are pinned here so
every future PR can extend the perf trajectory without rebuilding the seed.

Usage:
    python3 bench/compare_bench.py [--bench-binary PATH] [--output PATH]

Default binary location is build/bench/bench_pr1_fastpath (built by the
normal CMake build); default output is BENCH_pr1.json in the repo root.
"""

import argparse
import json
import pathlib
import subprocess
import sys

# Seed-tree timings (commit a7e40d2, before the fast-path kernels).
SEED_BASELINE = {
    "modexp_1024_ns": 1455695,
    "dh_exchange_1024_ns": 3853417,
    "aes_ctr_1500B_ns": 36612,
    "aes_ctr_MBps": 41.0,
    "attestation_ns": 10101622,
}

# Metrics where smaller is better (everything except throughput).
LOWER_IS_BETTER = {
    "modexp_1024_ns",
    "dh_exchange_1024_ns",
    "aes_ctr_1500B_ns",
    "attestation_ns",
}


def run_bench(binary: pathlib.Path) -> dict:
    out = subprocess.run(
        [str(binary)], capture_output=True, text=True, check=True
    ).stdout
    return json.loads(out)


def main() -> int:
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench-binary",
        type=pathlib.Path,
        default=repo_root / "build" / "bench" / "bench_pr1_fastpath",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=repo_root / "BENCH_pr1.json"
    )
    args = parser.parse_args()

    if not args.bench_binary.exists():
        print(
            f"bench binary not found: {args.bench_binary}\n"
            "build it first:  cmake --build build -j --target bench_pr1_fastpath",
            file=sys.stderr,
        )
        return 1

    after = run_bench(args.bench_binary)

    metrics = {}
    for key, before in SEED_BASELINE.items():
        now = after[key]
        if key in LOWER_IS_BETTER:
            speedup = before / now if now else float("inf")
        else:
            speedup = now / before if before else float("inf")
        metrics[key] = {
            "seed": before,
            "pr1": now,
            "speedup": round(speedup, 2),
        }

    result = {
        "pr": 1,
        "title": "fast-path crypto kernels",
        "units": {
            "modexp_1024_ns": "ns/op",
            "dh_exchange_1024_ns": "ns/exchange (2 keygens + shared secret)",
            "aes_ctr_1500B_ns": "ns/1500B packet",
            "aes_ctr_MBps": "MB/s",
            "attestation_ns": "ns/3-ecall attestation round",
        },
        "metrics": metrics,
    }

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result["metrics"], indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
