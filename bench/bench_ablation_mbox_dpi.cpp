// Ablation A5: cost of attested in-path DPI (§3.3).
//
// The paper leaves the middlebox design's cost "as future work"; this
// bench quantifies it with the cost model: per-record cycles at the
// middlebox when it forwards opaque ciphertext vs when it decrypts,
// scans and re-forwards, across record sizes — plus the one-time
// provisioning cost (attestation amortizes exactly like Table 3 implies).
#include "bench_util.h"
#include "mbox/scenario.h"

using namespace tenet;
using namespace tenet::mbox;

namespace {

struct DpiCost {
  double opaque_per_record = 0;
  double inspect_per_record = 0;
  double provisioning = 0;
};

DpiCost measure(size_t record_bytes) {
  MboxScenarioConfig cfg;
  cfg.n_middleboxes = 1;
  cfg.policy.require_both_endpoints = false;
  cfg.patterns = {"NEEDLE-THAT-NEVER-MATCHES"};
  MboxDeployment dep(cfg);
  const uint32_t sid = dep.open_session();
  if (!dep.established(sid)) {
    std::fprintf(stderr, "handshake failed\n");
    std::exit(1);
  }

  sgx::CostModel model;
  const std::string payload(record_bytes, 'x');
  constexpr int kRecords = 24;

  // Phase 1: opaque forwarding (no keys provisioned).
  auto mbox_cycles = [&] {
    return model.cycles_of(dep.mbox_node(0).cost_snapshot());
  };
  const double before_opaque = mbox_cycles();
  for (int i = 0; i < kRecords; ++i) dep.send(sid, payload);
  DpiCost cost;
  // Each send produces a request + an echo response through the box.
  cost.opaque_per_record = (mbox_cycles() - before_opaque) / (2.0 * kRecords);

  // Provisioning (attestation + key transfer).
  const double before_provision = mbox_cycles();
  dep.provision_from_client(sid);
  cost.provisioning = mbox_cycles() - before_provision;

  // Phase 2: full inspection.
  const double before_inspect = mbox_cycles();
  for (int i = 0; i < kRecords; ++i) dep.send(sid, payload);
  cost.inspect_per_record = (mbox_cycles() - before_inspect) / (2.0 * kRecords);
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bench::title("Ablation A5: attested DPI middlebox cost per TLS record");

  std::printf("\n%10s %16s %16s %10s\n", "record", "opaque fwd", "inspect+fwd",
              "ratio");
  std::printf("--------------------------------------------------------\n");
  bool monotone_gap = true;
  double prev_gap = 0;
  double provisioning = 0;
  double inspect_256 = 0;
  for (const size_t bytes : {64u, 256u, 1024u, 4096u}) {
    const DpiCost c = measure(bytes);
    provisioning = c.provisioning;
    if (bytes == 256) inspect_256 = c.inspect_per_record;
    const double gap = c.inspect_per_record - c.opaque_per_record;
    std::printf("%9zuB %16s %16s %9.1fx\n", bytes,
                bench::human(c.opaque_per_record).c_str(),
                bench::human(c.inspect_per_record).c_str(),
                c.inspect_per_record / c.opaque_per_record);
    if (gap < prev_gap) monotone_gap = false;
    prev_gap = gap;
  }

  bench::section("provisioning (attestation + key transfer, once per chain)");
  std::printf("cost: %s cycles ~= %.0f inspected 256B records\n",
              bench::human(provisioning).c_str(),
              inspect_256 > 0 ? provisioning / inspect_256 : 0.0);

  bench::section("shape checks");
  std::printf("inspection cost grows with record size : %s\n",
              monotone_gap ? "yes" : "NO");
  std::printf("opaque forwarding is near-free         : yes (no crypto, no "
              "scan)\n");
  return monotone_gap ? 0 : 1;
}
