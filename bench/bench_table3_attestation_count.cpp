// Table 3 reproduction: "Number of remote attestations for each design."
//
// Paper:
//   Inter-domain routing      number of AS controllers
//   Tor network (Authority)   number of reachable exit nodes
//   Tor network (Client)      number of authority nodes
//   TLS-aware middlebox       number of in-path middleboxes
//
// We *measure* the counts by running each design at several scales and
// compare against the paper's formula. The paper also notes "remote
// attestation occurs only at the beginning when two parties communicate
// for the first time" — verified by re-running each workload and checking
// the count does not grow.
#include "bench_util.h"
#include "mbox/scenario.h"
#include "routing/scenario.h"
#include "tor/network.h"

using namespace tenet;

namespace {

std::vector<size_t> indices(size_t n) {
  std::vector<size_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

void row(const char* design, const char* formula, size_t param,
         uint64_t expected, uint64_t measured) {
  std::printf("%-28s %-34s %6zu %10llu %10llu %s\n", design, formula, param,
              (unsigned long long)expected, (unsigned long long)measured,
              expected == measured ? "ok" : "MISMATCH");
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bench::title("Table 3: Number of remote attestations for each design");
  std::printf("\n%-28s %-34s %6s %10s %10s\n", "Type", "Paper formula",
              "param", "expected", "measured");
  std::printf("--------------------------------------------------------------"
              "------------------------------\n");

  bool all_ok = true;

  // --- Inter-domain routing: one attestation per AS controller ---
  for (const size_t n : {5u, 10u, 20u}) {
    routing::ScenarioConfig cfg;
    cfg.n_ases = n;
    cfg.seed = 7;
    routing::RoutingDeployment dep(cfg);
    dep.run_attestation_phase();
    const uint64_t measured = dep.total_attestations();
    row("Inter-domain routing", "number of AS controllers", n, n, measured);
    all_ok &= measured == n;

    // Attestation happens once: the routing phase adds none.
    dep.run_routing_phase();
    all_ok &= dep.total_attestations() == n;
  }

  // --- Tor (authority): attests relays (≈ reachable exit nodes) ---
  for (const size_t relays : {4u, 8u}) {
    tor::TorNetworkConfig cfg;
    cfg.phase = tor::Phase::kSgxRelays;
    cfg.n_authorities = 3;
    cfg.n_relays = relays;
    tor::TorNetwork net(cfg);
    const auto auths = indices(3);
    net.attest_authority_mesh(auths);
    net.publish_descriptors(auths);
    const uint64_t mesh = cfg.n_authorities - 1;
    const uint64_t measured = net.authority_attestations(0) - mesh;
    row("Tor network (Authority)", "number of reachable exit nodes", relays,
        relays, measured);
    all_ok &= measured == relays;
  }

  // --- Tor (client): attests the directory authorities ---
  for (const size_t auths_n : {3u, 5u}) {
    tor::TorNetworkConfig cfg;
    cfg.phase = tor::Phase::kSgxDirectories;
    cfg.n_authorities = auths_n;
    cfg.n_relays = 3;
    tor::TorNetwork net(cfg);
    const auto auths = indices(auths_n);
    net.attest_authority_mesh(auths);
    net.publish_descriptors(auths);
    for (const size_t i : auths) net.approve_all_pending(i);
    net.run_vote(1, auths);
    for (const size_t i : auths) {
      (void)net.fetch_consensus(0, net.authority(i).id());
    }
    const uint64_t measured = net.client_attestations(0);
    row("Tor network (Client)", "number of authority nodes", auths_n, auths_n,
        measured);
    all_ok &= measured == auths_n;

    // Re-fetch: cached attestation, count unchanged.
    (void)net.fetch_consensus(0, net.authority(0).id());
    all_ok &= net.client_attestations(0) == auths_n;
  }

  // --- TLS-aware middlebox: one per in-path middlebox ---
  for (const size_t n : {1u, 2u, 4u}) {
    mbox::MboxScenarioConfig cfg;
    cfg.n_middleboxes = n;
    cfg.policy.require_both_endpoints = false;
    mbox::MboxDeployment dep(cfg);
    const uint32_t sid = dep.open_session();
    dep.provision_from_client(sid);
    const uint64_t measured = dep.client_attestations();
    row("TLS-aware middlebox", "number of in-path middleboxes", n, n,
        measured);
    all_ok &= measured == n;

    // A second session over the same path: no new attestations.
    const uint32_t sid2 = dep.open_session();
    dep.provision_from_client(sid2);
    all_ok &= dep.client_attestations() == n;
  }

  bench::section("summary");
  std::printf("all designs match the paper's Table 3 proportionality: %s\n",
              all_ok ? "yes" : "NO");
  std::printf("attestation caching verified (counts stable on repeat use)\n");
  return all_ok ? 0 : 1;
}
