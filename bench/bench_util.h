// Shared formatting helpers for the table/figure reproduction benches.
//
// Every bench prints (a) the measured values from this reproduction and
// (b) the paper's reported numbers next to them where applicable, so the
// shape comparison recorded in EXPERIMENTS.md can be re-derived from any
// run. Absolute values are NOT expected to match (the paper measured a
// QEMU-based emulator on 2015 hardware; we measure a calibrated
// library-level model — see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace tenet::bench {

/// Common bench telemetry flags. Construct first thing in main():
///
///   bench_xyz [--trace-out FILE] [--metrics-out FILE]
///
/// Passing either flag enables telemetry for the run; at scope exit the
/// Chrome-trace (`chrome://tracing` / ui.perfetto.dev) and/or flat metrics
/// JSON are written. Without flags this is inert and the bench measures
/// with telemetry disabled, as before.
class Telemetry {
 public:
  Telemetry(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view a = argv[i];
      if (a == "--trace-out" && i + 1 < argc) {
        trace_out_ = argv[++i];
      } else if (a == "--metrics-out" && i + 1 < argc) {
        metrics_out_ = argv[++i];
      }
    }
    if (!trace_out_.empty() || !metrics_out_.empty()) {
      telemetry::set_enabled(true);
    }
  }

  ~Telemetry() {
    if (!trace_out_.empty()) {
      if (telemetry::write_chrome_trace(trace_out_)) {
        std::fprintf(stderr, "trace written to %s\n", trace_out_.c_str());
      } else {
        std::fprintf(stderr, "FAILED to write trace to %s\n",
                     trace_out_.c_str());
      }
    }
    if (!metrics_out_.empty()) {
      if (telemetry::write_metrics_json(metrics_out_)) {
        std::fprintf(stderr, "metrics written to %s\n", metrics_out_.c_str());
      } else {
        std::fprintf(stderr, "FAILED to write metrics to %s\n",
                     metrics_out_.c_str());
      }
    }
  }

  [[nodiscard]] bool active() const {
    return !trace_out_.empty() || !metrics_out_.empty();
  }

 private:
  std::string trace_out_;
  std::string metrics_out_;
};

inline void title(const char* text) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", text);
  std::printf("================================================================\n");
}

inline void section(const char* text) { std::printf("\n--- %s ---\n", text); }

/// "1234567" -> "1.23M" style human counts.
inline std::string human(double v) {
  char buf[64];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

inline double pct_increase(double with, double without) {
  return without == 0 ? 0 : 100.0 * (with - without) / without;
}

}  // namespace tenet::bench
