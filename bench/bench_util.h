// Shared formatting helpers for the table/figure reproduction benches.
//
// Every bench prints (a) the measured values from this reproduction and
// (b) the paper's reported numbers next to them where applicable, so the
// shape comparison recorded in EXPERIMENTS.md can be re-derived from any
// run. Absolute values are NOT expected to match (the paper measured a
// QEMU-based emulator on 2015 hardware; we measure a calibrated
// library-level model — see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace tenet::bench {

inline void title(const char* text) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", text);
  std::printf("================================================================\n");
}

inline void section(const char* text) { std::printf("\n--- %s ---\n", text); }

/// "1234567" -> "1.23M" style human counts.
inline std::string human(double v) {
  char buf[64];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

inline double pct_increase(double with, double without) {
  return without == 0 ? 0 : 100.0 * (with - without) / without;
}

}  // namespace tenet::bench
