// Table 1 reproduction: "Number of instructions during remote attestation"
//
// Paper (OpenSGX, DH-1024, AES-128, polarssl):
//               Target            Quoting           Challenger
//               w/o DH   w/ DH    w/o DH   w/ DH    w/o DH   w/ DH
//   SGX(U)      20       20       17       17       8        8
//   Normal      154M     4338M    125M     125M     124M     348M
// plus: challenger 626M cycles, remote platform 8033M cycles, and
// "the Diffie-Hellman key exchange takes up 90% of the cycles."
#include <cmath>
#include <initializer_list>

#include "bench_util.h"
#include "sgx/apps.h"

using namespace tenet;
using namespace tenet::sgx;

namespace {

struct AttestCost {
  CostModel::Snapshot target;
  CostModel::Snapshot quoting;
  CostModel::Snapshot challenger;
  double challenger_cycles = 0;
  double remote_platform_cycles = 0;
};

/// Per-instruction totals summed over every enclave the benchmark touches,
/// including launch-time and confirm-round work. The telemetry registry
/// counts the same events independently at the instrumentation sites, so
/// under --trace-out the two tallies must agree exactly.
struct InstrTotals {
  uint64_t eenter = 0;
  uint64_t eexit = 0;
  uint64_t eresume = 0;
  uint64_t ereport = 0;
  uint64_t egetkey = 0;
};
InstrTotals g_instr_totals;

void accumulate_instr_totals(std::initializer_list<const Enclave*> enclaves) {
  for (const Enclave* e : enclaves) {
    g_instr_totals.eenter += e->cost().user_count(UserInstr::kEEnter);
    g_instr_totals.eexit += e->cost().user_count(UserInstr::kEExit);
    g_instr_totals.eresume += e->cost().user_count(UserInstr::kEResume);
    g_instr_totals.ereport += e->cost().user_count(UserInstr::kEReport);
    g_instr_totals.egetkey += e->cost().user_count(UserInstr::kEGetKey);
  }
}

AttestCost run_attestation(bool use_dh) {
  Authority authority;
  Vendor vendor("bench-vendor");
  AttestationConfig config;
  config.use_dh = use_dh;
  config.expect.expect_enclave(
      apps::target_image(authority, config).measure());

  Platform challenger_platform(authority, "challenger-host");
  Platform target_platform(authority, "target-host");
  Enclave& challenger = challenger_platform.launch(
      vendor, apps::challenger_image(authority, config));
  Enclave& target =
      target_platform.launch(vendor, apps::target_image(authority, config));
  // Provision the QE up-front so its launch is excluded (one-time cost).
  Enclave& qe = target_platform.quoting_enclave();

  const auto t0 = target.cost().snapshot();
  const auto q0 = qe.cost().snapshot();
  const auto c0 = challenger.cost().snapshot();

  const crypto::Bytes msg1 = challenger.ecall(apps::kCreateChallenge, {});
  const crypto::Bytes msg2 = target.ecall(apps::kHandleChallenge, msg1);
  const crypto::Bytes result = challenger.ecall(apps::kConsumeResponse, msg2);
  if (result.empty() || result[0] != 1) {
    std::fprintf(stderr, "attestation failed!\n");
    std::exit(1);
  }
  // Snapshot BEFORE the optional key-confirmation round: the paper's
  // Figure 1 protocol ends at QUOTE verification (the DH material rides
  // inside messages 1 and 8), so Table 1 covers exactly these messages.
  AttestCost m;
  m.target = target.cost().delta(t0);
  m.quoting = qe.cost().delta(q0);
  m.challenger = challenger.cost().delta(c0);
  m.challenger_cycles = challenger.cost().cycles_of(m.challenger);
  m.remote_platform_cycles =
      target.cost().cycles_of(m.target) + qe.cost().cycles_of(m.quoting);

  if (use_dh) {
    const crypto::Bytes msg3 = challenger.ecall(apps::kCreateConfirm, {});
    (void)target.ecall(apps::kVerifyConfirm, msg3);
  }
  accumulate_instr_totals({&challenger, &target, &qe});
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  using bench::human;
  bench::title(
      "Table 1: Number of instructions during remote attestation\n"
      "(DH-1024 / AES-128, per-enclave accounting; paper values for shape "
      "reference)");

  const AttestCost no_dh = run_attestation(false);
  const AttestCost dh = run_attestation(true);

  std::printf("\n%-14s | %10s %10s | %10s %10s | %10s %10s\n", "",
              "Target", "", "Quoting", "", "Challenger", "");
  std::printf("%-14s | %10s %10s | %10s %10s | %10s %10s\n", "",
              "w/o DH", "w/ DH", "w/o DH", "w/ DH", "w/o DH", "w/ DH");
  std::printf("---------------+-----------------------+------------------"
              "-----+----------------------\n");
  std::printf("%-14s | %10llu %10llu | %10llu %10llu | %10llu %10llu\n",
              "SGX(U) inst.",
              (unsigned long long)no_dh.target.sgx_user,
              (unsigned long long)dh.target.sgx_user,
              (unsigned long long)no_dh.quoting.sgx_user,
              (unsigned long long)dh.quoting.sgx_user,
              (unsigned long long)no_dh.challenger.sgx_user,
              (unsigned long long)dh.challenger.sgx_user);
  std::printf("%-14s | %10s %10s | %10s %10s | %10s %10s\n", "Normal inst.",
              human(no_dh.target.normal).c_str(),
              human(dh.target.normal).c_str(),
              human(no_dh.quoting.normal).c_str(),
              human(dh.quoting.normal).c_str(),
              human(no_dh.challenger.normal).c_str(),
              human(dh.challenger.normal).c_str());
  std::printf("%-14s | %10s %10s | %10s %10s | %10s %10s   (paper)\n",
              "SGX(U) paper", "20", "20", "17", "17", "8", "8");
  std::printf("%-14s | %10s %10s | %10s %10s | %10s %10s   (paper)\n",
              "Normal paper", "154M", "4338M", "125M", "125M", "124M", "348M");

  bench::section("derived cycle totals (paper: challenger 626M, remote "
                 "platform 8033M)");
  std::printf("challenger side : %s cycles (w/ DH)\n",
              human(dh.challenger_cycles).c_str());
  std::printf("remote platform : %s cycles (w/ DH; target + quoting)\n",
              human(dh.remote_platform_cycles).c_str());

  bench::section("DH share of attestation cycles (paper: ~90%)");
  const double total_dh = dh.challenger_cycles + dh.remote_platform_cycles;
  const double total_no =
      no_dh.challenger_cycles + no_dh.remote_platform_cycles;
  std::printf("total w/ DH   : %s cycles\n", human(total_dh).c_str());
  std::printf("total w/o DH  : %s cycles\n", human(total_no).c_str());
  std::printf("DH share      : %.1f%%\n",
              100.0 * (total_dh - total_no) / total_dh);

  bench::section("shape checks");
  const double quoting_delta =
      std::abs(static_cast<double>(dh.quoting.normal) -
               static_cast<double>(no_dh.quoting.normal));
  // "Unaffected" = the quoting enclave does no DH work: its w/ vs w/o DH
  // delta must be negligible next to the DH work the target actually adds.
  // The two runs sign different reports, so the deterministic Schnorr nonce
  // differs and windowed exponentiation legitimately charges a few window
  // multiplies more or less (the meter reports operations actually
  // performed); since PR 1 cut the absolute signing cost ~6x, that jitter
  // is no longer under 1% of the quoting total itself.
  const double dh_added_work = static_cast<double>(dh.target.normal) -
                               static_cast<double>(no_dh.target.normal);
  const bool quoting_unaffected = quoting_delta < 0.01 * dh_added_work;
  const bool dh_dominates = (total_dh - total_no) / total_dh > 0.5;
  std::printf("quoting enclave unaffected by DH : %s (paper: 125M both)\n",
              quoting_unaffected ? "yes" : "NO");
  std::printf("DH dominates attestation cost    : %s\n",
              dh_dominates ? "yes" : "NO");
  std::printf("SGX(U) counts small and constant : %s (tens, like the paper)\n",
              dh.target.sgx_user < 64 && dh.target.sgx_user == no_dh.target.sgx_user
                  ? "yes"
                  : "NO");

  // Under --trace-out / --metrics-out, prove the exported counters agree
  // with the cost model's independent per-instruction tallies.
  bool telemetry_ok = true;
  if (telemetry.active()) {
    bench::section("telemetry cross-check (registry vs cost model)");
    auto& reg = tenet::telemetry::registry();
    const auto check = [&](const char* name, uint64_t expect) {
      const uint64_t got = reg.counter(name).value();
      const bool match = got == expect;
      telemetry_ok = telemetry_ok && match;
      std::printf("%-14s telemetry=%-6llu cost-model=%-6llu %s\n", name,
                  (unsigned long long)got, (unsigned long long)expect,
                  match ? "ok" : "MISMATCH");
    };
    check("sgx.eenter", g_instr_totals.eenter);
    check("sgx.eexit", g_instr_totals.eexit);
    check("sgx.eresume", g_instr_totals.eresume);
    check("sgx.ereport", g_instr_totals.ereport);
    check("sgx.egetkey", g_instr_totals.egetkey);
    // Two runs x (target quote + mutual-less challenger? no — one quote per
    // side that quotes itself): w/o DH and w/ DH each quote the target once.
    check("attest.quotes", 2);
    check("attest.challenges", 2);
    check("attest.established", 2);
  }
  return quoting_unaffected && dh_dominates && telemetry_ok ? 0 : 1;
}
