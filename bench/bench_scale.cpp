// Internet-scale event-engine benchmark (PR 6, DESIGN.md §12).
//
// Two synthetic-at-scale workloads exercise the simulator core itself
// (no SGX model, no crypto — pure event scheduling, link state, and
// payload movement):
//
//  * "tor": a Tor-like overlay with thousands of ORs. 514-byte cells are
//    source-routed through 3-hop circuits; every relay also runs timer
//    chains (keepalives) and a slice of timers is scheduled-then-
//    cancelled. The workload runs twice — once on the calendar-queue /
//    slab-pool engine and once on the preserved pre-rewrite engine
//    (netsim/reference_sim.h) — giving a genuine before/after events/sec
//    ratio plus a cross-engine equivalence checksum.
//
//  * "as": a Gao–Rexford AS topology in the tens of thousands of ASes
//    (provider tree + random peering). Route announcements flood
//    valley-free from sampled origins. Run at several sizes to produce
//    the events/sec + RSS scale curve EXPERIMENTS.md walks through.
//
// Output: human tables by default; `--json` prints one flat JSON object
// for bench/compare_bench.py --key pr6 (baseline BENCH_pr6.json).
// `--large` grows both workloads for the nightly leg. When telemetry
// capture is on (--trace-out/--metrics-out), workloads shrink hard:
// tracing every event at full scale is its own denial of service.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "crypto/bytes.h"
#include "crypto/rng.h"
#include "netsim/reference_sim.h"
#include "netsim/sim.h"

using namespace tenet;
using Clock = std::chrono::steady_clock;

namespace {

constexpr uint32_t kHops = 3;
constexpr size_t kCellBytes = 514;  // Tor cell

/// Current resident set in MB (Linux /proc; 0 if unavailable).
double vm_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  double mb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

uint64_t fold(uint64_t h, uint64_t v) {
  return (h ^ v) * 1099511628211ull;  // FNV-1a step
}

struct TorResult {
  size_t events = 0;
  double seconds = 0;
  uint64_t checksum = 0;
  uint64_t arrived = 0;
  uint64_t timer_fires = 0;
  uint64_t delivered = 0;
  double sim_end = 0;
  [[nodiscard]] double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0;
  }
};

/// Deterministic per-relay delay source, identical across engines.
struct Lcg {
  uint64_t s;
  uint64_t next() { return s = s * 6364136223846793005ull + 1442695040888963407ull; }
};

/// The Tor-like workload, templated over the engine (SimT, NodeT) so the
/// exact same code drives both the new and the reference simulator.
template <typename SimT, typename NodeT>
TorResult run_tor_workload(size_t n_relays, size_t n_cells, uint64_t seed) {
  struct Shared {
    uint64_t checksum = 0;
    uint64_t arrived = 0;
    uint64_t timer_fires = 0;
  };

  struct Relay final : NodeT {
    Relay(SimT& s, std::string n, Shared* sh)
        : NodeT(s, std::move(n)), shared(sh) {}
    void handle_message(const netsim::Message& m) override {
      const uint32_t hop = m.port;
      if (hop + 1 < kHops) {
        const uint32_t next = crypto::read_u32(m.payload, (hop + 1) * 4);
        this->send(next, hop + 1, crypto::Bytes(m.payload));
      } else {
        ++shared->arrived;
        shared->checksum =
            fold(fold(fold(shared->checksum, m.src), m.dst),
                 static_cast<uint64_t>(this->sim().now() * 1e9));
      }
    }
    /// Keepalive chain: fires, reschedules itself `left` more times with
    /// a node-deterministic delay.
    void tick() {
      ++shared->timer_fires;
      if (chain_left == 0) return;
      --chain_left;
      const double delay = 0.0005 + static_cast<double>(lcg.next() % 997) * 1e-6;
      this->sim().schedule_timer(delay, this->id(), [this] { tick(); });
    }
    Shared* shared;
    Lcg lcg{0};
    uint32_t chain_left = 4;
  };

  SimT sim(seed);
  if constexpr (requires { sim.reserve_nodes(n_relays); }) {
    sim.reserve_nodes(n_relays + 2);
    sim.set_run_cap(0);  // the workload is finite by construction
  }
  Shared shared;
  auto injector = std::make_unique<Relay>(sim, "inj", &shared);
  std::vector<std::unique_ptr<Relay>> relays;
  relays.reserve(n_relays);
  for (size_t i = 0; i < n_relays; ++i) {
    relays.push_back(std::make_unique<Relay>(sim, "or" + std::to_string(i),
                                             &shared));
    relays.back()->lcg.s = relays.back()->id() * 0x9e3779b97f4a7c15ull + seed;
  }
  const auto relay_id = [&](uint64_t r) {
    return relays[r % n_relays]->id();
  };

  // Per-link latencies for a realistic spread of pair state (the old
  // engine kept these in an ordered map — part of what's being measured).
  crypto::Drbg wl = crypto::Drbg::from_label(seed, "bench.scale.tor");
  for (size_t i = 0; i < n_relays * 2; ++i) {
    const netsim::NodeId a = relay_id(static_cast<uint64_t>(wl.uniform_real() * 1e9));
    const netsim::NodeId b = relay_id(static_cast<uint64_t>(wl.uniform_real() * 1e9));
    sim.set_latency(a, b, 0.005 + wl.uniform_real() * 0.05);
  }

  // Timer load: every relay starts a keepalive chain; every 4th relay
  // also schedules a decoy that is immediately cancelled (the cancel
  // bookkeeping is part of what's being measured).
  for (size_t i = 0; i < n_relays; ++i) {
    Relay* r = relays[i].get();
    const double d0 = 0.001 + static_cast<double>(r->lcg.next() % 997) * 1e-6;
    sim.schedule_timer(d0, r->id(), [r] { r->tick(); });
    if (i % 4 == 0) {
      const auto id = sim.schedule_timer(1.0, r->id(), [r] { r->tick(); });
      sim.cancel_timer(id);
    }
  }

  // Cells: source-routed 3-hop circuits, path embedded in the payload.
  // Injection is an open-loop stream: every cell is posted by its own
  // pre-scheduled timer, evenly spaced across kInjectWindow of simulated
  // time. That keeps a steady in-flight population (like real offered
  // load) instead of one instantaneous burst whose memory footprint
  // drowns out scheduler cost — and the injection timers themselves are
  // workload for the engines' timer paths.
  struct Cell {
    uint32_t first = 0;
    crypto::Bytes payload;
  };
  auto cells = std::make_shared<std::vector<Cell>>();
  cells->reserve(n_cells);
  for (size_t c = 0; c < n_cells; ++c) {
    crypto::Bytes payload;
    uint32_t path[kHops];
    for (uint32_t h = 0; h < kHops; ++h) {
      path[h] = relay_id(static_cast<uint64_t>(wl.uniform_real() * 1e9));
      crypto::append_u32(payload, path[h]);
    }
    payload.resize(kCellBytes, static_cast<uint8_t>(c & 0xff));
    cells->push_back({path[0], std::move(payload)});
  }
  constexpr double kInjectWindow = 0.5;
  const netsim::NodeId inj_id = injector->id();
  SimT* simp = &sim;
  for (size_t c = 0; c < n_cells; ++c) {
    sim.schedule_timer(
        kInjectWindow * static_cast<double>(c) / static_cast<double>(n_cells),
        inj_id, [simp, cells, inj_id, c] {
          simp->post(netsim::Message{inj_id, (*cells)[c].first, 0,
                                     crypto::Bytes((*cells)[c].payload)});
        });
  }

  TorResult res;
  const auto t0 = Clock::now();
  if constexpr (requires { sim.set_run_cap(0); }) {
    res.events = sim.run();
  } else {
    res.events = sim.run(std::numeric_limits<size_t>::max() - 1);
  }
  res.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  res.checksum = shared.checksum;
  res.arrived = shared.arrived;
  res.timer_fires = shared.timer_fires;
  res.delivered = sim.total_messages_delivered();
  res.sim_end = sim.now();
  return res;
}

// ---------------------------------------------------------------------
// Gao–Rexford AS flood (new engine only — this is the scale curve).

struct AsResult {
  size_t events = 0;
  double seconds = 0;
  uint64_t routes = 0;
  double rss_mb = 0;
  [[nodiscard]] double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0;
  }
};

AsResult run_as_workload(size_t n_ases, size_t n_origins, uint64_t seed) {
  // Receiver-side relation of an announcement, encoded in the low port
  // bits; origin index in the high bits.
  enum : uint32_t { kFromCustomer = 0, kFromPeer = 1, kFromProvider = 2 };

  struct As final : netsim::Node {
    As(netsim::Simulator& s, std::string n) : Node(s, std::move(n)) {}
    void handle_message(const netsim::Message& m) override {
      const uint32_t origin = m.port >> 2;
      if ((seen & (1ull << origin)) != 0) return;  // already have a route
      seen |= 1ull << origin;
      ++routes;
      const uint32_t relation = m.port & 3u;
      // Gao–Rexford export: customer routes go everywhere; peer and
      // provider routes are exported only downhill to customers.
      if (relation == kFromCustomer) {
        for (const netsim::NodeId p : providers) {
          send(p, (origin << 2) | kFromCustomer, {});
        }
        for (const netsim::NodeId p : peers) {
          send(p, (origin << 2) | kFromPeer, {});
        }
      }
      for (const netsim::NodeId c : customers) {
        send(c, (origin << 2) | kFromProvider, {});
      }
    }
    void announce(uint32_t origin) {
      seen |= 1ull << origin;
      ++routes;
      for (const netsim::NodeId p : providers) {
        send(p, (origin << 2) | kFromCustomer, {});
      }
      for (const netsim::NodeId p : peers) {
        send(p, (origin << 2) | kFromPeer, {});
      }
      for (const netsim::NodeId c : customers) {
        send(c, (origin << 2) | kFromProvider, {});
      }
    }
    std::vector<netsim::NodeId> providers, customers, peers;
    uint64_t seen = 0;
    uint64_t routes = 0;
  };

  netsim::Simulator sim(seed);
  sim.reserve_nodes(n_ases);
  sim.set_run_cap(0);
  std::vector<std::unique_ptr<As>> ases;
  ases.reserve(n_ases);
  for (size_t i = 0; i < n_ases; ++i) {
    ases.push_back(std::make_unique<As>(sim, "as" + std::to_string(i)));
  }

  // Provider tree biased toward early (big) ASes, plus random peering.
  crypto::Drbg wl = crypto::Drbg::from_label(seed, "bench.scale.as");
  const auto pick = [&](size_t bound) {
    return static_cast<size_t>(wl.uniform_real() * static_cast<double>(bound));
  };
  for (size_t i = 1; i < n_ases; ++i) {
    const size_t provider = pick(std::max<size_t>(1, i / 8));
    ases[i]->providers.push_back(ases[provider]->id());
    ases[provider]->customers.push_back(ases[i]->id());
  }
  for (size_t e = 0; e < n_ases / 4; ++e) {
    const size_t a = pick(n_ases);
    const size_t b = pick(n_ases);
    if (a == b) continue;
    ases[a]->peers.push_back(ases[b]->id());
    ases[b]->peers.push_back(ases[a]->id());
  }

  AsResult res;
  const auto t0 = Clock::now();
  for (uint32_t o = 0; o < n_origins; ++o) {
    // Stub origins: announce from the leafy end of the tree.
    ases[n_ases - 1 - pick(n_ases / 2)]->announce(o);
    res.events += sim.run();
  }
  res.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const auto& as : ases) res.routes += as->routes;
  res.rss_mb = vm_rss_mb();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bool json = false;
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--json") json = true;
    if (a == "--large") large = true;
  }

  // Workload sizes. Telemetry capture traces every event — shrink hard
  // so the nightly capture job stays within memory and time budget.
  size_t tor_relays = large ? 5000 : 2500;
  size_t tor_cells = large ? 250'000 : 120'000;
  std::vector<size_t> as_sizes =
      large ? std::vector<size_t>{5000, 10'000, 20'000, 40'000}
            : std::vector<size_t>{5000, 10'000, 20'000};
  size_t as_origins = 12;
  if (telemetry.active()) {
    tor_relays = 300;
    tor_cells = 5000;
    as_sizes = {1000, 2000};
    as_origins = 4;
  }
  constexpr uint64_t kSeed = 2015;

  if (!json) {
    bench::title("bench_scale — internet-scale event engine (DESIGN.md §12)");
    bench::section("Tor overlay: calendar-queue engine vs reference engine");
  }

  // Best of two timed runs per engine (symmetric, so the ratio is fair):
  // a single run is exposed to scheduler noise on shared CI machines.
  const auto best_of_two = [](TorResult a, TorResult b) {
    return a.events_per_sec() >= b.events_per_sec() ? a : b;
  };
  const TorResult neu = best_of_two(
      run_tor_workload<netsim::Simulator, netsim::Node>(tor_relays, tor_cells,
                                                        kSeed),
      run_tor_workload<netsim::Simulator, netsim::Node>(tor_relays, tor_cells,
                                                        kSeed));
  const TorResult ref = best_of_two(
      run_tor_workload<netsim::refsim::Simulator, netsim::refsim::Node>(
          tor_relays, tor_cells, kSeed),
      run_tor_workload<netsim::refsim::Simulator, netsim::refsim::Node>(
          tor_relays, tor_cells, kSeed));

  const bool equal = neu.checksum == ref.checksum &&
                     neu.arrived == ref.arrived &&
                     neu.timer_fires == ref.timer_fires &&
                     neu.delivered == ref.delivered &&
                     neu.events == ref.events && neu.sim_end == ref.sim_end;
  const double speedup =
      ref.events_per_sec() > 0 ? neu.events_per_sec() / ref.events_per_sec() : 0;

  if (!json) {
    std::printf("relays=%zu cells=%zu events=%zu (timer fires=%llu)\n",
                tor_relays, tor_cells, neu.events,
                static_cast<unsigned long long>(neu.timer_fires));
    std::printf("  new engine:       %10s events/s  (%.2fs)\n",
                bench::human(neu.events_per_sec()).c_str(), neu.seconds);
    std::printf("  reference engine: %10s events/s  (%.2fs)\n",
                bench::human(ref.events_per_sec()).c_str(), ref.seconds);
    std::printf("  speedup: %.2fx   engines identical: %s (checksum %016llx)\n",
                speedup, equal ? "yes" : "NO",
                static_cast<unsigned long long>(neu.checksum));
    bench::section("Gao–Rexford AS flood: scale curve (new engine)");
    std::printf("%10s %12s %14s %10s\n", "ASes", "events", "events/s",
                "RSS MB");
  }

  std::vector<AsResult> curve;
  for (const size_t n : as_sizes) {
    curve.push_back(run_as_workload(n, as_origins, kSeed));
    if (!json) {
      const AsResult& r = curve.back();
      std::printf("%10zu %12zu %14s %10.1f\n", n, r.events,
                  bench::human(r.events_per_sec()).c_str(), r.rss_mb);
    }
  }
  const AsResult& top = curve.back();

  if (json) {
    std::printf("{\n");
    std::printf("  \"tor_relays\": %zu,\n", tor_relays);
    std::printf("  \"tor_events\": %zu,\n", neu.events);
    std::printf("  \"tor_events_per_sec\": %.0f,\n", neu.events_per_sec());
    std::printf("  \"tor_legacy_events_per_sec\": %.0f,\n",
                ref.events_per_sec());
    std::printf("  \"tor_speedup_x\": %.2f,\n", speedup);
    std::printf("  \"engines_equal\": %d,\n", equal ? 1 : 0);
    std::printf("  \"as_ases\": %zu,\n", as_sizes.back());
    std::printf("  \"as_events\": %zu,\n", top.events);
    std::printf("  \"as_events_per_sec\": %.0f,\n", top.events_per_sec());
    std::printf("  \"as_routes\": %llu,\n",
                static_cast<unsigned long long>(top.routes));
    std::printf("  \"as_peak_rss_mb\": %.1f\n", top.rss_mb);
    std::printf("}\n");
  } else if (!equal) {
    std::fprintf(stderr, "bench_scale: ENGINE MISMATCH\n");
    return 1;
  }
  return equal ? 0 : 1;
}
