// Sharded control-plane bench (PR 8): throughput-vs-shards scaling for the
// replicated inter-domain controller, heal latency after an attested
// rejoin, and a kill-one-shard-per-epoch chaos drill with a same-seed
// replay equality check.
//
// Output: human tables by default; `--json` prints one flat JSON object
// for bench/compare_bench.py --key pr8 (baseline BENCH_pr8.json).
//
// What is gated (all simulator/model-deterministic):
//   * scale_floor_met  — 1 iff the 8-shard group retires the same policy
//     load at >= 6x the single controller (total 1-shard modeled cycles /
//     max per-shard modeled cycles, steady-state window only);
//   * tables_match_ground_truth — every sweep point distributes exactly
//     the tables the reference fixpoint computes;
//   * chaos_lost_admissions — admitted policies lost across 8 epochs of
//     kill/verify/heal/verify (must be 0);
//   * chaos_replay_equal — a second run under the same seed folds to the
//     same per-epoch table checksum (deterministic failover);
//   * heal_cap_met — worst-epoch heal latency stays under the cap.
#include <cstdio>
#include <cstring>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "routing/bgp.h"
#include "routing/scenario.h"
#include "sgx/cost_model.h"

namespace {

using namespace tenet;
using namespace tenet::routing;

constexpr size_t kAses = 128;
constexpr uint64_t kSeed = 2015;
constexpr size_t kTopShards = 8;
constexpr size_t kChaosEpochs = 8;
constexpr double kScaleFloor = 6.0;
/// Worst-epoch heal budget (simulated milliseconds): attested rejoin +
/// snapshot transfer + slice recompute + table redistribution.
constexpr double kHealCapMs = 400.0;

uint32_t fnv1a32(uint32_t h, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 16777619u;
  }
  return h;
}

ScenarioConfig make_config(size_t shards) {
  ScenarioConfig cfg;
  cfg.n_ases = kAses;
  cfg.seed = kSeed;
  cfg.robust = true;
  cfg.retry.enabled = true;
  cfg.shards = shards;
  return cfg;
}

/// True iff every AS's received table equals the reference fixpoint.
bool tables_match(RoutingDeployment& dep, const ComputationResult& expected) {
  for (const auto& [asn, policy] : dep.policies()) {
    if (!dep.as_has_routes(asn)) return false;
    const RoutingTable table = dep.table_of(asn);
    const auto it = expected.tables.find(asn);
    if (it == expected.tables.end() || table.size() != it->second.size()) {
      return false;
    }
    for (const auto& [prefix, route] : table) {
      const auto ref = it->second.find(prefix);
      if (ref == it->second.end() || route.as_path != ref->second.as_path) {
        return false;
      }
    }
  }
  return true;
}

uint32_t fold_tables(RoutingDeployment& dep, uint32_t h) {
  for (const auto& [asn, policy] : dep.policies()) {
    h = fnv1a32(h, reinterpret_cast<const uint8_t*>(&asn), sizeof(asn));
    for (const auto& [prefix, route] : dep.table_of(asn)) {
      const crypto::Bytes wire = route.serialize();
      h = fnv1a32(h, wire.data(), wire.size());
    }
  }
  return h;
}

struct SweepPoint {
  size_t shards = 0;
  double total_cycles = 0;  // sum over shard replicas, routing phase
  double max_cycles = 0;    // slowest replica bounds throughput
  bool match = false;       // tables equal the reference fixpoint
};

SweepPoint run_sweep_point(size_t shards, const ComputationResult* expected,
                           ComputationResult* expected_out) {
  sgx::CostModel model;
  RoutingDeployment dep(make_config(shards));
  dep.run_attestation_phase();
  std::vector<sgx::CostModel::Snapshot> before;
  for (size_t i = 0; i < shards; ++i) {
    before.push_back(dep.shard_node(i)->cost_snapshot());
  }
  dep.run_routing_phase();
  SweepPoint point;
  point.shards = shards;
  for (size_t i = 0; i < shards; ++i) {
    const auto after = dep.shard_node(i)->cost_snapshot();
    const sgx::CostModel::Snapshot delta{
        after.sgx_user - before[i].sgx_user,
        after.sgx_priv - before[i].sgx_priv,
        after.normal - before[i].normal,
        after.transitions - before[i].transitions,
        0,
        0};
    const double cycles = model.cycles_of(delta);
    point.total_cycles += cycles;
    if (cycles > point.max_cycles) point.max_cycles = cycles;
  }
  if (expected_out != nullptr) {
    *expected_out = BgpComputation::compute(dep.policies());
    expected = expected_out;
  }
  point.match = tables_match(dep, *expected);
  return point;
}

struct ChaosResult {
  size_t epochs = 0;
  uint64_t lost_admissions = 0;  // epochs where a table diverged/vanished
  uint32_t checksum = 2166136261u;  // folded per-epoch table state
  double heal_max_ms = 0;
};

ChaosResult run_chaos() {
  ChaosResult out;
  RoutingDeployment dep(make_config(kTopShards));
  dep.run_attestation_phase();
  dep.run_routing_phase();
  const ComputationResult expected = BgpComputation::compute(dep.policies());
  for (size_t epoch = 0; epoch < kChaosEpochs; ++epoch) {
    // Never shard 0 only by convention of the victim rotation — every
    // extra shard gets killed at least once across the run.
    const size_t victim = 1 + (epoch % (kTopShards - 1));
    if (!dep.kill_shard(victim)) break;
    dep.sim().run();
    // Zero admitted-state loss: every AS (including the re-pointed ones)
    // still resolves the exact reference tables from the survivors.
    if (!tables_match(dep, expected)) ++out.lost_admissions;
    out.checksum = fold_tables(dep, out.checksum);

    const double t0 = dep.sim().now();
    if (!dep.heal_shard(victim)) break;
    dep.sim().run();
    const double heal_ms = (dep.sim().now() - t0) * 1e3;
    if (heal_ms > out.heal_max_ms) out.heal_max_ms = heal_ms;
    if (!tables_match(dep, expected)) ++out.lost_admissions;
    out.checksum = fold_tables(dep, out.checksum);
    ++out.epochs;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") json = true;
  }

  // --- Throughput-vs-shards sweep -----------------------------------------
  if (!json) {
    std::printf("Sharded control plane: %zu ASes, seed %llu\n", kAses,
                static_cast<unsigned long long>(kSeed));
    std::printf("%8s %14s %14s %8s %6s\n", "shards", "total cycles",
                "max/shard", "scale", "match");
  }
  ComputationResult expected;
  std::vector<SweepPoint> curve;
  bool all_match = true;
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, kTopShards}) {
    SweepPoint p = run_sweep_point(
        shards, curve.empty() ? nullptr : &expected,
        curve.empty() ? &expected : nullptr);
    all_match = all_match && p.match;
    curve.push_back(p);
    const double scale = curve.front().total_cycles / p.max_cycles;
    if (!json) {
      std::printf("%8zu %14.3e %14.3e %7.2fx %6s\n", p.shards,
                  p.total_cycles, p.max_cycles, scale,
                  p.match ? "yes" : "NO");
    }
  }
  const double baseline = curve.front().total_cycles;
  const double scale_x2 = baseline / curve[1].max_cycles;
  const double scale_x4 = baseline / curve[2].max_cycles;
  const double scale_x8 = baseline / curve[3].max_cycles;
  const bool floor_met = scale_x8 >= kScaleFloor;

  // --- Chaos drill + same-seed replay -------------------------------------
  const ChaosResult chaos = run_chaos();
  const ChaosResult replay = run_chaos();
  const bool replay_equal = chaos.checksum == replay.checksum &&
                            chaos.epochs == replay.epochs &&
                            chaos.lost_admissions == replay.lost_admissions;
  const bool heal_ok = chaos.heal_max_ms <= kHealCapMs;

  if (json) {
    std::printf("{\n");
    std::printf("  \"scale_floor_met\": %d,\n", floor_met ? 1 : 0);
    std::printf("  \"scale_x8\": %.2f,\n", scale_x8);
    std::printf("  \"tables_match_ground_truth\": %d,\n", all_match ? 1 : 0);
    std::printf("  \"chaos_epochs\": %zu,\n", chaos.epochs);
    std::printf("  \"chaos_lost_admissions\": %llu,\n",
                static_cast<unsigned long long>(chaos.lost_admissions));
    std::printf("  \"chaos_replay_equal\": %d,\n", replay_equal ? 1 : 0);
    std::printf("  \"chaos_checksum32\": %u,\n", chaos.checksum);
    std::printf("  \"heal_cap_met\": %d,\n", heal_ok ? 1 : 0);
    std::printf("  \"heal_max_ms\": %.2f,\n", chaos.heal_max_ms);
    std::printf("  \"shards_top\": %zu,\n", kTopShards);
    std::printf("  \"n_ases\": %zu,\n", kAses);
    std::printf("  \"scale_x2\": %.2f,\n", scale_x2);
    std::printf("  \"scale_x4\": %.2f\n", scale_x4);
    std::printf("}\n");
  } else {
    std::printf("\nChaos drill: %zu epochs (kill one shard per epoch)\n",
                chaos.epochs);
    std::printf("  lost admissions:    %llu\n",
                static_cast<unsigned long long>(chaos.lost_admissions));
    std::printf("  per-epoch checksum: %u (replay %s)\n", chaos.checksum,
                replay_equal ? "equal" : "DIVERGED");
    std::printf("  heal latency max:   %.2f ms (cap %.0f ms)\n",
                chaos.heal_max_ms, kHealCapMs);
    std::printf("\n%s\n", floor_met && all_match && replay_equal &&
                                  chaos.lost_admissions == 0 && heal_ok
                              ? "PASS"
                              : "FAIL");
  }
  const bool pass = floor_met && all_match && replay_equal &&
                    chaos.lost_admissions == 0 && heal_ok;
  return pass ? 0 : 1;
}
