// Recovery benchmark (PR 3): what does fault tolerance cost, and how fast
// does a deployment heal? Prints one flat JSON object with
//  - steady-state overhead of the recovery machinery at fault-rate 0
//    (robust vs non-robust wall-clock per message; acceptance: <= 1%),
//  - goodput vs injected loss rate (deterministic: simulator-counted),
//  - recovery latency after a forced enclave crash, in simulated seconds
//    (deterministic) and wall nanoseconds.
// bench/compare_bench.py --check --baseline BENCH_pr3.json --key pr3 gates
// the deterministic metrics; the wall-clock ones are informational.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/node.h"
#include "core/open_project.h"

using namespace tenet;
using Clock = std::chrono::steady_clock;

namespace {

class CountApp final : public core::SecureApp {
 public:
  using SecureApp::SecureApp;

  void on_secure_message(core::Ctx&, netsim::NodeId,
                         crypto::BytesView) override {
    ++received_;
  }
  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           crypto::BytesView arg) override {
    if (subfn == 1) {
      crypto::Reader r(arg);
      const netsim::NodeId peer = r.u32();
      ctx.send_secure(peer, r.lv());
      return {};
    }
    crypto::Bytes out;
    crypto::append_u64(out, received_);
    return out;
  }
  crypto::Bytes on_checkpoint(core::Ctx&) override {
    crypto::Bytes state;
    crypto::append_u64(state, received_);
    return state;
  }
  void on_restore(core::Ctx&, crypto::BytesView state) override {
    if (state.size() >= 8) received_ = crypto::read_u64(state, 0);
  }

 private:
  uint64_t received_ = 0;
};

struct World {
  World(bool robust, double loss, uint64_t seed)
      : sim(seed), project("bench-recovery", "tenet recovery bench app\n",
                           nullptr) {
    const sgx::AttestationConfig cfg = project.policy();
    const sgx::Authority* auth = &authority;
    image = project.build();
    image.factory = [auth, cfg, robust] {
      auto app = std::make_unique<CountApp>(*auth, cfg);
      if (robust) app->enable_recovery(netsim::RetryPolicy{});
      return app;
    };
    a = std::make_unique<core::EnclaveNode>(sim, authority, "bench-a",
                                            project.foundation(), image);
    b = std::make_unique<core::EnclaveNode>(sim, authority, "bench-b",
                                            project.foundation(), image);
    a->start();
    b->start();
    if (loss > 0) {
      netsim::LinkFaults f;
      f.loss = loss;
      sim.fault_plan().set_default(f);
    }
    a->connect_to(b->id());
    sim.run();
  }

  void send(std::string_view text) {
    crypto::Bytes arg;
    crypto::append_u32(arg, b->id());
    crypto::append_lv(arg, crypto::to_bytes(text));
    try {
      (void)a->control(1, arg);
    } catch (const std::logic_error&) {
      // Channel mid-rehandshake: the message is lost, like any other drop.
    }
    sim.run();
  }
  uint64_t received() { return crypto::read_u64(b->control(2), 0); }

  netsim::Simulator sim;
  sgx::Authority authority;
  core::OpenProject project;
  sgx::EnclaveImage image;
  std::unique_ptr<core::EnclaveNode> a, b;
};

/// Wall-clock ns per message round at the given config (loss 0 only —
/// with loss, wall time measures the drop schedule, not the code).
double message_ns(bool robust, int iters) {
  World w(robust, /*loss=*/0.0, /*seed=*/101);
  w.send("warmup");
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) w.send("payload-goodput-probe");
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - t0).count() /
      iters;
  return ns;
}

/// Deterministic goodput: fraction of 200 scripted sends delivered under
/// `loss`, recovery enabled. Attestation itself rides the retry machinery.
double goodput(double loss) {
  World w(/*robust=*/true, loss, /*seed=*/2015);
  const int kSends = 200;
  for (int i = 0; i < kSends; ++i) w.send("g");
  return static_cast<double>(w.received()) / kSends;
}

struct RecoveryCost {
  double sim_seconds;  // deterministic
  double wall_ns;      // informational
  int sends_to_heal;   // deterministic
};

/// Forces a crash of the receiver, then measures how long until a message
/// gets through again (NACK -> re-handshake -> delivery).
RecoveryCost recovery_drill() {
  World w(/*robust=*/true, /*loss=*/0.0, /*seed=*/7);
  w.send("before crash");
  (void)w.b->checkpoint();
  w.b->inject_fault();
  const auto t0 = Clock::now();
  (void)w.b->recover();
  const uint64_t base = w.received();
  const double sim_t0 = w.sim.now();
  RecoveryCost cost{0, 0, 0};
  while (w.received() <= base && cost.sends_to_heal < 100) {
    w.send("probe");
    ++cost.sends_to_heal;
  }
  cost.sim_seconds = w.sim.now() - sim_t0;
  cost.wall_ns =
      std::chrono::duration<double, std::nano>(Clock::now() - t0).count();
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Telemetry telemetry(argc, argv);

  const double baseline_ns = message_ns(/*robust=*/false, 300);
  const double robust_ns = message_ns(/*robust=*/true, 300);
  const double overhead_pct =
      100.0 * (robust_ns - baseline_ns) / baseline_ns;

  const double g0 = goodput(0.0);
  const double g5 = goodput(0.05);
  const double g10 = goodput(0.10);
  const RecoveryCost drill = recovery_drill();

  std::printf(
      "{\n"
      "  \"baseline_msg_ns\": %.0f,\n"
      "  \"robust_msg_ns\": %.0f,\n"
      "  \"recovery_overhead_pct\": %.3f,\n"
      "  \"goodput_fault_00\": %.4f,\n"
      "  \"goodput_fault_05\": %.4f,\n"
      "  \"goodput_fault_10\": %.4f,\n"
      "  \"recovery_latency_sim_ms\": %.4f,\n"
      "  \"recovery_sends_to_heal\": %d,\n"
      "  \"recovery_wall_ns\": %.0f\n"
      "}\n",
      baseline_ns, robust_ns, overhead_pct, g0, g5, g10,
      drill.sim_seconds * 1e3, drill.sends_to_heal, drill.wall_ns);
  return 0;
}
