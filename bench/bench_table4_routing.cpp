// Table 4 reproduction: "Costs of SDN-based inter-domain routing" — the
// 30-AS scenario, enclave-hosted controllers vs native.
//
// Paper (30 ASes, steady state, init/attestation excluded):
//               Inter-domain          AS-local (avg)
//               w/o SGX   w/ SGX      w/o SGX   w/ SGX
//   SGX(U)      -         1448        -         42
//   Normal      74M       135M(+82%)  13M       24M(+69%)
#include "bench_util.h"
#include "routing/scenario.h"

using namespace tenet;
using namespace tenet::routing;

int main(int argc, char** argv) {
  tenet::bench::Telemetry telemetry(argc, argv);
  using bench::human;
  bench::title(
      "Table 4: Costs of SDN-based inter-domain routing\n"
      "(30 ASes, random topology with business relationships; steady state\n"
      " — enclave initialization and remote attestation excluded, as in the "
      "paper)");

  ScenarioConfig cfg;
  cfg.n_ases = 30;
  cfg.seed = 2015;

  cfg.use_sgx = false;
  const ScenarioResult native = run_routing_scenario(cfg);
  cfg.use_sgx = true;
  const ScenarioResult sgx = run_routing_scenario(cfg);

  const auto as_sgx = sgx.as_steady_avg();
  const auto as_native = native.as_steady_avg();

  std::printf("\n%-14s | %12s %12s | %12s %12s\n", "", "Inter-domain", "",
              "AS-local (avg.)", "");
  std::printf("%-14s | %12s %12s | %12s %12s\n", "", "w/o SGX", "w/ SGX",
              "w/o SGX", "w/ SGX");
  std::printf("---------------+---------------------------+----------------"
              "-----------\n");
  std::printf("%-14s | %12s %12llu | %12s %12llu\n", "SGX(U) inst.", "-",
              (unsigned long long)sgx.controller_steady.sgx_user, "-",
              (unsigned long long)as_sgx.sgx_user);
  std::printf("%-14s | %12s %12s | %12s %12s\n", "Normal inst.",
              human(native.controller_steady.normal).c_str(),
              human(sgx.controller_steady.normal).c_str(),
              human(as_native.normal).c_str(), human(as_sgx.normal).c_str());
  std::printf("%-14s | %12s %12s | %12s %12s   (paper)\n", "SGX(U) paper",
              "-", "1448", "-", "42");
  std::printf("%-14s | %12s %12s | %12s %12s   (paper)\n", "Normal paper",
              "74M", "135M", "13M", "24M");

  bench::section("overhead ratios (paper: +82% inter-domain, +69% AS-local)");
  const double ctrl_pct = bench::pct_increase(
      static_cast<double>(sgx.controller_steady.normal),
      static_cast<double>(native.controller_steady.normal));
  const double as_pct =
      bench::pct_increase(static_cast<double>(as_sgx.normal),
                          static_cast<double>(as_native.normal));
  std::printf("inter-domain controller overhead : +%.0f%%\n", ctrl_pct);
  std::printf("AS-local controller overhead     : +%.0f%%\n", as_pct);

  bench::section("sanity");
  std::printf("attestations in setup phase      : %llu (= #AS controllers, "
              "Table 3)\n",
              (unsigned long long)sgx.attestations);
  ReferenceBgp::check_stable(sgx.policies, sgx.received_tables);
  std::printf("routes pass stability invariants : yes\n");

  const bool shape_ok = ctrl_pct > 30 && ctrl_pct < 200 && as_pct > 20 &&
                        as_pct < 200;
  std::printf("\noverhead in the paper's 'modest' band (tens of %%, not "
              "orders of magnitude): %s\n",
              shape_ok ? "yes" : "NO");
  return shape_ok ? 0 : 1;
}
