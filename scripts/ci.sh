#!/usr/bin/env bash
# CI entry point. Modes:
#
#   scripts/ci.sh              # release build + full ctest
#   scripts/ci.sh asan         # ASan+UBSan build + full ctest
#   scripts/ci.sh ubsan        # optimized UBSan build + full ctest
#   scripts/ci.sh debug
#   scripts/ci.sh notlm        # release with -DTENET_TELEMETRY=OFF: proves
#                              # the tree builds and passes with telemetry
#                              # (spans, counters, scrapes, event log,
#                              # health model) compiled out, and asserts via
#                              # nm that no event-log/health symbols survive
#   scripts/ci.sh quick [preset]  # tier-1 tests only (fast PR gate);
#                                 # preset defaults to release (asan etc.)
#   scripts/ci.sh fault        # release build + fault-injection/recovery slice
#   scripts/ci.sh lint         # security lint gate (DESIGN.md §15): static
#                              # taint pass over the tree (src/ findings are
#                              # hard failures) + dynamic pass driving the
#                              # instrumented boundary fuzzer (zero taint
#                              # hits on the clean build, AND the
#                              # --inject-leak positive control must fire)
#   scripts/ci.sh fuzz-smoke   # ~30s boundary-fuzz campaign on the fast PR
#                              # gate: hostile args against every ecall and
#                              # ocall surface, deterministic replay check,
#                              # in-tool coverage assertion. BF_SEED /
#                              # BF_ITERS / BF_CORPUS_DIR override the
#                              # defaults (nightly runs the long leg)
#   scripts/ci.sh bench-smoke  # release build, bench regression gates
#                              # (compare_bench.py --check for the PR-1,
#                              # PR-3 through PR-8 and PR-10 baselines;
#                              # failures accumulate and every gate's
#                              # comparison table lands in the step summary)
#                              # + telemetry smoke + bench_history.jsonl
#                              # collection (trend summary in step summary)
#
# Honors CC/CXX from the environment (the CI matrix sets gcc/clang) and
# uses ccache transparently when installed.
set -euo pipefail

mode="${1:-release}"
repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

extra_cmake_args=()
if command -v ccache >/dev/null 2>&1; then
  extra_cmake_args+=("-DCMAKE_CXX_COMPILER_LAUNCHER=ccache")
fi

configure_build() {
  local preset="$1"
  cmake --preset "$preset" "${extra_cmake_args[@]}"
  cmake --build --preset "$preset" -j "$(nproc)"
}

case "$mode" in
  release|asan|debug|ubsan)
    configure_build "$mode"
    ctest --preset "$mode"
    ;;
  notlm)
    configure_build notlm
    ctest --preset notlm
    # The telemetry-off build must actually compile observability out, not
    # just disable it: no structured-event-log or health-model machinery
    # may survive into the archive (DESIGN.md §16). The macros compile to
    # ((void)0) under -DTENET_TELEMETRY=OFF, so any surviving symbol means
    # a call site bypassed the TENET_EVENT guard.
    if nm -C build-notlm/src/telemetry/libtenet_telemetry.a 2>/dev/null \
        | grep -E 'EventLog::emit|HealthModel::evaluate|event_log\(\)'; then
      echo "notlm build still contains event-log/health symbols" >&2
      exit 1
    fi
    echo "notlm symbol check ok: events/health compiled out"
    ;;
  quick)
    preset="${2:-release}"
    configure_build "$preset"
    ctest --test-dir "build-$preset" -L tier1 --output-on-failure -j "$(nproc)"
    ;;
  fault)
    # The chaos slice: simulator fault plans, enclave restart, channel
    # recovery, and the per-app crash drills.
    configure_build release
    ctest --test-dir build-release -L fault --output-on-failure -j "$(nproc)"
    ;;
  lint)
    # Any key material reaching an ocall buffer, telemetry label, or trace
    # export in src/ fails the build; tests/, bench/ and tools/ fixtures
    # warn (some leak on purpose as positive controls). The dynamic pass
    # is only trusted armed: it must track keys, scan payloads, and catch
    # the deliberately leaky build.
    configure_build release
    python3 tools/taint_lint.py --static --dynamic \
      --fuzz-bin build-release/tools/boundary_fuzz \
      | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"
    ;;
  fuzz-smoke)
    # Deterministic hostile-args campaign (tools/boundary_fuzz): every
    # registered ecall fn and ocall code, replay-prefix byte-identity, and
    # the coverage ledger asserted in-tool. Replays any corpus failures
    # first; a finding prints a one-command repro line and fails the job.
    configure_build release
    corpus="${BF_CORPUS_DIR:-build-release/fuzz-corpus}"
    mkdir -p "$corpus"
    build-release/tools/boundary_fuzz \
      --seed "${BF_SEED:-1}" --iters "${BF_ITERS:-50000}" \
      --corpus-dir "$corpus" \
      | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"
    ;;
  bench-smoke)
    configure_build release
    # Regression gates. Each gate writes a Markdown comparison table that
    # lands in the GitHub step summary, failures are accumulated so one
    # regressed baseline doesn't hide another, and the recap at the end
    # names every failed gate instead of a bare non-zero exit.
    mkdir -p build-release/bench-gates
    failed_gates=()
    run_gate() {
      local name="$1"; shift
      if ! python3 bench/compare_bench.py "$@" \
          --markdown-out "build-release/bench-gates/${name}.md"; then
        failed_gates+=("$name")
      fi
      if [ -f "build-release/bench-gates/${name}.md" ]; then
        cat "build-release/bench-gates/${name}.md" \
          >> "${GITHUB_STEP_SUMMARY:-/dev/null}"
      fi
    }
    # Perf gate: fail on a >10% regression vs the committed PR-1 baseline.
    run_gate pr1 \
      --bench-binary build-release/bench/bench_pr1_fastpath \
      --check --max-regress 10
    # Recovery gate (PR 3): the gated metrics are simulator-deterministic,
    # so any drift is a real behaviour change, not machine noise.
    run_gate pr3 \
      --bench-binary build-release/bench/bench_recovery \
      --baseline BENCH_pr3.json --key pr3 --check --max-regress 5
    # Switchless gate (PR 4): instruction-model-deterministic transition
    # counts; also fails if the bench output drops any baseline metric.
    run_gate pr4 \
      --bench-binary build-release/bench/bench_table2_packet_io \
      --bench-args=--json \
      --baseline BENCH_pr4.json --key pr4 --check --max-regress 2
    # Tracing gate (PR 5): span/scrape counts and the exact-cost invariant
    # are simulator-deterministic; trace_overhead_over_cap_pct must stay
    # exactly 0 (tracing-on wall-clock overhead <= 5%).
    run_gate pr5 \
      --bench-binary build-release/bench/bench_trace_overhead \
      --baseline BENCH_pr5.json --key pr5 --check --max-regress 5
    # Scale gate (PR 6): the event counts / route counts / engine
    # equivalence bit are simulator-deterministic; throughput, speedup and
    # RSS are machine-dependent, so the budget is loose (the bench already
    # takes best-of-two timed runs per engine to shed scheduler noise).
    run_gate pr6 \
      --bench-binary build-release/bench/bench_scale \
      --bench-args=--json \
      --baseline BENCH_pr6.json --key pr6 --check --max-regress 35
    # Dataplane gate (PR 7): byte-equality bits, batch width, checksums and
    # session-cache/EPC counts are all deterministic — including the
    # speedup_floor_met bit (batched >= 3x scalar at batch width >= 16);
    # raw records/sec stays informational.
    run_gate pr7 \
      --bench-binary build-release/bench/bench_dataplane \
      --bench-args=--json \
      --baseline BENCH_pr7.json --key pr7 --check --max-regress 5
    # Control-plane gate (PR 8): the sweep and the chaos drill run on the
    # virtual clock over the modeled cost meter, so every gated metric —
    # scale factors, chaos loss/replay bits, the fold checksum, heal
    # latency — is deterministic. scale_x8 at -5% still clears the bench's
    # own >= 6x floor (scale_floor_met is also gated, exact).
    run_gate pr8 \
      --bench-binary build-release/bench/bench_controlplane \
      --bench-args=--json \
      --baseline BENCH_pr8.json --key pr8 --check --max-regress 5
    # Observability gate (PR 10): event/scrape/eval counts, the replay and
    # ring-consistency bits, and chaos_lost_admissions are deterministic;
    # obs_overhead_over_cap_pct must stay exactly 0 (full observability —
    # events + health evaluation — costs <= 5% wall clock, min-of-reps).
    run_gate pr10 \
      --bench-binary build-release/bench/bench_observability \
      --bench-args=--json \
      --baseline BENCH_pr10.json --key pr10 --check --max-regress 5
    if [ "${#failed_gates[@]}" -gt 0 ]; then
      echo "bench gates FAILED: ${failed_gates[*]}" >&2
      echo "(comparison tables above / in the step summary)" >&2
      exit 1
    fi
    echo "all bench gates passed (pr1 pr3 pr4 pr5 pr6 pr7 pr8 pr10)"
    # Telemetry smoke: the attestation bench must produce a valid Chrome
    # trace whose counters cross-check against the cost model (the bench
    # exits non-zero on mismatch), and the trace must parse as JSON.
    mkdir -p build-release/telemetry
    build-release/bench/bench_table1_attestation \
      --trace-out build-release/telemetry/table1_trace.json \
      --metrics-out build-release/telemetry/table1_metrics.json
    python3 - <<'EOF'
import json
trace = json.load(open("build-release/telemetry/table1_trace.json"))
assert trace["traceEvents"], "empty trace"
json.load(open("build-release/telemetry/table1_metrics.json"))
print(f"telemetry smoke ok: {len(trace['traceEvents'])} trace events")
EOF
    # Bench history: capture this run's JSON outputs and append them to the
    # JSONL ledger (uploaded as a CI artifact for trend analysis).
    mkdir -p build-release/bench-out
    build-release/bench/bench_pr1_fastpath \
      > build-release/bench-out/bench_pr1_fastpath.json
    build-release/bench/bench_recovery \
      > build-release/bench-out/bench_recovery.json
    build-release/bench/bench_table2_packet_io --json \
      > build-release/bench-out/bench_table2_packet_io.json
    build-release/bench/bench_trace_overhead \
      > build-release/bench-out/bench_trace_overhead.json
    build-release/bench/bench_scale --json \
      > build-release/bench-out/bench_scale.json
    build-release/bench/bench_dataplane --json \
      > build-release/bench-out/bench_dataplane.json
    build-release/bench/bench_controlplane --json \
      > build-release/bench-out/bench_controlplane.json
    build-release/bench/bench_observability --json \
      > build-release/bench-out/bench_observability.json
    python3 scripts/collect_bench_history.py \
      --history build-release/bench-out/bench_history.jsonl \
      --label ci-bench-smoke --summarize \
      build-release/bench-out/bench_pr1_fastpath.json \
      build-release/bench-out/bench_recovery.json \
      build-release/bench-out/bench_table2_packet_io.json \
      build-release/bench-out/bench_trace_overhead.json \
      build-release/bench-out/bench_scale.json \
      build-release/bench-out/bench_dataplane.json \
      build-release/bench-out/bench_controlplane.json \
      build-release/bench-out/bench_observability.json \
      | tee -a "${GITHUB_STEP_SUMMARY:-/dev/null}"
    ;;
  *)
    echo "unknown mode: $mode (expected release|asan|ubsan|debug|notlm|quick|fault|lint|fuzz-smoke|bench-smoke)" >&2
    exit 2
    ;;
esac
