#!/usr/bin/env bash
# CI entry point: Release build + full test suite. Pass a preset name to run
# a different configuration in one command:
#
#   scripts/ci.sh            # release build + ctest
#   scripts/ci.sh asan       # ASan+UBSan build + ctest
#   scripts/ci.sh debug
set -euo pipefail

preset="${1:-release}"
repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset"
