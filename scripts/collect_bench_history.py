#!/usr/bin/env python3
"""Appends bench-run JSON outputs to a bench_history.jsonl ledger.

Each input file is one bench's flat JSON output (what the bench prints on
stdout, e.g. bench_table2_packet_io --json) or a committed BENCH_prN.json
baseline. Every input becomes one JSONL record:

    {"ts": "<UTC ISO-8601>", "commit": "<git sha or null>",
     "source": "<basename>", "label": "<--label or null>", "data": {...}}

Appending (never rewriting) keeps the full perf trajectory: CI's
bench-smoke job runs this after the regression gates and uploads the
ledger as an artifact, so any historical run can be compared without
rebuilding old commits.

With --summarize, a Markdown trend table (latest value and delta vs the
previous record per metric) is printed after appending — CI pipes it into
$GITHUB_STEP_SUMMARY. A missing or empty ledger is not an error: the
summary just says so, and malformed lines (a truncated upload, say) are
skipped with a warning instead of poisoning the whole report.

Usage:
    python3 scripts/collect_bench_history.py --history bench_history.jsonl \
        [--label ci-bench-smoke] [--summarize] [out1.json out2.json ...]
"""

import argparse
import datetime
import json
import pathlib
import subprocess
import sys


def git_commit() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def load_history(history: pathlib.Path) -> list[dict]:
    """Parses the ledger, tolerating a missing file and malformed lines."""
    try:
        text = history.read_text()
    except OSError:
        return []
    records = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            print(
                f"warning: {history}:{lineno}: skipping malformed record"
                f" ({err})",
                file=sys.stderr,
            )
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def numeric_metrics(data, prefix: str = "") -> dict[str, float]:
    """Numeric metrics of one record's data blob (bools excluded).

    Nested dicts are flattened with dotted key paths, so a committed
    baseline ("metrics": {"x": {"seed": 0, "pr10": 3}}) or any newly
    added bench whose JSON nests its numbers still renders trend rows
    instead of being silently skipped.
    """
    if not isinstance(data, dict):
        return {}
    out: dict[str, float] = {}
    for k, v in data.items():
        name = f"{prefix}{k}"
        if isinstance(v, dict):
            out.update(numeric_metrics(v, prefix=f"{name}."))
        elif isinstance(v, (int, float)) and not isinstance(v, bool):
            out[name] = v
    return out


def summarize(history: pathlib.Path) -> str:
    """Markdown trend table: per source+metric, latest value vs previous."""
    records = load_history(history)
    if not records:
        return f"_No bench history recorded yet ({history})._\n"

    # Ledger order is append order; walk it keeping the last two sightings
    # of every (source, metric).
    latest: dict[tuple[str, str], tuple[float, str]] = {}
    previous: dict[tuple[str, str], float] = {}
    for record in records:
        source = record.get("source", "?")
        ts = record.get("ts", "?")
        for name, value in numeric_metrics(record.get("data")).items():
            key = (source, name)
            if key in latest:
                previous[key] = latest[key][0]
            latest[key] = (value, ts)

    lines = [
        f"### Bench history ({len(records)} records, {history.name})",
        "",
        "| bench | metric | latest | vs previous |",
        "|---|---|---:|---:|",
    ]
    for (source, name), (value, _ts) in sorted(latest.items()):
        prev = previous.get((source, name))
        if prev is None:
            delta = "first record"
        elif prev == 0:
            delta = "0 → " + f"{value:g}" if value != 0 else "unchanged"
        else:
            pct = 100.0 * (value - prev) / prev
            delta = "unchanged" if value == prev else f"{pct:+.1f}%"
        lines.append(f"| {source} | {name} | {value:g} | {delta} |")
    return "\n".join(lines) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=pathlib.Path("bench_history.jsonl"),
        help="JSONL ledger to append to (created if missing)",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="free-form run label recorded on every record (e.g. the CI job)",
    )
    parser.add_argument(
        "--summarize",
        action="store_true",
        help="print a Markdown trend table of the ledger after appending",
    )
    parser.add_argument(
        "inputs", nargs="*", type=pathlib.Path, help="bench JSON outputs"
    )
    args = parser.parse_args()

    if not args.inputs and not args.summarize:
        parser.error("nothing to do: no inputs and no --summarize")

    ts = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )
    commit = git_commit()

    records = []
    for path in args.inputs:
        if path == args.history:
            continue  # never ingest the ledger into itself
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"skipping {path}: {err}", file=sys.stderr)
            return 1
        records.append(
            {
                "ts": ts,
                "commit": commit,
                "source": path.name,
                "label": args.label,
                "data": data,
            }
        )

    if records:
        args.history.parent.mkdir(parents=True, exist_ok=True)
        with args.history.open("a") as ledger:
            for record in records:
                ledger.write(json.dumps(record, sort_keys=True) + "\n")
        print(
            f"appended {len(records)} record(s) to {args.history}",
            file=sys.stderr,
        )

    if args.summarize:
        print(summarize(args.history), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
