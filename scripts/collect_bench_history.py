#!/usr/bin/env python3
"""Appends bench-run JSON outputs to a bench_history.jsonl ledger.

Each input file is one bench's flat JSON output (what the bench prints on
stdout, e.g. bench_table2_packet_io --json) or a committed BENCH_prN.json
baseline. Every input becomes one JSONL record:

    {"ts": "<UTC ISO-8601>", "commit": "<git sha or null>",
     "source": "<basename>", "label": "<--label or null>", "data": {...}}

Appending (never rewriting) keeps the full perf trajectory: CI's
bench-smoke job runs this after the regression gates and uploads the
ledger as an artifact, so any historical run can be compared without
rebuilding old commits.

Usage:
    python3 scripts/collect_bench_history.py --history bench_history.jsonl \
        [--label ci-bench-smoke] out1.json out2.json ...
"""

import argparse
import datetime
import json
import pathlib
import subprocess
import sys


def git_commit() -> str | None:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=pathlib.Path("bench_history.jsonl"),
        help="JSONL ledger to append to (created if missing)",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="free-form run label recorded on every record (e.g. the CI job)",
    )
    parser.add_argument(
        "inputs", nargs="+", type=pathlib.Path, help="bench JSON outputs"
    )
    args = parser.parse_args()

    ts = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )
    commit = git_commit()

    records = []
    for path in args.inputs:
        if path == args.history:
            continue  # never ingest the ledger into itself
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"skipping {path}: {err}", file=sys.stderr)
            return 1
        records.append(
            {
                "ts": ts,
                "commit": commit,
                "source": path.name,
                "label": args.label,
                "data": data,
            }
        )

    args.history.parent.mkdir(parents=True, exist_ok=True)
    with args.history.open("a") as ledger:
        for record in records:
            ledger.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {len(records)} record(s) to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
