#!/usr/bin/env bash
# Check-only clang-format gate over the C++ files changed since a base ref.
#
#   scripts/check_format.sh [base-ref]
#
# Default base ref: origin/$GITHUB_BASE_REF on a pull request, else HEAD~1.
# Exits non-zero if any changed file needs reformatting (prints the diff);
# skips with a warning when clang-format is not installed so local
# developer machines without it are not blocked.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

# Pinned formatter version: different clang-format majors disagree on
# brace/wrap edge cases, so an unpinned gate flip-flops as runner images
# roll. CI installs clang-format-18; locally any clang-format still works
# (override with CLANG_FORMAT=clang-format-18 to match CI exactly).
if command -v clang-format-18 >/dev/null 2>&1; then
  clang_format="${CLANG_FORMAT:-clang-format-18}"
else
  clang_format="${CLANG_FORMAT:-clang-format}"
fi
if ! command -v "$clang_format" >/dev/null 2>&1; then
  echo "check_format: $clang_format not installed; skipping" >&2
  exit 0
fi

base="${1:-}"
if [[ -z "$base" ]]; then
  if [[ -n "${GITHUB_BASE_REF:-}" ]]; then
    base="origin/${GITHUB_BASE_REF}"
  else
    base="HEAD~1"
  fi
fi

merge_base="$(git merge-base "$base" HEAD)"
mapfile -t files < <(git diff --name-only --diff-filter=ACMR "$merge_base" \
  -- '*.cpp' '*.h')

if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_format: no C++ files changed since $merge_base"
  exit 0
fi

echo "check_format: checking ${#files[@]} file(s) changed since $merge_base" \
  "($($clang_format --version))"
status=0
for f in "${files[@]}"; do
  [[ -f "$f" ]] || continue
  if ! diff -u --label "$f (HEAD)" --label "$f (clang-format)" \
      "$f" <("$clang_format" --style=file "$f") ; then
    status=1
  fi
done

if [[ $status -ne 0 ]]; then
  echo "check_format: FAIL — run clang-format -i on the files above" >&2
fi
exit $status
