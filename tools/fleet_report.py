#!/usr/bin/env python3
"""Fleet health report + chaos-drill anomaly detector.

Joins the three observability exports of a run:

  * scrape JSONL   (telemetry::Scraper::write_jsonl) — rolling time series
    of every counter/gauge/histogram, one sample per line;
  * event JSONL    (telemetry::EventLog::write_jsonl) — typed fleet events
    (shard down/up, failover adoption, rollback refusals, partitions,
    enclave restarts, ...), one event per line;
  * optional drill summary JSON (a bench --json object, e.g.
    bench_observability) and optional in-process health report JSON
    (telemetry::HealthModel::report_json) — included verbatim.

and renders a fleet report: what happened (fault windows reconstructed
from events), how the fleet behaved (per-shard SLO windows recomputed
offline from histogram bucket deltas, goodput from counter deltas), and —
the point — whether anything happened that the fault record does NOT
explain. Anomaly rules:

  counter_regression     a cumulative counter moved backwards between
                         scrapes (instruments are never destroyed, so any
                         regression means samples were lost or forged);
  broken_scrape_order    scrape seqs not strictly increasing or virtual
                         timestamps not monotone;
  broken_event_order     event seqs not strictly increasing or event
                         timestamps not monotone;
  unhealed_shard_outage  a shard_down with no matching shard_up by the end
                         of the log (the kill-one-shard injection);
  unexplained_slo_breach a window where a shard's p99 replication-hop
                         latency exceeded the cap, or fleet goodput fell
                         under the floor, with NO overlapping fault window
                         (outage, partition, enclave restart);
  admitted_state_loss    the drill summary reports lost admissions
                         (chaos_lost_admissions / lost_admissions > 0).

With --check the exit status is non-zero iff any anomaly fired, so CI can
gate the nightly chaos drill on "every breach has a cause". A clean
same-seed drill must pass; the same drill with an injected unhealed kill
must fail.
"""

import argparse
import json
import sys

# Fault types that open/close windows (event "type" strings are the
# EventLog export contract — see src/telemetry/events.cpp).
SHARD_DOWN = "shard_down"
SHARD_UP = "shard_up"
PARTITION_CUT = "partition_cut"
PARTITION_HEAL = "partition_heal"
ENCLAVE_RESTART = "enclave_restart"
DEGRADE_EVENTS = ("rollback_refused",)

# A fault explains a breach seen up to this long after the window closed
# (recovery tails: re-attestation, re-submission, queue drain).
FAULT_TAIL_US = 500_000


def load_jsonl(path):
    """Parses one JSON object per non-empty line; returns a list."""
    out = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                out.append(json.loads(line))
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{lineno}: bad JSON: {e}") from e
    return out


# --- order / monotonicity checks -----------------------------------------


def check_event_order(events, anomalies):
    prev_seq, prev_ts = 0, 0
    for e in events:
        if e["seq"] <= prev_seq:
            anomalies.append(
                {"rule": "broken_event_order",
                 "detail": f"event seq {e['seq']} after {prev_seq}"})
        if e["ts_us"] < prev_ts:
            anomalies.append(
                {"rule": "broken_event_order",
                 "detail": f"event ts {e['ts_us']}us after {prev_ts}us"})
        prev_seq, prev_ts = e["seq"], e["ts_us"]


def check_scrape_order(scrapes, anomalies):
    prev_seq, prev_ts = -1, 0
    for s in scrapes:
        if s["seq"] <= prev_seq:
            anomalies.append(
                {"rule": "broken_scrape_order",
                 "detail": f"scrape seq {s['seq']} after {prev_seq}"})
        if s["ts_us"] < prev_ts:
            anomalies.append(
                {"rule": "broken_scrape_order",
                 "detail": f"scrape ts {s['ts_us']}us after {prev_ts}us"})
        prev_seq, prev_ts = s["seq"], s["ts_us"]


def check_counter_monotone(scrapes, anomalies):
    """Every cumulative counter must be non-decreasing across the ring."""
    last = {}
    regressions = 0
    for s in scrapes:
        for name, value in s["metrics"]["counters"].items():
            if value < last.get(name, 0):
                regressions += 1
                if regressions <= 5:  # cap the noise, count the rest
                    anomalies.append(
                        {"rule": "counter_regression",
                         "detail": f"{name} fell {last[name]} -> {value} "
                                   f"at scrape seq {s['seq']}"})
            last[name] = value
    if regressions > 5:
        anomalies.append(
            {"rule": "counter_regression",
             "detail": f"... and {regressions - 5} more regressions"})


# --- fault windows from the event log ------------------------------------


def fault_windows(events, end_ts, anomalies):
    """Reconstructs [start_us, end_us] fault windows. An outage still open
    at `end_ts` is itself an anomaly (the injected unhealed kill)."""
    windows = []  # {kind, shard|None, start, end}
    open_outage = {}  # shard -> start ts (first down of the open outage)
    open_cut = None
    for e in events:
        t, ts = e["type"], e["ts_us"]
        if t == SHARD_DOWN:
            open_outage.setdefault(e["a"], ts)
        elif t == SHARD_UP:
            start = open_outage.pop(e["a"], None)
            if start is not None:
                windows.append({"kind": "shard_outage", "shard": e["a"],
                                "start_us": start, "end_us": ts})
        elif t == PARTITION_CUT:
            if open_cut is None:
                open_cut = ts
        elif t == PARTITION_HEAL:
            if open_cut is not None:
                windows.append({"kind": "partition", "shard": None,
                                "start_us": open_cut, "end_us": ts})
                open_cut = None
        elif t == ENCLAVE_RESTART:
            # Point fault: teardown + relaunch, recovery rides the tail.
            windows.append({"kind": "enclave_restart", "shard": None,
                            "start_us": ts, "end_us": ts})
    for shard, start in sorted(open_outage.items()):
        anomalies.append(
            {"rule": "unhealed_shard_outage",
             "detail": f"shard {shard} down at {start}us, never came back"})
        windows.append({"kind": "shard_outage", "shard": shard,
                        "start_us": start, "end_us": end_ts})
    if open_cut is not None:
        windows.append({"kind": "partition", "shard": None,
                        "start_us": open_cut, "end_us": end_ts})
    return windows


def explained(windows, start_us, end_us, shard=None):
    """True iff [start_us, end_us] overlaps a fault window (+ tail). A
    shard-scoped breach is explained by that shard's outage or by any
    fleet-wide fault; outages of OTHER shards also count (failover load
    lands on the survivors)."""
    for w in windows:
        if start_us <= w["end_us"] + FAULT_TAIL_US and w["start_us"] <= end_us:
            return True
    del shard  # breaches ride on any overlapping fault, scoped or not
    return False


# --- offline SLO windows from scrape deltas ------------------------------

HOP_PREFIX = "shard.s"
HOP_SUFFIX = ".hop_latency_us"


def hop_shard(name):
    """'shard.s<id>.hop_latency_us' -> shard id, else None."""
    if not name.startswith(HOP_PREFIX) or not name.endswith(HOP_SUFFIX):
        return None
    digits = name[len(HOP_PREFIX):len(name) - len(HOP_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def window_quantile(base_buckets, tip_buckets, q):
    """q-quantile of the samples recorded between two sparse bucket maps
    ({floor: count}), interpolated inside the log2 bucket — the offline
    mirror of HealthModel::window_quantile."""
    floors = sorted(set(base_buckets) | set(tip_buckets), key=int)
    deltas = [(int(f), tip_buckets.get(f, 0) - base_buckets.get(f, 0))
              for f in floors]
    count = sum(d for _, d in deltas)
    if count <= 0 or any(d < 0 for _, d in deltas):
        return 0
    rank = max(0.0, min(1.0, q)) * (count - 1)
    below = 0
    for floor, d in deltas:
        if d == 0:
            continue
        if rank < below + d:
            hi = 0.0 if floor == 0 else floor * 2.0 - 1.0
            frac = (rank - below) / d
            return int(floor + frac * (hi - floor) + 0.5)
        below += d
    return 0


def slo_windows(scrapes, width, p99_cap_us, goodput_floor):
    """Slides a `width`-sample window over the scrape ring; yields one
    record per tip sample with per-shard hop p99 and fleet goodput."""
    out = []
    for i in range(1, len(scrapes)):
        base = scrapes[max(0, i - width + 1)]
        tip = scrapes[i]
        rec = {"start_us": base["ts_us"], "end_us": tip["ts_us"],
               "shards": {}, "breaches": []}
        b_hist = base["metrics"]["histograms"]
        for name, h in tip["metrics"]["histograms"].items():
            shard = hop_shard(name)
            if shard is None:
                continue
            old = b_hist.get(name, {"count": 0, "buckets": {}})
            hops = h["count"] - old["count"]
            if hops <= 0:
                continue
            p99 = window_quantile(old["buckets"], h["buckets"], 0.99)
            rec["shards"][shard] = {"p99_us": p99, "hops": hops}
            if p99 > p99_cap_us:
                rec["breaches"].append(
                    {"kind": "hop_latency", "shard": shard, "p99_us": p99})
        b_ctr, t_ctr = base["metrics"]["counters"], tip["metrics"]["counters"]
        sent = t_ctr.get("net.messages_sent", 0) - \
            b_ctr.get("net.messages_sent", 0)
        delivered = t_ctr.get("net.messages_delivered", 0) - \
            b_ctr.get("net.messages_delivered", 0)
        rec["goodput"] = 1.0 if sent <= 0 else delivered / sent
        if rec["goodput"] < goodput_floor:
            rec["breaches"].append(
                {"kind": "goodput", "shard": None, "goodput": rec["goodput"]})
        out.append(rec)
    return out


def check_breaches(windows, faults, anomalies):
    for w in windows:
        for b in w["breaches"]:
            if explained(faults, w["start_us"], w["end_us"], b.get("shard")):
                continue
            what = (f"shard {b['shard']} p99 {b['p99_us']}us"
                    if b["kind"] == "hop_latency"
                    else f"goodput {b['goodput']:.3f}")
            anomalies.append(
                {"rule": "unexplained_slo_breach",
                 "detail": f"{what} in [{w['start_us']}, {w['end_us']}]us "
                           "with no overlapping fault window"})


def check_summary(summary, anomalies):
    lost = summary.get("chaos_lost_admissions", summary.get(
        "lost_admissions", 0))
    if lost:
        anomalies.append(
            {"rule": "admitted_state_loss",
             "detail": f"drill summary reports {lost} lost admissions"})


# --- report rendering ----------------------------------------------------


def render(report, out=None):
    out = out if out is not None else sys.stdout
    p = lambda *a: print(*a, file=out)  # noqa: E731
    p("fleet report")
    p(f"  events: {report['event_total']} "
      f"({', '.join(f'{k}={v}' for k, v in sorted(report['event_counts'].items())) or 'none'})")
    p(f"  scrapes: {report['scrape_total']}, "
      f"span {report['start_us']}..{report['end_us']}us")
    if report["fault_windows"]:
        p("  fault windows:")
        for w in report["fault_windows"]:
            who = f"shard {w['shard']}" if w["shard"] is not None else "fleet"
            p(f"    {w['kind']:16s} {who:10s} "
              f"[{w['start_us']}, {w['end_us']}]us "
              f"({(w['end_us'] - w['start_us']) / 1000.0:.1f} ms)")
    else:
        p("  fault windows: none")
    breaches = sum(len(w["breaches"]) for w in report["slo_windows"])
    p(f"  slo windows: {len(report['slo_windows'])} evaluated, "
      f"{breaches} breach(es)")
    if report["anomalies"]:
        p("  ANOMALIES:")
        for a in report["anomalies"]:
            p(f"    {a['rule']}: {a['detail']}")
    else:
        p("  anomalies: none")


def build_report(events, scrapes, summary, health, args):
    anomalies = []
    check_event_order(events, anomalies)
    check_scrape_order(scrapes, anomalies)
    check_counter_monotone(scrapes, anomalies)

    end_ts = 0
    if events:
        end_ts = max(end_ts, events[-1]["ts_us"])
    if scrapes:
        end_ts = max(end_ts, scrapes[-1]["ts_us"])
    faults = fault_windows(events, end_ts, anomalies)
    slo = slo_windows(scrapes, args.window, args.p99_cap_us,
                      args.goodput_floor)
    check_breaches(slo, faults, anomalies)
    if summary is not None:
        check_summary(summary, anomalies)

    counts = {}
    for e in events:
        counts[e["type"]] = counts.get(e["type"], 0) + 1
    report = {
        "start_us": scrapes[0]["ts_us"] if scrapes else 0,
        "end_us": end_ts,
        "event_total": len(events),
        "event_counts": counts,
        "scrape_total": len(scrapes),
        "fault_windows": faults,
        "slo_windows": slo,
        "anomalies": anomalies,
    }
    if summary is not None:
        report["summary"] = summary
    if health is not None:
        report["health"] = health
    return report


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--events", required=True,
                    help="event-log JSONL (EventLog::write_jsonl)")
    ap.add_argument("--scrapes", required=True,
                    help="scrape-ring JSONL (Scraper::write_jsonl)")
    ap.add_argument("--summary", help="drill summary JSON (bench --json)")
    ap.add_argument("--health",
                    help="in-process health report JSON, included verbatim")
    ap.add_argument("--out", help="write the full report as JSON here")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if any anomaly fired")
    ap.add_argument("--p99-cap-us", type=int, default=5000,
                    help="per-window p99 replication-hop cap (default 5000)")
    ap.add_argument("--goodput-floor", type=float, default=0.5,
                    help="delivered/sent floor per window (default 0.5)")
    ap.add_argument("--window", type=int, default=8,
                    help="SLO window width in scrapes (default 8)")
    args = ap.parse_args(argv)

    events = load_jsonl(args.events)
    scrapes = load_jsonl(args.scrapes)
    summary = None
    if args.summary:
        with open(args.summary, "r", encoding="utf-8") as f:
            summary = json.load(f)
    health = None
    if args.health:
        with open(args.health, "r", encoding="utf-8") as f:
            health = json.load(f)

    report = build_report(events, scrapes, summary, health, args)
    render(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=1, sort_keys=True)
            f.write("\n")
    if args.check and report["anomalies"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
