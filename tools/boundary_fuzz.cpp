// boundary_fuzz — deterministic, seed-driven red-team fuzzer for the
// enclave trust boundary (DESIGN.md §15).
//
// Drives every registered ecall entry point (EchoApp, PacketSenderApp,
// the attestation role apps, and the full SecureApp/CoreFn surface) and
// every ocall-handler path (sync, async, switchless-ring, replication
// codec) with hostile inputs: truncated/oversized/bit-flipped payloads,
// replayed sealed blobs, Iago ocall results, forged timer tokens, and
// malformed 0xE0–0xEF shard frames. The invariants it enforces:
//
//   1. The enclave either rejects hostile input cleanly (typed exception
//      or an explicit reject result) or ignores it — it never crashes,
//      never dies from an unexpected exception class, and never accepts
//      a mutated sealed blob or mutated handshake message.
//   2. The whole campaign is byte-identical on replay: the same seed
//      produces the same per-iteration outcome digests (the repo's
//      determinism-by-design invariant, extended to the hostile path).
//   3. Coverage is asserted in-tool: every CoreFn, EchoFn, PacketFn and
//      AttestFn ecall, every core/echo/packet ocall code, and every
//      gated fleet-event emission path (rollback refusal, snapshot
//      install, shard liveness flips, enclave restart) must have been
//      exercised — a fuzzer that silently stops reaching an entry point
//      fails the run. The fleet-event ring's invariants are asserted
//      after the campaign: hostile frames may not crash or wedge it.
//   4. With --taint: every secret the platform derives (report keys,
//      seal keys, attestation session keys) is tracked, and every
//      outbound ocall payload, wire message, and telemetry/trace export
//      is scanned for raw or hex-encoded key material. Any hit fails
//      the run. --inject-leak is the positive control: a deliberately
//      leaky enclave app must produce at least one finding, proving the
//      detector works.
//
// Usage:
//   boundary_fuzz [--seed N] [--iters N] [--max-seconds S] [--json]
//                 [--corpus-dir DIR] [--repro SEED:ITER]
//                 [--taint] [--inject-leak]
//
// Reproduce a failure:  boundary_fuzz --seed S --repro S:I
// (replays the campaign deterministically up to iteration I and reports
// the finding; campaigns depend only on the seed).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/node.h"
#include "core/open_project.h"
#include "core/ports.h"
#include "core/replication.h"
#include "core/shard_group.h"
#include "netsim/sim.h"
#include "sgx/adversary.h"
#include "sgx/apps.h"
#include "sgx/platform.h"
#include "sgx/sealing.h"
#include "sgx/taint.h"
#include "telemetry/events.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace tenet {
namespace {

using crypto::Bytes;
using crypto::BytesView;

// ---------------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------------

struct Options {
  uint64_t seed = 1;
  uint64_t iters = 2000;
  double max_seconds = 0;  // 0 = unbounded
  std::string corpus_dir;
  bool json = false;
  bool taint = false;
  bool inject_leak = false;
  bool repro = false;
  uint64_t repro_iter = 0;
  uint64_t replay_prefix = 512;  // iterations re-run for the replay check
};

// ---------------------------------------------------------------------------
// Outcome folding: every boundary interaction folds its classification and
// result bytes into a per-iteration FNV digest; replay equality of the
// digests is the byte-identical-on-replay assertion.
// ---------------------------------------------------------------------------

enum class Outcome : uint8_t { kOk = 0, kRejected = 1, kFault = 2,
                               kAppError = 3 };

struct Digest {
  uint64_t h = 1469598103934665603ull;
  void mix(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void mix_u64(uint64_t v) { mix(&v, sizeof v); }
  void mix_bytes(BytesView v) { mix(v.data(), v.size()); }
};

struct Finding {
  uint64_t iter = 0;
  std::string target;
  std::string description;
};

// ---------------------------------------------------------------------------
// Coverage ledger: required entry points and ocall codes, asserted at the
// end of every campaign.
// ---------------------------------------------------------------------------

struct Coverage {
  std::set<std::pair<std::string, uint32_t>> ecalls;
  std::set<uint32_t> ocalls;

  void ecall(const std::string& app, uint32_t fn) { ecalls.insert({app, fn}); }
  void ocall(uint32_t code) { ocalls.insert(code); }

  [[nodiscard]] std::vector<std::string> missing() const {
    std::vector<std::string> out;
    const auto need_ecall = [&](const char* app, uint32_t fn) {
      if (!ecalls.count({app, fn})) {
        out.push_back(std::string("ecall ") + app + ":" + std::to_string(fn));
      }
    };
    for (uint32_t fn = core::kFnStart; fn <= core::kFnRestore; ++fn) {
      need_ecall("core", fn);
    }
    for (uint32_t fn = sgx::apps::kEchoReverse; fn <= sgx::apps::kEchoUnseal;
         ++fn) {
      need_ecall("echo", fn);
    }
    need_ecall("packet", sgx::apps::kSendRun);
    for (uint32_t fn = sgx::apps::kCreateChallenge;
         fn <= sgx::apps::kGetSessionKey; ++fn) {
      need_ecall("attest", fn);
    }
    for (const uint32_t code :
         {uint32_t{core::kOcallSend}, uint32_t{core::kOcallLog},
          uint32_t{core::kOcallScheduleTimer}, uint32_t{core::kOcallCancelTimer},
          uint32_t{0x42}, uint32_t{sgx::apps::kOcallNetOpen},
          uint32_t{sgx::apps::kOcallNetSend},
          uint32_t{sgx::apps::kOcallNetSendBatch}}) {
      if (!ocalls.count(code)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "ocall 0x%x", code);
        out.emplace_back(buf);
      }
    }
#if TENET_TELEMETRY_ENABLED
    // Event-emission paths (DESIGN.md §16): the fleet-event ring sits on
    // the same handlers the hostile frames hit, so the campaign must have
    // driven each of these emission sites at least once (the event
    // preamble does so deterministically).
    for (const auto& [type, name] :
         {std::make_pair(telemetry::EventType::kRollbackRefused,
                         "rollback_refused"),
          std::make_pair(telemetry::EventType::kSnapshotInstalled,
                         "snapshot_installed"),
          std::make_pair(telemetry::EventType::kShardDown, "shard_down"),
          std::make_pair(telemetry::EventType::kShardUp, "shard_up"),
          std::make_pair(telemetry::EventType::kEnclaveRestart,
                         "enclave_restart")}) {
      if (telemetry::event_log().count(type) == 0) {
        out.push_back(std::string("event:") + name);
      }
    }
#endif
    return out;
  }
};

// ---------------------------------------------------------------------------
// Fuzz apps (tool-only trusted code; never part of src/)
// ---------------------------------------------------------------------------

/// EchoApp plus one deliberately leaky entry point: fn kLeakFn pushes the
/// enclave's own seal key out through an async log ocall — the textbook
/// "secrets via ocall arguments" misuse. Only launched under
/// --inject-leak, where the taint detector MUST flag it.
constexpr uint32_t kLeakFn = 99;

class LeakyEchoApp final : public sgx::EnclaveApp {
 public:
  crypto::Bytes handle_call(uint32_t fn, BytesView arg,
                            sgx::EnclaveEnv& env) override {
    if (fn == kLeakFn) {
      // taint-lint: allow(deliberate leak — the --inject-leak positive
      // control; the dynamic taint detector must catch this at runtime)
      env.ocall_async(core::kOcallLog, env.seal_key(crypto::to_bytes("t")));
      return {};
    }
    return echo_.handle_call(fn, arg, env);
  }

 private:
  sgx::apps::EchoApp echo_;
};

/// Ledger SecureApp with a red-team control port: kInjectFrame hands an
/// arbitrary byte string straight to ShardReplica::handle_secure as if it
/// had arrived (authenticated) from `peer` — the post-decryption hostile
/// surface a compromised-but-correctly-measured peer could drive.
enum FuzzLedgerControl : uint32_t {
  kLedgerConfigure = 1,  // serialized ShardConfig
  kLedgerAdmit = 2,      // u64 key | LV entry
  kLedgerCount = 3,      // -> u64
  kLedgerJoin = 4,
  kLedgerSetReachable = 5,   // u32 shard | u8 up
  kLedgerInjectFrame = 100,  // u32 peer | LV frame -> u8 consumed
};

class FuzzLedgerApp final : public core::SecureApp {
 public:
  using SecureApp::SecureApp;

  void on_start(core::Ctx& ctx) override {
    // Covers the async log ocall path with benign content.
    ctx.env().ocall_async(core::kOcallLog, crypto::to_bytes("fuzz-start"));
  }

  void on_secure_message(core::Ctx&, netsim::NodeId, BytesView) override {}

  crypto::Bytes on_control(core::Ctx& ctx, uint32_t subfn,
                           BytesView arg) override {
    switch (subfn) {
      case kLedgerConfigure: {
        core::ShardReplica::Hooks hooks;
        hooks.apply = [this](core::Ctx& c, uint32_t, uint64_t key,
                             BytesView entry) {
          c.alloc(entry.size());
          entries_[key] = Bytes(entry.begin(), entry.end());
        };
        hooks.snapshot = [this](core::Ctx&) { return serialize(); };
        hooks.install = [this](core::Ctx&, BytesView state) {
          return load(state);
        };
        enable_sharding(ctx, core::ShardConfig::deserialize(arg),
                        std::move(hooks));
        return {};
      }
      case kLedgerAdmit: {
        crypto::Reader r(arg);
        const uint64_t key = r.u64();
        const BytesView entry = r.lv_view();
        if (shard() != nullptr && shard()->active()) {
          shard()->admit(ctx, key, entry);
        }
        ctx.alloc(entry.size());
        entries_[key] = Bytes(entry.begin(), entry.end());
        return {};
      }
      case kLedgerCount: {
        Bytes out;
        crypto::append_u64(out, entries_.size());
        return out;
      }
      case kLedgerJoin:
        if (shard() != nullptr) shard()->begin_join(ctx);
        return {};
      case kLedgerSetReachable: {
        crypto::Reader r(arg);
        const uint32_t shard_id = r.u32();
        const uint8_t up = r.u8();
        if (shard() != nullptr) shard()->set_reachable(ctx, shard_id, up != 0);
        return {};
      }
      case kLedgerInjectFrame: {
        crypto::Reader r(arg);
        const uint32_t peer = r.u32();
        const BytesView frame = r.lv_view();
        Bytes out;
        out.push_back(shard() != nullptr &&
                              shard()->handle_secure(ctx, peer, frame)
                          ? 1
                          : 0);
        return out;
      }
      default:
        return {};
    }
  }

  crypto::Bytes on_checkpoint(core::Ctx&) override { return serialize(); }
  void on_restore(core::Ctx&, BytesView state) override { (void)load(state); }

 private:
  [[nodiscard]] crypto::Bytes serialize() const {
    Bytes out;
    crypto::append_u32(out, static_cast<uint32_t>(entries_.size()));
    for (const auto& [key, entry] : entries_) {
      crypto::append_u64(out, key);
      crypto::append_lv(out, entry);
    }
    return out;
  }
  bool load(BytesView state) {
    try {
      crypto::Reader r(state);
      const uint32_t n = r.u32();
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t key = r.u64();
        entries_[key] = r.lv();
      }
    } catch (const std::exception&) {
      return false;
    }
    return true;
  }
  std::map<uint64_t, Bytes> entries_;
};

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

class Campaign {
 public:
  Campaign(const Options& opt, Coverage& cov, std::vector<Finding>& findings)
      : opt_(opt), cov_(cov), findings_(findings) {
    // The instrumented boundary (DESIGN.md §15): every ocall payload, on
    // every path — sync, async fallback, switchless drain — funnels
    // through this tap. Coverage always; taint scanning on demand.
    sgx::taint::set_ocall_tap([this](uint32_t code, BytesView payload) {
      cov_.ocall(code);
      if (opt_.taint) snoop_.scan(code, payload);
    });
    if (opt_.taint) {
      sgx::taint::set_key_tap([this](std::string_view kind, BytesView key) {
        if (keys_tracked_ >= kMaxNeedles) {
          ++keys_skipped_;
          return;
        }
        ++keys_tracked_;
        snoop_.track(std::string(kind) + "#" + std::to_string(keys_tracked_),
                     key);
      });
    }
  }

  ~Campaign() {
    sgx::taint::set_ocall_tap(nullptr);
    if (opt_.taint) sgx::taint::set_key_tap(nullptr);
  }

  /// Fixed coverage preamble: exercises every required entry point once,
  /// deterministically, so the coverage assertion never depends on the
  /// random iteration mix. Runs before iteration 0 and folds into the
  /// replay digest like any iteration.
  uint64_t preamble() {
    Digest d;
    run_guarded(static_cast<uint64_t>(-1), "preamble", d,
                [&] { packet_preamble(d); });
    run_guarded(static_cast<uint64_t>(-1), "preamble", d,
                [&] { attest_iteration(0, d, /*preamble=*/true); });
    run_guarded(static_cast<uint64_t>(-1), "preamble", d,
                [&] { core_preamble(d); });
    run_guarded(static_cast<uint64_t>(-1), "preamble", d, [&] {
      for (uint32_t fn = sgx::apps::kEchoReverse;
           fn <= sgx::apps::kEchoUnseal; ++fn) {
        echo_call(fn, crypto::to_bytes("\x04\x00\x00\x00pre"), d);
      }
    });
    run_guarded(static_cast<uint64_t>(-1), "preamble", d,
                [&] { event_preamble(d); });
    return d.h;
  }

  /// Runs iteration `i`; returns its digest.
  uint64_t iteration(uint64_t i) {
    Digest d;
    crypto::Drbg rng = crypto::Drbg::from_label(
        opt_.seed * 0x9e3779b97f4a7c15ull + i, "tenet.boundary_fuzz.iter");
    switch (rng.uniform(16)) {
      case 0: case 1: case 2: case 3: case 4: case 5: case 6: case 7:
        run_guarded(i, "echo", d, [&] { echo_iteration(rng, d); });
        break;
      case 8: case 9: case 10:
        run_guarded(i, "ledger", d, [&] { ledger_iteration(rng, d); });
        break;
      case 11: case 12: case 13:
        run_guarded(i, "shard-codec", d, [&] { shard_iteration(rng, d); });
        break;
      case 14:
        run_guarded(i, "attest", d, [&] { attest_iteration(rng.next_u64(), d,
                                                           false); });
        break;
      default:
        run_guarded(i, "packet", d, [&] { packet_iteration(rng, d); });
        break;
    }
    return d.h;
  }

  /// Post-campaign taint sweep over telemetry and trace exports.
  void scan_exports() {
    if (!opt_.taint) return;
    snoop_.scan_text(0xF001, telemetry::registry().metrics_json());
    snoop_.scan_text(0xF002, telemetry::tracer().chrome_json());
    for (const auto& hit : snoop_.hits()) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "key material \"%s\" crossed the boundary via %s 0x%x "
                    "at offset %zu (%s form)",
                    hit.needle.c_str(),
                    hit.code >= 0xF000 ? "export" : "ocall", hit.code,
                    hit.offset, hit.hex ? "hex" : "raw");
      findings_.push_back(Finding{0, "taint", buf});
    }
  }

  [[nodiscard]] uint64_t keys_tracked() const { return keys_tracked_; }
  [[nodiscard]] uint64_t keys_skipped() const { return keys_skipped_; }
  [[nodiscard]] uint64_t payloads_scanned() const {
    return snoop_.payloads_observed();
  }
  [[nodiscard]] size_t taint_hits() const { return snoop_.hits().size(); }

 private:
  static constexpr uint64_t kMaxNeedles = 512;

  // --- shared finding guard ------------------------------------------------

  /// Every fuzz operation runs under this guard. Handled rejections are
  /// folded into the digest by the ops themselves; only unexpected
  /// exception classes (or allocation death) become findings.
  template <typename F>
  void run_guarded(uint64_t iter, const char* target, Digest& d, F&& f) {
    try {
      f();
    } catch (const std::bad_alloc&) {
      findings_.push_back(
          Finding{iter, target, "allocation death (std::bad_alloc escaped)"});
      d.mix_u64(0xBADA110C);
    } catch (const sgx::HardwareFault& e) {
      // A fault that escapes a whole iteration (not just one op) still
      // counts as handled — but it must be deterministic, so fold it.
      d.mix_u64(0xFA017);
      d.mix(e.what(), std::strlen(e.what()));
    } catch (const std::exception& e) {
      d.mix_u64(0xE44);
      d.mix(e.what(), std::strlen(e.what()));
    } catch (...) {
      findings_.push_back(Finding{
          iter, target, "non-standard exception escaped the boundary"});
      d.mix_u64(0xDEAD);
    }
  }

  /// Classifies one boundary call. Returns the result for chaining.
  template <typename F>
  Bytes classify(Digest& d, F&& call) {
    try {
      Bytes result = call();
      d.mix_u64(static_cast<uint64_t>(Outcome::kOk));
      d.mix_bytes(result);
      return result;
    } catch (const sgx::HardwareFault& e) {
      d.mix_u64(static_cast<uint64_t>(Outcome::kFault));
      d.mix(e.what(), std::strlen(e.what()));
    } catch (const std::exception& e) {
      d.mix_u64(static_cast<uint64_t>(Outcome::kAppError));
      d.mix(e.what(), std::strlen(e.what()));
    }
    return {};
  }

  // --- echo target ---------------------------------------------------------

  struct EchoWorld {
    sgx::Authority authority;
    sgx::Vendor vendor{"fuzz-vendor"};
    sgx::Platform platform{authority, "fuzz-echo-host"};
    sgx::Enclave* enclave = nullptr;
    Bytes good_sealed;  // a known-valid sealed blob for mutation
    crypto::Drbg iago{crypto::Drbg::from_label(7, "tenet.fuzz.iago")};
  };

  void fresh_echo_world() {
    echo_ = std::make_unique<EchoWorld>();
    sgx::EnclaveImage image =
        sgx::apps::echo_image(/*variant=*/opt_.inject_leak ? 7 : 0);
    if (opt_.inject_leak) {
      image.factory = [] { return std::make_unique<LeakyEchoApp>(); };
    }
    echo_->enclave = &echo_->platform.launch(echo_->vendor, image);
    if (echo_worlds_++ % 2 == 1) echo_->enclave->enable_switchless();
    EchoWorld* w = echo_.get();
    echo_->enclave->set_ocall_handler([w](uint32_t code, BytesView payload) {
      // Iago host: answers the echo round-trip ocall with hostile bytes
      // drawn from a deterministic stream; async codes get the empty
      // (success) result.
      (void)payload;
      if (code != 0x42) return Bytes{};
      return w->iago.bytes(w->iago.uniform(257));
    });
    echo_->good_sealed = classify_discard([&] {
      return echo_->enclave->ecall(sgx::apps::kEchoSeal,
                                   crypto::to_bytes("genuine state"));
    });
  }

  template <typename F>
  Bytes classify_discard(F&& call) {
    Digest scratch;
    return classify(scratch, std::forward<F>(call));
  }

  void echo_call(uint32_t fn, BytesView arg, Digest& d) {
    if (!echo_ || !echo_->enclave->alive()) fresh_echo_world();
    cov_.ecall("echo", fn);
    d.mix_u64(fn);
    (void)classify(d, [&] { return echo_->enclave->ecall(fn, arg); });
  }

  void echo_iteration(crypto::Drbg& rng, Digest& d) {
    if (!echo_ || echo_iters_++ % 512 == 511) fresh_echo_world();
    const uint32_t pick = static_cast<uint32_t>(rng.uniform(10));
    switch (pick) {
      case 0:  // unknown fn: must be ignored, not crash
        echo_call(static_cast<uint32_t>(rng.uniform(1u << 16)),
                  rng.bytes(rng.uniform(64)), d);
        break;
      case 1: {  // bounded alloc, occasionally pushing toward EPC pressure
        Bytes arg;
        const uint32_t n = rng.uniform(100) == 0
                               ? static_cast<uint32_t>(rng.uniform(1u << 22))
                               : static_cast<uint32_t>(rng.uniform(1u << 14));
        crypto::append_u32(arg, n);
        echo_call(sgx::apps::kEchoAlloc, arg, d);
        // Truncated arg: read_u32 must reject, not read wild.
        echo_call(sgx::apps::kEchoAlloc, rng.bytes(rng.uniform(4)), d);
        break;
      }
      case 2: {  // mutated sealed blob must never unseal
        Bytes mutated;
        switch (rng.uniform(3)) {
          case 0:
            mutated = sgx::adversary::bit_flip(echo_->good_sealed,
                                               rng.next_u64());
            break;
          case 1:
            mutated = sgx::adversary::truncate(
                echo_->good_sealed, rng.uniform(echo_->good_sealed.size() + 1));
            break;
          default:
            mutated = sgx::adversary::extend(
                echo_->good_sealed, 1 + rng.uniform(64),
                static_cast<uint8_t>(rng.uniform(256)));
            break;
        }
        if (mutated == echo_->good_sealed) break;  // flip landed harmlessly? no: bit_flip always changes
        const Bytes out = classify_discard([&] {
          return echo_->enclave->ecall(sgx::apps::kEchoUnseal, mutated);
        });
        cov_.ecall("echo", sgx::apps::kEchoUnseal);
        d.mix_bytes(out);
        if (!out.empty()) {
          findings_.push_back(Finding{
              0, "echo", "mutated sealed blob unsealed successfully"});
        }
        break;
      }
      case 3:  // replay an untampered sealed blob: must still unseal
        echo_call(sgx::apps::kEchoUnseal, echo_->good_sealed, d);
        break;
      case 4:
        echo_call(sgx::apps::kEchoThrow, {}, d);
        break;
      case 5:  // oversized payload through the ocall round trip
        echo_call(sgx::apps::kEchoOcall, rng.bytes(4096 + rng.uniform(4096)),
                  d);
        break;
      case 6:
        if (echo_->enclave->switchless_enabled()) {
          echo_->enclave->flush_switchless();
        }
        echo_call(sgx::apps::kEchoSealKey, {}, d);
        break;
      case 7:
        if (opt_.inject_leak) echo_call(kLeakFn, {}, d);
        echo_call(sgx::apps::kEchoSeal, rng.bytes(rng.uniform(512)), d);
        break;
      default:
        echo_call(sgx::apps::kEchoReverse, rng.bytes(rng.uniform(2048)), d);
        break;
    }
  }

  // --- packet target -------------------------------------------------------

  struct PacketWorld {
    sgx::Authority authority;
    sgx::Vendor vendor{"fuzz-vendor"};
    sgx::Platform platform{authority, "fuzz-packet-host"};
    sgx::Enclave* enclave = nullptr;
  };

  void fresh_packet_world() {
    packet_ = std::make_unique<PacketWorld>();
    packet_->enclave =
        &packet_->platform.launch(packet_->vendor,
                                  sgx::apps::packet_sender_image());
    packet_->enclave->set_ocall_handler(
        [](uint32_t, BytesView) { return Bytes{}; });
  }

  void packet_run(BytesView wire, Digest& d) {
    if (!packet_ || !packet_->enclave->alive()) fresh_packet_world();
    cov_.ecall("packet", sgx::apps::kSendRun);
    (void)classify(d, [&] {
      return packet_->enclave->ecall(sgx::apps::kSendRun, wire);
    });
  }

  void packet_preamble(Digest& d) {
    sgx::apps::SendRunRequest req;
    req.packet_count = 4;
    req.packet_size = 128;
    packet_run(req.serialize(), d);  // covers kOcallNetOpen + kOcallNetSend
    req.batched = true;
    req.batch_size = 2;
    packet_run(req.serialize(), d);  // covers kOcallNetSendBatch
  }

  void packet_iteration(crypto::Drbg& rng, Digest& d) {
    sgx::apps::SendRunRequest req;
    // packet_count stays small on purpose: a huge count is a DoS by the
    // host against its own enclave (permitted by the threat model) that
    // would only stall the fuzzer, not find anything.
    req.packet_count = 1 + static_cast<uint32_t>(rng.uniform(8));
    req.packet_size = static_cast<uint32_t>(rng.uniform(4096));
    req.encrypt = rng.uniform(2) == 0;
    req.batched = rng.uniform(2) == 0;
    req.batch_size = static_cast<uint32_t>(rng.uniform(32));
    Bytes wire = req.serialize();
    if (rng.uniform(2) == 0) {
      wire = sgx::adversary::truncate(wire, rng.uniform(wire.size() + 1));
    }
    packet_run(wire, d);
  }

  // --- attestation target --------------------------------------------------

  void attest_iteration(uint64_t sub_seed, Digest& d, bool preamble) {
    sgx::Authority authority;
    sgx::Vendor vendor{"fuzz-vendor"};
    sgx::Platform platform{authority, "fuzz-attest-host"};
    sgx::AttestationConfig cfg;
    cfg.mutual = false;
    cfg.expect.expect_enclave(sgx::apps::target_image(authority, cfg).measure());
    sgx::Enclave& challenger =
        platform.launch(vendor, sgx::apps::challenger_image(authority, cfg));
    sgx::Enclave& target =
        platform.launch(vendor, sgx::apps::target_image(authority, cfg));
    const sgx::OcallHandler handler = [](uint32_t, BytesView) {
      return Bytes{};
    };
    challenger.set_ocall_handler(handler);
    target.set_ocall_handler(handler);

    crypto::Drbg rng = crypto::Drbg::from_label(sub_seed, "tenet.fuzz.attest");
    // Mutation plan: 0 = clean handshake, 1..3 = flip one message.
    const uint64_t plan = preamble ? 0 : rng.uniform(4);
    const auto mutate = [&](Bytes msg, uint64_t stage) {
      if (plan != stage) return msg;
      return sgx::adversary::bit_flip(msg, rng.next_u64());
    };

    cov_.ecall("attest", sgx::apps::kCreateChallenge);
    Bytes msg1 = classify(
        d, [&] { return challenger.ecall(sgx::apps::kCreateChallenge, {}); });
    msg1 = mutate(std::move(msg1), 1);

    cov_.ecall("attest", sgx::apps::kHandleChallenge);
    Bytes msg2 = classify(
        d, [&] { return target.ecall(sgx::apps::kHandleChallenge, msg1); });
    msg2 = mutate(std::move(msg2), 2);

    cov_.ecall("attest", sgx::apps::kConsumeResponse);
    const Bytes outcome = classify(
        d, [&] { return challenger.ecall(sgx::apps::kConsumeResponse, msg2); });
    const bool accepted = !outcome.empty() && outcome[0] == 1;
    if (plan == 0 && !accepted) {
      findings_.push_back(
          Finding{0, "attest", "clean handshake failed to verify"});
    }
    // A flipped msg2 (the quote response) accepted at this stage is a
    // broken binding. A flipped msg1 is judged at the confirm stage: the
    // two sides hold different transcripts, so a fully-agreeing session
    // can only mean the flipped field was never bound.
    if (plan == 2 && accepted) {
      findings_.push_back(Finding{
          0, "attest",
          "bit-flipped attestation response was accepted (binding broken)"});
    }
    if (accepted) {
      cov_.ecall("attest", sgx::apps::kCreateConfirm);
      Bytes msg3 = classify(
          d, [&] { return challenger.ecall(sgx::apps::kCreateConfirm, {}); });
      msg3 = mutate(std::move(msg3), 3);
      cov_.ecall("attest", sgx::apps::kVerifyConfirm);
      const Bytes confirmed = classify(
          d, [&] { return target.ecall(sgx::apps::kVerifyConfirm, msg3); });
      const bool ok = !confirmed.empty() && confirmed[0] == 1;
      if (plan == 0 && !ok) {
        findings_.push_back(
            Finding{0, "attest", "clean confirm failed to verify"});
      }
      if (plan == 3 && ok) {
        findings_.push_back(
            Finding{0, "attest", "bit-flipped confirm was accepted"});
      }
      if (plan == 1 && ok) {
        findings_.push_back(Finding{
            0, "attest",
            "handshake with bit-flipped challenge fully agreed (challenge "
            "byte not bound)"});
      }
      cov_.ecall("attest", sgx::apps::kGetSessionKey);
      (void)classify(d, [&] {
        return challenger.ecall(sgx::apps::kGetSessionKey,
                                crypto::to_bytes("fuzz"));
      });
    } else {
      // Reserved-path coverage on the reject branch: both calls must
      // reject cleanly with no session established.
      cov_.ecall("attest", sgx::apps::kCreateConfirm);
      (void)classify(
          d, [&] { return challenger.ecall(sgx::apps::kCreateConfirm, {}); });
      cov_.ecall("attest", sgx::apps::kVerifyConfirm);
      (void)classify(
          d, [&] { return target.ecall(sgx::apps::kVerifyConfirm, {}); });
      cov_.ecall("attest", sgx::apps::kGetSessionKey);
      const Bytes key = classify(d, [&] {
        return challenger.ecall(sgx::apps::kGetSessionKey,
                                crypto::to_bytes("fuzz"));
      });
      if (plan != 0 && !key.empty()) {
        findings_.push_back(Finding{
            0, "attest",
            "session key handed out after failed attestation (use-before-"
            "verify)"});
      }
    }
  }

  // --- ledger / shard-codec target ----------------------------------------

  struct LedgerWorld {
    explicit LedgerWorld(uint64_t seed, bool switchless)
        : sim(seed), project("fuzz-ledger", "tenet fuzz ledger v1\n", nullptr) {
      const sgx::AttestationConfig cfg = project.policy(/*mutual=*/true);
      const sgx::Authority* auth = &authority;
      sgx::EnclaveImage image = project.build();
      image.factory = [auth, cfg] {
        auto app = std::make_unique<FuzzLedgerApp>(*auth, cfg);
        netsim::RetryPolicy retry;
        retry.enabled = true;
        app->enable_recovery(retry);
        return app;
      };
      for (size_t i = 0; i < 2; ++i) {
        nodes.push_back(std::make_unique<core::EnclaveNode>(
            sim, authority, "fuzz-ledger-" + std::to_string(i),
            project.foundation(), image));
        if (switchless) nodes.back()->enable_switchless();
        nodes.back()->start();
        members.push_back(core::ShardMember{static_cast<uint32_t>(i),
                                            nodes.back()->id()});
      }
    }

    netsim::Simulator sim;
    sgx::Authority authority;
    core::OpenProject project;
    std::vector<std::unique_ptr<core::EnclaveNode>> nodes;
    std::vector<core::ShardMember> members;
  };

  void fresh_ledger_world() {
    ledger_ = std::make_unique<LedgerWorld>(
        opt_.seed * 1315423911ull + ledger_worlds_, ledger_worlds_ % 2 == 1);
    ++ledger_worlds_;
    if (opt_.taint) {
      // Wire-level taint tap: everything any node emits is scanned. The
      // ocall payload framing is [dst][port][len]+bytes; the wiretap sees
      // the payload after host framing, which is the part that leaves
      // the machine.
      ledger_->sim.set_wiretap([this](const netsim::Message& m) {
        snoop_.scan(0x1000 + m.port, m.payload);
      });
    }
    cov_.ecall("core", core::kFnStart);  // issued by node.start() above
    core::ShardConfig cfg;
    cfg.replication = 2;
    cfg.members = ledger_->members;
    for (size_t i = 0; i < ledger_->nodes.size(); ++i) {
      cfg.self = static_cast<uint32_t>(i);
      cov_.ecall("core", core::kFnControl);
      ledger_->nodes[i]->control(kLedgerConfigure, cfg.serialize());
    }
    // Ring attestation with recovery enabled: covers kFnConnect,
    // kFnDeliver and the timer schedule/cancel ocalls.
    cov_.ecall("core", core::kFnConnect);
    cov_.ecall("core", core::kFnDeliver);
    ledger_->sim.run();
  }

  core::EnclaveNode& ledger_node(size_t i) { return *ledger_->nodes[i]; }

  void ledger_ensure() {
    if (!ledger_ || ledger_iters_++ % 256 == 255) fresh_ledger_world();
    if (ledger_node(0).dead() || ledger_node(1).dead()) fresh_ledger_world();
  }

  void core_preamble(Digest& d) {
    fresh_ledger_world();
    core::EnclaveNode& n0 = ledger_node(0);
    cov_.ecall("core", core::kFnControl);
    Bytes arg;
    crypto::append_u64(arg, 1);
    crypto::append_lv(arg, crypto::to_bytes("pre-entry"));
    (void)classify(d, [&] { return n0.control(kLedgerAdmit, arg); });
    ledger_->sim.run();
    cov_.ecall("core", core::kFnQuery);
    d.mix_u64(n0.query(core::kQueryAttestedPeerCount));
    cov_.ecall("core", core::kFnCheckpoint);
    const Bytes cp = n0.checkpoint();
    vault_.store("preamble", cp);
    cov_.ecall("core", core::kFnRestore);
    d.mix_u64(n0.restore(cp) ? 1 : 0);
    cov_.ecall("core", core::kFnTimer);
    Bytes token;
    crypto::append_u64(token, 0x7e57);
    (void)classify(d, [&] { return n0.enclave().ecall(core::kFnTimer, token); });
    cov_.ecall("core", core::kFnDisconnect);
    n0.disconnect_from(ledger_node(1).id());
    cov_.ecall("core", core::kFnConnect);
    n0.connect_to(ledger_node(1).id());
    ledger_->sim.run();
  }

  /// Deterministic event-path coverage (DESIGN.md §16): the fleet-event
  /// ring hangs off the same handlers the hostile frames hit, so each
  /// emission site is driven once here — a stale snapshot (rollback
  /// refusal), a dominating snapshot (install), a reachability flip both
  /// ways, and an enclave restart — keeping the `event:` coverage
  /// assertion independent of the random iteration mix.
  void event_preamble(Digest& d) {
#if TENET_TELEMETRY_ENABLED
    if (!ledger_) fresh_ledger_world();
    core::EnclaveNode& n0 = ledger_node(0);
    const uint32_t trusted = ledger_node(1).id();
    // Advance node 0's version vector so an empty snapshot reads stale.
    Bytes admit;
    crypto::append_u64(admit, 0xE0E);
    crypto::append_lv(admit, crypto::to_bytes("event-entry"));
    (void)classify(d, [&] { return n0.control(kLedgerAdmit, admit); });
    ledger_->sim.run();
    // Stale snapshot (empty version vector) -> kRollbackRefused.
    {
      Bytes inj;
      crypto::append_u32(inj, trusted);
      crypto::append_lv(inj, core::encode_shard_snapshot(
                                 1, core::VersionVector{}, {}));
      (void)classify(d, [&] { return n0.control(kLedgerInjectFrame, inj); });
    }
    // Snapshot carrying an unseen origin -> install -> kSnapshotInstalled.
    {
      core::VersionVector vv;
      vv.observe(1, 1);
      Bytes state;
      crypto::append_u32(state, 0);  // well-formed empty ledger state
      Bytes inj;
      crypto::append_u32(inj, trusted);
      crypto::append_lv(inj, core::encode_shard_snapshot(1, vv, state));
      (void)classify(d, [&] { return n0.control(kLedgerInjectFrame, inj); });
    }
    // Reachability flip both ways -> kShardDown, then kShardUp.
    for (const uint8_t up : {uint8_t{0}, uint8_t{1}}) {
      Bytes flip;
      crypto::append_u32(flip, 1);
      flip.push_back(up);
      (void)classify(d, [&] { return n0.control(kLedgerSetReachable, flip); });
    }
    ledger_->sim.run();
    // Throwaway enclave restart -> kEnclaveRestart.
    sgx::Authority authority;
    sgx::Vendor vendor{"fuzz-vendor"};
    sgx::Platform platform{authority, "fuzz-event-host"};
    sgx::Enclave& enclave = platform.launch(vendor, sgx::apps::echo_image(0));
    enclave.set_ocall_handler([](uint32_t, BytesView) { return Bytes{}; });
    d.mix_u64(platform.restart_enclave(enclave.id()).id());
#else
    (void)d;
#endif
  }

  void ledger_iteration(crypto::Drbg& rng, Digest& d) {
    ledger_ensure();
    core::EnclaveNode& node = ledger_node(rng.uniform(2));
    core::EnclaveNode& peer = ledger_node(0).id() == node.id()
                                  ? ledger_node(1)
                                  : ledger_node(0);
    switch (rng.uniform(8)) {
      case 0: {  // hostile network delivery on every port class
        static constexpr uint32_t kPorts[] = {
            core::kPortAttestChallenge, core::kPortAttestResponse,
            core::kPortAttestConfirm, core::kPortChannelReset,
            core::kPortSecure, core::kPortPlain, 999};
        netsim::Message m;
        m.src = rng.uniform(2) == 0 ? peer.id()
                                    : static_cast<netsim::NodeId>(
                                          rng.uniform(1u << 16));
        m.dst = node.id();
        m.port = kPorts[rng.uniform(std::size(kPorts))];
        m.payload = rng.bytes(rng.uniform(512));
        cov_.ecall("core", core::kFnDeliver);
        (void)classify(d, [&] {
          node.handle_message(m);
          return Bytes{};
        });
        break;
      }
      case 1: {  // hostile control: random subfn, junk args
        cov_.ecall("core", core::kFnControl);
        (void)classify(d, [&] {
          return node.control(static_cast<uint32_t>(rng.uniform(128)),
                              rng.bytes(rng.uniform(96)));
        });
        break;
      }
      case 2: {  // query sweep incl. unknown selectors
        cov_.ecall("core", core::kFnQuery);
        (void)classify(d, [&] {
          Bytes arg;
          crypto::append_u32(arg, static_cast<uint32_t>(rng.uniform(24)));
          return node.enclave().ecall(core::kFnQuery, arg);
        });
        break;
      }
      case 3: {  // checkpoint, then restore a mutated or replayed blob
        cov_.ecall("core", core::kFnCheckpoint);
        const Bytes cp = node.checkpoint();
        if (!cp.empty()) vault_.store("ledger", cp);
        cov_.ecall("core", core::kFnRestore);
        const uint64_t mode = rng.uniform(3);
        if (mode == 0 && !cp.empty()) {
          const Bytes mutated = sgx::adversary::bit_flip(cp, rng.next_u64());
          const bool took = node.restore(mutated);
          d.mix_u64(took ? 1 : 0);
          if (took) {
            findings_.push_back(Finding{
                0, "ledger", "bit-flipped sealed checkpoint restored"});
          }
        } else if (mode == 1 && vault_.versions("ledger") > 0) {
          // Replayed stale-but-authentic blob: unseals fine (rollback is
          // the version layer's job, exercised by the shard tests).
          d.mix_u64(node.restore(vault_.replay(
                        "ledger", rng.uniform(vault_.versions("ledger"))))
                        ? 1
                        : 0);
        } else {
          d.mix_u64(node.restore(rng.bytes(rng.uniform(256))) ? 1 : 0);
        }
        break;
      }
      case 4: {  // forged timer tokens must be ignored
        cov_.ecall("core", core::kFnTimer);
        (void)classify(d, [&] {
          Bytes token;
          crypto::append_u64(token, rng.next_u64());
          return node.enclave().ecall(core::kFnTimer, token);
        });
        // Truncated token too.
        (void)classify(d, [&] {
          return node.enclave().ecall(core::kFnTimer,
                                      rng.bytes(rng.uniform(8)));
        });
        break;
      }
      case 5: {  // disconnect/reconnect churn
        cov_.ecall("core", core::kFnDisconnect);
        node.disconnect_from(peer.id());
        cov_.ecall("core", core::kFnConnect);
        node.connect_to(peer.id());
        break;
      }
      case 6: {  // legitimate admit keeps real state flowing between ops
        cov_.ecall("core", core::kFnControl);
        Bytes arg;
        crypto::append_u64(arg, rng.next_u64());
        crypto::append_lv(arg, rng.bytes(rng.uniform(64)));
        (void)classify(d, [&] { return node.control(kLedgerAdmit, arg); });
        break;
      }
      default: {  // truncated admit args: Reader must throw, app survive
        cov_.ecall("core", core::kFnControl);
        (void)classify(d, [&] {
          return node.control(kLedgerAdmit, rng.bytes(rng.uniform(8)));
        });
        break;
      }
    }
    if (rng.uniform(16) == 0) ledger_->sim.run();
  }

  void shard_iteration(crypto::Drbg& rng, Digest& d) {
    ledger_ensure();
    core::EnclaveNode& node = ledger_node(0);
    const netsim::NodeId trusted_peer = ledger_node(1).id();
    // Hostile frame construction: start from a valid encoding, then
    // mutate — or go fully random within the 0xE0..0xEF tag range.
    Bytes frame;
    switch (rng.uniform(6)) {
      case 0:
        frame = core::encode_shard_append(
            static_cast<uint32_t>(rng.uniform(4)), rng.next_u64(),
            rng.next_u64(), static_cast<uint32_t>(rng.next_u64()),
            rng.next_u64(), rng.bytes(rng.uniform(64)));
        break;
      case 1: {  // join with a version vector that may be truncated
        core::VersionVector vv;
        for (uint64_t i = rng.uniform(4); i > 0; --i) {
          vv.observe(static_cast<uint32_t>(rng.uniform(8)), rng.next_u64());
        }
        frame = core::encode_shard_join(static_cast<uint32_t>(rng.uniform(4)),
                                        vv);
        break;
      }
      case 2: {  // snapshot with hostile vector and random state
        core::VersionVector vv;
        vv.observe(static_cast<uint32_t>(rng.uniform(4)), rng.next_u64());
        frame = core::encode_shard_snapshot(
            static_cast<uint32_t>(rng.uniform(4)), vv,
            rng.bytes(rng.uniform(128)));
        break;
      }
      case 3:  // app frame with hostile ttl/target
        frame = core::encode_shard_app(
            static_cast<uint32_t>(rng.uniform(4)),
            static_cast<uint32_t>(rng.next_u64()),
            static_cast<uint8_t>(rng.uniform(256)), rng.bytes(rng.uniform(64)));
        break;
      case 4: {  // hand-rolled duplicate-entry version vector (join shape)
        Bytes vv;
        crypto::append_u32(vv, 2);
        crypto::append_u32(vv, 1);
        crypto::append_u64(vv, rng.next_u64());
        crypto::append_u32(vv, 1);  // duplicate shard id
        crypto::append_u64(vv, rng.uniform(4));
        frame.push_back(core::kShardJoinReq);
        crypto::append_u32(frame, static_cast<uint32_t>(rng.uniform(4)));
        crypto::append_lv(frame, vv);
        break;
      }
      default:  // raw bytes under a reserved or known shard tag
        frame.push_back(static_cast<uint8_t>(0xE0 + rng.uniform(16)));
        crypto::append(frame, rng.bytes(rng.uniform(96)));
        break;
    }
    // Post-mutation pass over the assembled frame half the time.
    switch (rng.uniform(6)) {
      case 0:
        frame = sgx::adversary::bit_flip(frame, rng.next_u64());
        break;
      case 1:
        frame = sgx::adversary::truncate(frame, rng.uniform(frame.size() + 1));
        break;
      case 2:
        frame = sgx::adversary::extend(frame, 1 + rng.uniform(32),
                                       static_cast<uint8_t>(rng.uniform(256)));
        break;
      default:
        break;
    }
    // Inject from the attested peer (past the measurement gate, onto the
    // codec) or from a random peer id (exercising the gate itself).
    const uint32_t peer =
        rng.uniform(4) == 0
            ? static_cast<uint32_t>(rng.uniform(1u << 16))
            : trusted_peer;
    Bytes arg;
    crypto::append_u32(arg, peer);
    crypto::append_lv(arg, frame);
    cov_.ecall("core", core::kFnControl);
    (void)classify(d, [&] { return node.control(kLedgerInjectFrame, arg); });
    if (rng.uniform(8) == 0) ledger_->sim.run();
  }

  const Options& opt_;
  Coverage& cov_;
  std::vector<Finding>& findings_;
  sgx::adversary::OcallSnoop snoop_;
  sgx::adversary::SealedBlobVault vault_;
  uint64_t keys_tracked_ = 0;
  uint64_t keys_skipped_ = 0;

  std::unique_ptr<EchoWorld> echo_;
  uint64_t echo_worlds_ = 0;
  uint64_t echo_iters_ = 0;
  std::unique_ptr<PacketWorld> packet_;
  std::unique_ptr<LedgerWorld> ledger_;
  uint64_t ledger_worlds_ = 0;
  uint64_t ledger_iters_ = 0;
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct RunResult {
  uint64_t iterations_run = 0;
  bool replay_ok = true;
  bool coverage_ok = true;
  std::vector<std::string> coverage_missing;
  std::vector<Finding> findings;
  Coverage coverage;
  uint64_t keys_tracked = 0;
  uint64_t keys_skipped = 0;
  uint64_t payloads_scanned = 0;
  uint64_t fleet_events = 0;
  double elapsed = 0;
};

RunResult run_campaign(const Options& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  RunResult res;
  Campaign campaign(opt, res.coverage, res.findings);

  std::vector<uint64_t> digests;
  digests.reserve(std::min<uint64_t>(opt.iters, opt.replay_prefix) + 1);
  digests.push_back(campaign.preamble());

  const uint64_t limit = opt.repro ? opt.repro_iter + 1 : opt.iters;
  for (uint64_t i = 0; i < limit; ++i) {
    const uint64_t before = res.findings.size();
    const uint64_t h = campaign.iteration(i);
    if (digests.size() <= opt.replay_prefix) digests.push_back(h);
    for (size_t f = before; f < res.findings.size(); ++f) {
      res.findings[f].iter = i;
    }
    ++res.iterations_run;
    if (opt.max_seconds > 0 && (i & 0xff) == 0xff) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (elapsed > opt.max_seconds) break;
    }
  }
  campaign.scan_exports();
  res.keys_tracked = campaign.keys_tracked();
  res.keys_skipped = campaign.keys_skipped();
  res.payloads_scanned = campaign.payloads_scanned();
#if TENET_TELEMETRY_ENABLED
  // The hostile campaign drove frames straight through the event-emitting
  // handlers; a wedged ring (broken seq ordering, eviction arithmetic,
  // per-type totals) is a finding, not silent skew.
  res.fleet_events = telemetry::event_log().total();
  if (!telemetry::event_log().consistent()) {
    res.findings.push_back(Finding{
        0, "events", "fleet-event ring inconsistent after hostile campaign"});
  }
#endif

  // Replay determinism check: a fresh campaign over the digest prefix must
  // reproduce it bit-for-bit. (Findings from the replay run are folded
  // into a scratch list — they are duplicates by construction.)
  if (!opt.repro) {
    Coverage replay_cov;
    std::vector<Finding> replay_findings;
    Campaign replay(opt, replay_cov, replay_findings);
    if (replay.preamble() != digests[0]) res.replay_ok = false;
    const uint64_t prefix =
        std::min<uint64_t>(res.iterations_run, digests.size() - 1);
    for (uint64_t i = 0; i < prefix && res.replay_ok; ++i) {
      if (replay.iteration(i) != digests[i + 1]) {
        res.replay_ok = false;
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "replay digest diverged at iteration %" PRIu64, i);
        res.findings.push_back(Finding{i, "replay", buf});
      }
    }
  }

  res.coverage_missing = res.coverage.missing();
  res.coverage_ok = res.coverage_missing.empty();
  res.elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void write_corpus(const Options& opt, const RunResult& res) {
  if (opt.corpus_dir.empty() || res.findings.empty()) return;
  std::filesystem::create_directories(opt.corpus_dir);
  for (const Finding& f : res.findings) {
    char name[128];
    std::snprintf(name, sizeof name, "fail_%" PRIu64 "_%" PRIu64 ".txt",
                  opt.seed, f.iter);
    std::ofstream out(std::filesystem::path(opt.corpus_dir) / name);
    out << opt.seed << " " << f.iter << " " << f.target << " "
        << f.description << "\n"
        << "# repro: boundary_fuzz --seed " << opt.seed << " --repro "
        << opt.seed << ":" << f.iter << (opt.taint ? " --taint" : "")
        << (opt.inject_leak ? " --inject-leak" : "") << "\n";
  }
}

/// Replays every failing seed recorded in the corpus before the main
/// campaign: regressions caught by an earlier nightly stay caught.
int replay_corpus(const Options& opt) {
  if (opt.corpus_dir.empty() ||
      !std::filesystem::exists(opt.corpus_dir)) {
    return 0;
  }
  int still_failing = 0;
  std::vector<std::filesystem::path> entries;
  for (const auto& entry :
       std::filesystem::directory_iterator(opt.corpus_dir)) {
    if (entry.path().filename().string().rfind("fail_", 0) == 0) {
      entries.push_back(entry.path());
    }
  }
  std::sort(entries.begin(), entries.end());
  for (const auto& path : entries) {
    std::ifstream in(path);
    uint64_t seed = 0, iter = 0;
    if (!(in >> seed >> iter)) continue;
    Options ropt = opt;
    ropt.seed = seed;
    ropt.repro = true;
    ropt.repro_iter = iter;
    const RunResult r = run_campaign(ropt);
    bool failing = false;
    for (const Finding& f : r.findings) {
      if (f.iter == iter) failing = true;
    }
    std::fprintf(stderr, "corpus %s: %s\n", path.filename().c_str(),
                 failing ? "STILL FAILING" : "fixed");
    if (failing) ++still_failing;
  }
  return still_failing;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: boundary_fuzz [--seed N] [--iters N] [--max-seconds S]\n"
      "                     [--corpus-dir DIR] [--repro SEED:ITER] [--json]\n"
      "                     [--taint] [--inject-leak]\n");
  return 2;
}

}  // namespace
}  // namespace tenet

int main(int argc, char** argv) {
  using namespace tenet;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (!v) return usage();
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--iters") {
      const char* v = next();
      if (!v) return usage();
      opt.iters = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-seconds") {
      const char* v = next();
      if (!v) return usage();
      opt.max_seconds = std::strtod(v, nullptr);
    } else if (arg == "--corpus-dir") {
      const char* v = next();
      if (!v) return usage();
      opt.corpus_dir = v;
    } else if (arg == "--repro") {
      const char* v = next();
      if (!v) return usage();
      uint64_t seed = 0, iter = 0;
      if (std::sscanf(v, "%" PRIu64 ":%" PRIu64, &seed, &iter) != 2) {
        return usage();
      }
      opt.seed = seed;
      opt.repro = true;
      opt.repro_iter = iter;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--taint") {
      opt.taint = true;
    } else if (arg == "--inject-leak") {
      opt.taint = true;  // the leak check is a taint-mode self-test
      opt.inject_leak = true;
    } else {
      return usage();
    }
  }

  // Live instrumentation on for every campaign: the event-path coverage
  // assertion reads the global fleet-event ring, and taint mode scans the
  // populated telemetry/trace exports. Campaign digests fold only
  // boundary-call results, so this does not perturb replay determinism.
  telemetry::set_enabled(true);

  const int corpus_failures = opt.repro ? 0 : replay_corpus(opt);
  const RunResult res = run_campaign(opt);

  // With --inject-leak the deliberately leaky build MUST be caught; zero
  // taint findings means the detector is broken.
  bool leak_check_ok = true;
  size_t taint_findings = 0;
  for (const Finding& f : res.findings) {
    if (f.target == "taint") ++taint_findings;
  }
  if (opt.inject_leak && taint_findings == 0) leak_check_ok = false;

  const size_t real_findings =
      opt.inject_leak ? res.findings.size() - taint_findings
                      : res.findings.size();
  const bool ok = res.replay_ok && res.coverage_ok && leak_check_ok &&
                  real_findings == 0 && corpus_failures == 0;

  if (!opt.inject_leak) write_corpus(opt, res);

  if (opt.json) {
    std::printf("{\n  \"seed\": %" PRIu64 ",\n  \"iterations\": %" PRIu64
                ",\n  \"elapsed_seconds\": %.3f,\n",
                opt.seed, res.iterations_run, res.elapsed);
    std::printf("  \"replay_ok\": %s,\n  \"coverage_ok\": %s,\n",
                res.replay_ok ? "true" : "false",
                res.coverage_ok ? "true" : "false");
    std::printf("  \"ecalls_covered\": %zu,\n  \"ocalls_covered\": %zu,\n",
                res.coverage.ecalls.size(), res.coverage.ocalls.size());
    std::printf("  \"fleet_events\": %" PRIu64 ",\n", res.fleet_events);
    std::printf("  \"taint\": {\"enabled\": %s, \"keys_tracked\": %" PRIu64
                ", \"keys_beyond_cap\": %" PRIu64
                ", \"payloads_scanned\": %" PRIu64
                ", \"hits\": %zu},\n",
                opt.taint ? "true" : "false", res.keys_tracked,
                res.keys_skipped, res.payloads_scanned, taint_findings);
    std::printf("  \"leak_check_ok\": %s,\n", leak_check_ok ? "true" : "false");
    std::printf("  \"findings\": [");
    for (size_t i = 0; i < res.findings.size(); ++i) {
      const Finding& f = res.findings[i];
      std::printf("%s\n    {\"iter\": %" PRIu64
                  ", \"target\": \"%s\", \"description\": \"%s\"}",
                  i ? "," : "", f.iter, json_escape(f.target).c_str(),
                  json_escape(f.description).c_str());
    }
    std::printf("%s],\n  \"ok\": %s\n}\n", res.findings.empty() ? "" : "\n  ",
                ok ? "true" : "false");
  } else {
    std::printf("boundary_fuzz: seed=%" PRIu64 " iterations=%" PRIu64
                " elapsed=%.2fs\n",
                opt.seed, res.iterations_run, res.elapsed);
    std::printf("  replay: %s\n", res.replay_ok ? "byte-identical" : "DIVERGED");
    std::printf("  coverage: %zu ecall fns, %zu ocall codes, %" PRIu64
                " fleet events%s\n",
                res.coverage.ecalls.size(), res.coverage.ocalls.size(),
                res.fleet_events, res.coverage_ok ? "" : " — INCOMPLETE:");
    for (const std::string& m : res.coverage_missing) {
      std::printf("    missing %s\n", m.c_str());
    }
    if (opt.taint) {
      std::printf("  taint: %" PRIu64 " keys tracked (%" PRIu64
                  " beyond cap), %" PRIu64 " payloads scanned, %zu hits\n",
                  res.keys_tracked, res.keys_skipped, res.payloads_scanned,
                  taint_findings);
      if (opt.inject_leak) {
        std::printf("  leak self-check: %s\n",
                    leak_check_ok ? "detector caught the injected leak"
                                  : "DETECTOR MISSED THE INJECTED LEAK");
      }
    }
    for (const Finding& f : res.findings) {
      // Under --inject-leak, taint hits are the expected positive-control
      // outcome, not failures — summarized above instead of listed.
      if (opt.inject_leak && f.target == "taint") continue;
      std::printf("  FINDING iter=%" PRIu64 " [%s] %s\n    repro: "
                  "boundary_fuzz --seed %" PRIu64 " --repro %" PRIu64
                  ":%" PRIu64 "%s\n",
                  f.iter, f.target.c_str(), f.description.c_str(), opt.seed,
                  opt.seed, f.iter, opt.taint ? " --taint" : "");
    }
    std::printf("boundary_fuzz: %s\n", ok ? "OK" : "FAILED");
  }
  return ok ? 0 : 1;
}
