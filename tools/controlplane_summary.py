#!/usr/bin/env python3
"""Summarizes a bench_controlplane --json run for the nightly step summary.

Usage:
    python3 tools/controlplane_summary.py BENCH_JSON

BENCH_JSON is the JSON object printed by `bench_controlplane --json`. The
shard sweep is rendered as a Markdown table (modeled controller throughput
scale at 1/2/4/8 shards over the same 128-AS deployment) followed by the
chaos drill verdict: kill-one-shard-per-epoch rounds, admitted-state loss,
the same-seed replay determinism pin, and the worst-epoch heal latency.
Exits non-zero if any gate the bench itself enforces reads as failed in
the JSON — the >= 6x scale floor, ground-truth table equality, zero lost
admissions, replay determinism, or the heal-latency cap — so the nightly
leg fails loudly on a protocol break, not just on an ASan report.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    d = json.load(open(sys.argv[1]))

    print("### control-plane shard curve (bench_controlplane)")
    print(f"- deployment: {d['n_ases']} ASes, sweep to "
          f"{d['shards_top']} shards (3 replicas each)")
    print()
    print("| shards | throughput scale |")
    print("|-------:|-----------------:|")
    print("| 1 | 1.00 |")
    print(f"| 2 | {d['scale_x2']:.2f} |")
    print(f"| 4 | {d['scale_x4']:.2f} |")
    print(f"| {d['shards_top']} | {d['scale_x8']:.2f} |")
    print()
    floor = "met" if d["scale_floor_met"] else "MISSED"
    print(f"- scale floor (>= 6x at {d['shards_top']} shards): **{floor}**")
    truth = "yes" if d["tables_match_ground_truth"] else "NO"
    print(f"- every sweep point matches the unsharded ground truth: {truth}")
    print()
    print("### chaos drill (kill one shard per epoch)")
    print(f"- epochs: {d['chaos_epochs']}, "
          f"lost admissions: {d['chaos_lost_admissions']}")
    replay = "equal" if d["chaos_replay_equal"] else "DIVERGED"
    print(f"- same-seed replay: {replay} "
          f"(fold checksum {d['chaos_checksum32']})")
    heal = "within cap" if d["heal_cap_met"] else "OVER CAP"
    print(f"- worst-epoch heal latency: {d['heal_max_ms']:.2f} ms ({heal})")

    gates = {
        "scale_floor_met": d["scale_floor_met"] == 1,
        "tables_match_ground_truth": d["tables_match_ground_truth"] == 1,
        "chaos_lost_admissions": d["chaos_lost_admissions"] == 0,
        "chaos_replay_equal": d["chaos_replay_equal"] == 1,
        "heal_cap_met": d["heal_cap_met"] == 1,
    }
    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print()
        print(f"**GATES FAILED:** {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
