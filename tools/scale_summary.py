#!/usr/bin/env python3
"""Summarizes a bench_scale --json run for the nightly step summary.

Usage:
    python3 tools/scale_summary.py BENCH_JSON [TIME_V_FILE]

BENCH_JSON is the JSON object printed by `bench_scale --json` (any size
variant). TIME_V_FILE, when given, is the stderr of `/usr/bin/time -v`
wrapped around the bench run; its "Maximum resident set size" line is
reported as the process-wide peak RSS next to the bench's own post-flood
sample. Exits non-zero if the run recorded an engine divergence
(engines_equal != 1) so the nightly leg fails loudly on a determinism
break, not just a slow run.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    d = json.load(open(sys.argv[1]))
    rss_kb = 0
    if len(sys.argv) > 2:
        for line in open(sys.argv[2]):
            if "Maximum resident" in line:
                rss_kb = int(line.split()[-1])
    print("### scale curve (bench_scale)")
    print(
        f"- tor: {d['tor_relays']} relays, {d['tor_events']} events, "
        f"{d['tor_events_per_sec']:.0f} ev/s "
        f"({d['tor_speedup_x']}x vs reference engine)"
    )
    print(
        f"- as flood: {d['as_ases']} ASes, {d['as_routes']} routes, "
        f"{d['as_events_per_sec']:.0f} ev/s, "
        f"post-flood RSS {d['as_peak_rss_mb']} MB"
    )
    if rss_kb:
        print(f"- process peak RSS: {rss_kb / 1024:.1f} MB")
    if d["engines_equal"] != 1:
        print(
            "ENGINE DIVERGENCE: calendar-queue and reference engines "
            "disagree on this workload",
            file=sys.stderr,
        )
        return 1
    print("- engines identical: yes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
