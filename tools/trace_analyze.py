#!/usr/bin/env python3
"""Reconstruct and analyze causal span DAGs from a tenet Chrome trace.

The C++ tracer (src/telemetry/trace.h) exports Chrome-trace JSON where
every SpanScope event carries ``args: {trace, span, parent, flags, self,
incl}`` — the causal context propagated across netsim messages, timers,
enclave transitions and switchless rings (DESIGN.md §11), plus exact
cost-model deltas charged while the span was open. This tool turns that
export back into per-request answers:

  * ``--list``          one line per trace (root, span count, wall time)
  * default             per-trace critical path + per-phase attribution
                        table (transitions / crypto / paging / network /
                        queueing / compute, plus the control-plane phases
                        replication / state-transfer / failover emitted by
                        the sharded control plane)
  * ``--shards``        per-shard table aggregated over spans tagged with
                        a shard id (args.shard): span counts, self cycles,
                        and time per control-plane phase
  * ``--collapsed F``   collapsed-stack output (``a;b;c <weight>``, weight
                        = self cycles) consumable by flamegraph.pl /
                        speedscope / inferno
  * ``--self-check``    verify DAG invariants (single connected root per
                        trace, self <= incl, span cost sums reproduce the
                        exporter's grand totals exactly, critical-path
                        coverage) and exit non-zero on any violation

Cycle accounting follows the paper's formula: SGX instructions cost 10K
cycles each, normal instructions convert at IPC 1.8.
"""

import argparse
import json
import sys

CYCLES_PER_SGX_INSTR = 10_000
IPC = 1.8

COST_KEYS = ("sgx", "priv", "norm", "crypto", "paging", "trans")

FLAG_RETX = 1
FLAG_DEFERRED = 2

# Attribution phases, in table order. The last three are control-plane
# phases: spans in these categories classify whole (the cross-shard hop
# *is* the phase — splitting its crypto out would hide what the time was
# spent achieving), so together with the cost-split phases they still tile
# the critical path exactly.
CONTROL_PHASES = ("replication", "state_transfer", "failover")
PHASES = ("network", "transitions", "crypto", "paging", "compute",
          "queueing") + CONTROL_PHASES


def zero_cost():
    return {k: 0 for k in COST_KEYS}


class Span:
    __slots__ = ("name", "cat", "ts", "dur", "trace", "span", "parent",
                 "flags", "shard", "self_cost", "incl_cost", "children")

    def __init__(self, ev):
        args = ev.get("args", {})
        self.name = ev.get("name", "?")
        self.cat = ev.get("cat", "?")
        self.ts = int(ev.get("ts", 0))
        self.dur = int(ev.get("dur", 0))
        self.trace = int(args.get("trace", 0))
        self.span = int(args.get("span", 0))
        self.parent = int(args.get("parent", 0))
        self.flags = int(args.get("flags", 0))
        # Shard id for control-plane spans (absent on unsharded spans).
        self.shard = args.get("shard")
        self.self_cost = dict(zero_cost(), **args.get("self", {}))
        # incl is omitted by the exporter when it equals self.
        incl = args.get("incl")
        self.incl_cost = (dict(zero_cost(), **incl) if incl is not None
                          else dict(self.self_cost))
        self.children = []

    @property
    def end(self):
        return self.ts + self.dur

    def label(self):
        return f"{self.cat}:{self.name}"


def cycles_of(cost):
    """Paper §5 cycle estimate for one cost vector."""
    normal = cost["norm"] + cost["crypto"] + cost["paging"]
    return cost["sgx"] * CYCLES_PER_SGX_INSTR + normal / IPC


def load(path):
    """Returns (all span events, otherData totals or None)."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome-trace JSON document")
    spans = [Span(ev) for ev in doc["traceEvents"]
             if isinstance(ev.get("args"), dict) and "span" in ev["args"]]
    other = doc.get("otherData")
    return spans, other


def group_traces(spans):
    """trace_id -> list of spans, nonzero traces only, span-id order."""
    traces = {}
    for s in spans:
        if s.trace != 0:
            traces.setdefault(s.trace, []).append(s)
    for spans_of in traces.values():
        spans_of.sort(key=lambda s: s.span)
    return dict(sorted(traces.items()))


def build_dag(trace_spans):
    """Fills children lists; returns (by_id, roots). A root is a span
    whose parent is outside the trace (0 or an ambient span)."""
    by_id = {s.span: s for s in trace_spans}
    roots = []
    for s in trace_spans:
        s.children = []
    for s in trace_spans:
        parent = by_id.get(s.parent)
        if parent is None:
            roots.append(s)
        else:
            parent.children.append(s)
    return by_id, roots


def reachable_from(roots):
    seen = set()
    stack = list(roots)
    while stack:
        s = stack.pop()
        if s.span in seen:
            continue
        seen.add(s.span)
        stack.extend(s.children)
    return seen


def critical_path(trace_spans, by_id):
    """The causal chain ending at the span that finishes last, walked back
    through parent edges to the trace root. Returned root-first."""
    leaf = max(trace_spans, key=lambda s: (s.end, s.span))
    chain = [leaf]
    while chain[-1].parent in by_id:
        chain.append(by_id[chain[-1].parent])
    chain.reverse()
    return chain


def classify_gap(nxt):
    """A gap on the critical path before span `nxt` is time the request
    spent not executing: in flight on a link if the next thing that
    happened was a delivery, queued (timer backoff, deferred ring,
    scheduling) otherwise."""
    if nxt.cat == "net":
        return "network"
    return "queueing"


def split_span_segment(span, duration, phases):
    """Splits `duration` us of span-covered critical-path time across
    phases proportionally to the span's self-cost cycles; zero-cost spans
    classify whole by category. Control-plane spans (replication /
    state_transfer / failover) always classify whole — their category names
    what the time accomplished, which is the question the fleet report
    asks."""
    if span.cat in CONTROL_PHASES:
        phases[span.cat] += duration
        return
    self_cycles = {
        "transitions": span.self_cost["sgx"] * CYCLES_PER_SGX_INSTR,
        "crypto": span.self_cost["crypto"] / IPC,
        "paging": span.self_cost["paging"] / IPC,
        "compute": span.self_cost["norm"] / IPC,
    }
    total = sum(self_cycles.values())
    if total <= 0:
        phases["network" if span.cat == "net" else "compute"] += duration
        return
    for phase, cyc in self_cycles.items():
        phases[phase] += duration * (cyc / total)


def attribute(chain):
    """Tiles [chain start, leaf end] into phase-classified time. Returns
    (phase -> us, total us). Complete by construction: phase times sum to
    the end-to-end virtual latency exactly."""
    phases = {p: 0.0 for p in PHASES}
    start = chain[0].ts
    end = chain[-1].end
    total = end - start
    cursor = start
    for i, s in enumerate(chain):
        if s.ts > cursor:
            phases[classify_gap(s)] += s.ts - cursor
            cursor = s.ts
        nxt = chain[i + 1] if i + 1 < len(chain) else None
        seg_end = min(s.end, nxt.ts) if nxt is not None else s.end
        seg_end = min(seg_end, end)
        if seg_end > cursor:
            split_span_segment(s, seg_end - cursor, phases)
            cursor = seg_end
    return phases, total


def trace_cost(trace_spans):
    tot = zero_cost()
    for s in trace_spans:
        for k in COST_KEYS:
            tot[k] += s.self_cost[k]
    return tot


def collapsed_stacks(traces):
    """flamegraph.pl input: one 'a;b;c weight' line per unique DAG path,
    weight = the leaf span's self cycles (rounded, zero-weight dropped)."""
    stacks = {}

    def walk(span, prefix):
        path = prefix + [span.label()]
        weight = round(cycles_of(span.self_cost))
        if weight > 0:
            key = ";".join(path)
            stacks[key] = stacks.get(key, 0) + weight
        for child in sorted(span.children, key=lambda s: s.span):
            walk(child, path)

    for trace_spans in traces.values():
        by_id, roots = build_dag(trace_spans)
        for root in roots:
            walk(root, [])
    return "".join(f"{k} {v}\n" for k, v in sorted(stacks.items()))


def fmt_us(us):
    if us >= 1000:
        return f"{us / 1000:.3f} ms"
    return f"{us:.1f} us"


def shard_table(spans, out=sys.stdout):
    """Aggregates spans carrying a shard tag into a per-shard table: span
    count, self cycles, and wall time per control-plane phase. Untagged
    spans are ignored — the table answers "where did each shard spend its
    control-plane time", not "where did every cycle go" (that is the
    default report)."""
    per = {}
    for s in spans:
        if s.shard is None:
            continue
        row = per.setdefault(int(s.shard), {
            "spans": 0, "cycles": 0.0,
            **{p: 0.0 for p in CONTROL_PHASES}})
        row["spans"] += 1
        row["cycles"] += cycles_of(s.self_cost)
        if s.cat in CONTROL_PHASES:
            row[s.cat] += s.dur
    if not per:
        print("no shard-tagged spans found", file=out)
        return per
    header = (f"{'shard':>5}  {'spans':>6}  {'self cycles':>12}  "
              + "  ".join(f"{p:>14}" for p in CONTROL_PHASES))
    print(header, file=out)
    for shard in sorted(per):
        row = per[shard]
        print(f"{shard:>5}  {row['spans']:>6}  {row['cycles']:>12.0f}  "
              + "  ".join(f"{fmt_us(row[p]):>14}" for p in CONTROL_PHASES),
              file=out)
    return per


def print_trace_report(tid, trace_spans, out=sys.stdout):
    by_id, roots = build_dag(trace_spans)
    chain = critical_path(trace_spans, by_id)
    phases, total = attribute(chain)
    root = roots[0] if roots else chain[0]
    retx = sum(1 for s in trace_spans if s.flags & FLAG_RETX)
    deferred = sum(1 for s in trace_spans if s.flags & FLAG_DEFERRED)
    cost = trace_cost(trace_spans)

    print(f"trace {tid}: {root.label()}  "
          f"spans={len(trace_spans)} retx={retx} deferred={deferred}",
          file=out)
    print(f"  end-to-end: {fmt_us(total)}  "
          f"cycles={cycles_of(cost):.0f} "
          f"(sgx={cost['sgx']} transitions={cost['trans']} "
          f"crypto={cost['crypto']} paging={cost['paging']} "
          f"normal={cost['norm']})", file=out)
    print(f"  critical path ({len(chain)} spans): "
          + " -> ".join(s.label() for s in chain), file=out)
    print("  attribution:", file=out)
    for phase in PHASES:
        us = phases[phase]
        pct = 100.0 * us / total if total > 0 else 0.0
        if us <= 0:
            continue
        print(f"    {phase:<12} {fmt_us(us):>12}  {pct:6.2f}%", file=out)
    return phases, total


def self_check(path, min_coverage, out=sys.stdout):
    """Verifies the tracing invariants; returns a list of violations."""
    errors = []
    spans, other = load(path)
    traces = group_traces(spans)

    if not traces:
        errors.append("no traces found (no span carries a nonzero trace id)")

    # 1. One connected DAG per trace.
    for tid, trace_spans in traces.items():
        by_id, roots = build_dag(trace_spans)
        if len(roots) != 1:
            errors.append(
                f"trace {tid}: {len(roots)} roots "
                f"({[s.label() for s in roots]}), expected exactly 1")
            continue
        seen = reachable_from(roots)
        if len(seen) != len(trace_spans):
            orphans = [s.label() for s in trace_spans if s.span not in seen]
            errors.append(
                f"trace {tid}: {len(orphans)} spans unreachable from root: "
                f"{orphans[:5]}")

    # 2. self <= incl, component-wise, every span.
    for s in spans:
        for k in COST_KEYS:
            if s.self_cost[k] > s.incl_cost[k]:
                errors.append(
                    f"span {s.span} ({s.label()}): self.{k}="
                    f"{s.self_cost[k]} > incl.{k}={s.incl_cost[k]}")

    # 3. Exact accounting: sum of all span selfs + untraced == totals.
    if other and "costTotal" in other:
        total = dict(zero_cost(), **other["costTotal"])
        untraced = dict(zero_cost(), **other.get("costUntraced", {}))
        summed = zero_cost()
        for s in spans:
            for k in COST_KEYS:
                summed[k] += s.self_cost[k]
        for k in COST_KEYS:
            if summed[k] + untraced[k] != total[k]:
                errors.append(
                    f"cost accounting leak in '{k}': "
                    f"sum(span self)={summed[k]} + untraced={untraced[k]} "
                    f"!= total={total[k]}")

    # 4. Critical-path coverage on substantial traces: transitions +
    #    crypto + network must explain >= min_coverage% of the latency.
    for tid, trace_spans in traces.items():
        by_id, _ = build_dag(trace_spans)
        chain = critical_path(trace_spans, by_id)
        phases, total = attribute(chain)
        if total < 1000:  # < 1 ms of virtual time: control-query noise
            continue
        covered = (phases["network"] + phases["transitions"] +
                   phases["crypto"] +
                   sum(phases[p] for p in CONTROL_PHASES))
        pct = 100.0 * covered / total
        if pct < min_coverage:
            errors.append(
                f"trace {tid}: network+transitions+crypto covers "
                f"{pct:.2f}% of {fmt_us(total)}, below {min_coverage}% "
                f"(queueing={fmt_us(phases['queueing'])}, "
                f"compute={fmt_us(phases['compute'])})")

    n_spans = len(spans)
    print(f"self-check: {len(traces)} traces, {n_spans} spans, "
          f"{len(errors)} violations", file=out)
    for e in errors:
        print(f"  FAIL: {e}", file=out)
    if not errors:
        print("  all invariants hold (connectivity, self<=incl, "
              "exact cost sums, critical-path coverage)", file=out)
    return errors


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Analyze a tenet causal trace (Chrome-trace JSON).")
    ap.add_argument("trace", help="trace file written by --trace-out / "
                                  "telemetry::write_chrome_trace")
    ap.add_argument("--list", action="store_true",
                    help="list traces, one line each")
    ap.add_argument("--trace-id", type=int, default=None,
                    help="restrict the report to one trace id")
    ap.add_argument("--shards", action="store_true",
                    help="per-shard control-plane table (spans tagged "
                         "with args.shard)")
    ap.add_argument("--collapsed", metavar="FILE", default=None,
                    help="write collapsed-stack flamegraph input "
                         "(use '-' for stdout)")
    ap.add_argument("--self-check", action="store_true",
                    help="verify DAG/cost invariants; non-zero exit on "
                         "violation")
    ap.add_argument("--min-coverage", type=float, default=95.0,
                    help="self-check: required critical-path coverage "
                         "percent (default 95)")
    args = ap.parse_args(argv)

    if args.self_check:
        errors = self_check(args.trace, args.min_coverage)
        return 1 if errors else 0

    spans, _ = load(args.trace)
    traces = group_traces(spans)
    if args.trace_id is not None:
        if args.trace_id not in traces:
            print(f"trace {args.trace_id} not found "
                  f"(have: {sorted(traces)})", file=sys.stderr)
            return 1
        traces = {args.trace_id: traces[args.trace_id]}

    if args.list:
        for tid, trace_spans in traces.items():
            by_id, roots = build_dag(trace_spans)
            chain = critical_path(trace_spans, by_id)
            root = roots[0] if roots else chain[0]
            total = chain[-1].end - chain[0].ts
            print(f"trace {tid:>4}  {root.label():<28} "
                  f"spans={len(trace_spans):>4}  wall={fmt_us(total)}")
        return 0

    if args.shards:
        shard_table(spans)
        return 0

    if args.collapsed is not None:
        body = collapsed_stacks(traces)
        if args.collapsed == "-":
            sys.stdout.write(body)
        else:
            with open(args.collapsed, "w", encoding="utf-8") as f:
                f.write(body)
            print(f"wrote {len(body.splitlines())} stacks "
                  f"to {args.collapsed}")
        return 0

    first = True
    for tid, trace_spans in traces.items():
        if not first:
            print()
        first = False
        print_trace_report(tid, trace_spans)
    return 0


if __name__ == "__main__":
    sys.exit(main())
