#!/usr/bin/env python3
"""Summarizes a bench_dataplane --json run for the nightly step summary.

Usage:
    python3 tools/dataplane_summary.py BENCH_JSON [TIME_V_FILE]

BENCH_JSON is the JSON object printed by `bench_dataplane --json` (any
size variant). TIME_V_FILE, when given, is the stderr of `/usr/bin/time
-v` wrapped around the bench run; its "Maximum resident set size" line is
reported as the process-wide peak RSS next to the bench's own per-point
samples. The session sweep is rendered as a Markdown table with the
EPC-pressure knee called out (the first point whose cold tier exceeds the
32k-page EPC and starts taking ELDU reloads per resume). Exits non-zero
if the run recorded a batched-vs-scalar divergence or missed the >=3x
speedup floor, so the nightly leg fails loudly on a protocol or perf
break, not just a slow run.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    d = json.load(open(sys.argv[1]))
    rss_kb = 0
    if len(sys.argv) > 2:
        for line in open(sys.argv[2]):
            if "Maximum resident" in line:
                rss_kb = int(line.split()[-1])

    print("### dataplane curve (bench_dataplane)")
    print(
        f"- record duel @{d['duel_record_bytes']}B: "
        f"{d['legacy_records_per_sec']:.0f} -> "
        f"{d['batched_records_per_sec']:.0f} records/s "
        f"({d['duel_speedup_x']}x, batch width {d['batch_width']})"
    )
    print()
    print(
        "| sessions | records/s | cycles/byte | hot hits | resumes "
        "| EPC pages | ELDU reloads | RSS MB |"
    )
    print("|---:|---:|---:|---:|---:|---:|---:|---:|")
    knee = None
    for p in d.get("curve", []):
        print(
            f"| {p['sessions']} | {p['records_per_sec']:.0f} "
            f"| {p['cycles_per_byte']} | {p['hot_hits']} | {p['resumes']} "
            f"| {p['epc_pages']} | {p['epc_reloads']} | {p['rss_mb']} |"
        )
        if knee is None and p["epc_reloads"] > 0:
            knee = p
    print()
    if knee is not None:
        print(
            f"- EPC-pressure knee at {knee['sessions']} sessions: "
            f"{knee['epc_pages']} cold-tier pages exceed the EPC, "
            f"{knee['epc_reloads']} ELDU reloads "
            f"({knee['cycles_per_byte']} cycles/byte)"
        )
    else:
        print("- EPC-pressure knee: not reached (cold tier fits in the EPC)")
    if rss_kb:
        print(f"- process peak RSS: {rss_kb / 1024:.1f} MB")

    if d["batch_mismatch_records"] != 0:
        print(
            "BATCHED STREAM DIVERGES: batched and scalar record bytes "
            "disagree",
            file=sys.stderr,
        )
        return 1
    if d["speedup_floor_met"] != 1:
        print(
            f"SPEEDUP FLOOR MISSED: {d['duel_speedup_x']}x < 3x at batch "
            f"width {d['batch_width']}",
            file=sys.stderr,
        )
        return 1
    print("- batched stream byte-identical to scalar: yes (>=3x floor met)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
