#!/usr/bin/env python3
"""Ocall taint lint: prove no key material crosses the enclave boundary.

Two passes, both wired into CI (scripts/ci.sh lint):

Static pass (--static): scans every C++ file for *secret-bearing
expressions* (seal/report/session key derivations, DH shared secrets,
HKDF outputs) appearing inside a *boundary sink* — an ocall payload, a
telemetry counter/gauge/span label, or a trace-export call. The enclave
model only protects what stays inside EPC; any of these sinks hands the
bytes to the untrusted host, so a secret identifier inside one is a leak
by construction, whatever the surrounding logic does. Findings in src/
are hard failures; findings in tests/, bench/, tools/ and examples/ are
warnings (fixtures there leak on purpose — see LeakyEchoApp). A
deliberate sink can be annotated on the sink line or just above it:

    // taint-lint: allow(<why this is not a leak>)

Dynamic pass (--dynamic): drives the instrumented build via
tools/boundary_fuzz. Every key the platform derives is registered with
the global taint tap and every ocall payload, wire message and telemetry
export is scanned for those bytes (plus prefixes/suffixes, so partial
copies count). The pass requires:
  1. a --taint campaign with zero hits while actually tracking keys and
     scanning payloads (a detector that saw nothing proves nothing), and
  2. an --inject-leak campaign where the deliberately leaky enclave IS
     caught — the positive control that keeps the detector honest.

Exit code: 0 when the static pass has no src/ findings and the dynamic
pass (when requested) holds; 1 otherwise. Stdlib only.

Usage:
    tools/taint_lint.py --static [--json]
    tools/taint_lint.py --dynamic [--fuzz-bin build/tools/boundary_fuzz]
    tools/taint_lint.py --static --dynamic   # the full CI gate
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

# Identifiers that carry key material in this tree. Curated, not
# heuristic: these are exactly the values routed through
# sgx::taint::note_key (report/seal/session keys), the DH shared secret
# they are derived from, and the KDF that stretches them. A generic
# "anything named key" net would drown the signal in AesKey128 types and
# key-value maps.
SECRET_TOKENS = [
    "seal_key",
    "report_key",
    "session_key",
    "derive_seal_key",
    "derive_report_key",
    "derive_session_key",
    "shared_secret",
    "hkdf",
    "hmac_midstate",
]
# Substring match, not \b-anchored: members like shared_secret_ and
# locals like challenger_session_key must still hit. The tokens are
# distinctive multi-word identifiers, so false positives stay near zero.
SECRET_RE = re.compile("(" + "|".join(SECRET_TOKENS) + ")")

# Boundary sinks: (label, regex matching up to and including the opening
# paren of the argument list). Everything inside the balanced parens is
# the payload the untrusted side sees.
SINKS = [
    ("ocall", re.compile(r"(?:\.|->)\s*ocall\s*\(")),
    ("ocall_async", re.compile(r"(?:\.|->)\s*ocall_async\s*\(")),
    ("TENET_COUNT", re.compile(r"\bTENET_COUNT\s*\(")),
    ("TENET_GAUGE", re.compile(r"\bTENET_GAUGE\s*\(")),
    ("TENET_SPAN", re.compile(r"\bTENET_SPAN\s*\(")),
    ("trace_export", re.compile(r"\b(?:chrome_json|metrics_json)\s*\(")),
]

SUPPRESS_RE = re.compile(r"taint-lint:\s*allow\(")

# Directory -> severity. Only src/ ships in the trusted computing base;
# everything else may leak deliberately (adversary fixtures, the
# boundary_fuzz positive control) and gets a warning instead.
SEVERITY_BY_DIR = {
    "src": "error",
    "tests": "warning",
    "bench": "warning",
    "tools": "warning",
    "examples": "warning",
}

CPP_SUFFIXES = {".cpp", ".cc", ".h", ".hpp"}


def strip_comments(text):
    """Blank out comments and string/char literals, preserving offsets.

    Newlines survive so offsets still map to the right line. Strings are
    blanked because sink labels like TENET_COUNT("attest.failures") are
    string literals — the word "session" inside a label is not a leak;
    only a secret *identifier* in the argument expression is.
    """
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            out[i] = out[i + 1] = " "
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            if i + 1 < n:
                out[i] = out[i + 1] = " "
                i += 2
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = " "
                    i += 1
                if text[i] != "\n":
                    out[i] = " "
                i += 1
            i += 1
        else:
            i += 1
    return "".join(out)


def balanced_span(text, open_paren, cap=4000):
    """Return the offset one past the ')' matching text[open_paren]."""
    depth = 0
    end = min(len(text), open_paren + cap)
    for i in range(open_paren, end):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return end


def scan_file(path, severity):
    """Yield finding dicts for one file."""
    raw = path.read_text(errors="replace")
    lines = raw.splitlines()
    stripped = strip_comments(raw)
    # Offsets of line starts, for offset -> line-number conversion.
    line_starts = [0]
    for m in re.finditer("\n", raw):
        line_starts.append(m.end())

    def line_of(offset):
        lo, hi = 0, len(line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1  # 1-indexed

    findings = []
    for sink_name, sink_re in SINKS:
        for m in sink_re.finditer(stripped):
            open_paren = stripped.index("(", m.start())
            end = balanced_span(stripped, open_paren)
            args = stripped[open_paren:end]
            secret = SECRET_RE.search(args)
            if not secret:
                continue
            lineno = line_of(m.start())
            # Suppression: an allow() on the sink line or within the two
            # lines above (annotation comments may wrap).
            context = lines[max(0, lineno - 3) : lineno]
            suppressed = any(SUPPRESS_RE.search(ln) for ln in context)
            findings.append(
                {
                    "file": str(path),
                    "line": lineno,
                    "severity": "suppressed" if suppressed else severity,
                    "sink": sink_name,
                    "secret": secret.group(1),
                    "snippet": lines[lineno - 1].strip()[:120],
                }
            )
    return findings


def scan_tree(root):
    """Static pass over the whole tree. Returns (findings, files_scanned)."""
    findings = []
    files_scanned = 0
    for dirname, severity in SEVERITY_BY_DIR.items():
        base = root / dirname
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CPP_SUFFIXES:
                continue
            files_scanned += 1
            findings.extend(scan_file(path, severity))
    return findings, files_scanned


def find_fuzz_bin(root, explicit):
    if explicit:
        p = pathlib.Path(explicit)
        return p if p.is_file() else None
    candidates = sorted(
        root.glob("build*/tools/boundary_fuzz"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    return candidates[0] if candidates else None


def run_fuzz(bin_path, extra_args):
    cmd = [str(bin_path), "--json"] + extra_args
    proc = subprocess.run(cmd, capture_output=True, text=True)
    try:
        report = json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None, proc
    return report, proc


def dynamic_pass(bin_path, seed, iters):
    """Run the instrumented fuzzer; returns (ok, checks) where checks is a
    list of (name, ok, detail) tuples."""
    checks = []

    report, proc = run_fuzz(
        bin_path, ["--taint", "--seed", str(seed), "--iters", str(iters)]
    )
    if report is None:
        checks.append(("taint-campaign", False, "no JSON output: " + proc.stderr))
    else:
        taint = report.get("taint", {})
        checks.append(
            (
                "taint-campaign-clean",
                proc.returncode == 0 and report.get("ok") is True
                and taint.get("hits") == 0,
                "exit=%d hits=%s findings=%d"
                % (proc.returncode, taint.get("hits"), len(report.get("findings", []))),
            )
        )
        # A zero-hit run only counts as evidence if the detector actually
        # tracked keys and scanned boundary traffic.
        checks.append(
            (
                "taint-campaign-armed",
                taint.get("keys_tracked", 0) > 0
                and taint.get("payloads_scanned", 0) > 0,
                "keys_tracked=%s payloads_scanned=%s"
                % (taint.get("keys_tracked"), taint.get("payloads_scanned")),
            )
        )

    # Positive control: the deliberately leaky build must be caught.
    report, proc = run_fuzz(
        bin_path,
        ["--inject-leak", "--seed", str(seed), "--iters", str(max(200, iters // 4))],
    )
    if report is None:
        checks.append(("inject-leak", False, "no JSON output: " + proc.stderr))
    else:
        taint = report.get("taint", {})
        checks.append(
            (
                "inject-leak-caught",
                proc.returncode == 0 and report.get("leak_check_ok") is True
                and taint.get("hits", 0) > 0,
                "exit=%d hits=%s leak_check_ok=%s"
                % (proc.returncode, taint.get("hits"), report.get("leak_check_ok")),
            )
        )

    return all(ok for _, ok, _ in checks), checks


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("--static", action="store_true", dest="static_pass",
                    help="run the static source pass")
    ap.add_argument("--dynamic", action="store_true", dest="dynamic_pass",
                    help="run the instrumented-fuzzer pass")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--fuzz-bin", default=None,
                    help="path to boundary_fuzz (default: newest build*/tools/)")
    ap.add_argument("--seed", type=int, default=7, help="dynamic-pass seed")
    ap.add_argument("--iters", type=int, default=2000,
                    help="dynamic-pass iterations")
    ap.add_argument("--json", action="store_true", help="machine output")
    args = ap.parse_args(argv)

    if not args.static_pass and not args.dynamic_pass:
        args.static_pass = args.dynamic_pass = True

    root = pathlib.Path(args.root) if args.root else \
        pathlib.Path(__file__).resolve().parent.parent

    result = {"ok": True}

    if args.static_pass:
        findings, files_scanned = scan_tree(root)
        errors = [f for f in findings if f["severity"] == "error"]
        warnings = [f for f in findings if f["severity"] == "warning"]
        suppressed = [f for f in findings if f["severity"] == "suppressed"]
        result["static"] = {
            "files_scanned": files_scanned,
            "errors": errors,
            "warnings": warnings,
            "suppressed": len(suppressed),
        }
        if errors:
            result["ok"] = False
        if not args.json:
            for f in errors + warnings:
                print(
                    "%s: %s:%d: %s '%s' in %s sink: %s"
                    % (f["severity"], f["file"], f["line"], "secret",
                       f["secret"], f["sink"], f["snippet"])
                )
            print(
                "taint-lint static: %d files, %d errors, %d warnings,"
                " %d suppressed"
                % (files_scanned, len(errors), len(warnings), len(suppressed))
            )

    if args.dynamic_pass:
        bin_path = find_fuzz_bin(root, args.fuzz_bin)
        if bin_path is None:
            result["dynamic"] = {"error": "boundary_fuzz binary not found"}
            result["ok"] = False
            if not args.json:
                print("taint-lint dynamic: boundary_fuzz binary not found "
                      "(build it, or pass --fuzz-bin)", file=sys.stderr)
        else:
            ok, checks = dynamic_pass(bin_path, args.seed, args.iters)
            result["dynamic"] = {
                "fuzz_bin": str(bin_path),
                "checks": [
                    {"name": n, "ok": o, "detail": d} for n, o, d in checks
                ],
            }
            if not ok:
                result["ok"] = False
            if not args.json:
                for name, check_ok, detail in checks:
                    print("taint-lint dynamic: %-22s %s (%s)"
                          % (name, "ok" if check_ok else "FAILED", detail))

    if args.json:
        print(json.dumps(result, indent=2))
    elif result["ok"]:
        print("taint-lint: OK")
    else:
        print("taint-lint: FAILED")
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
